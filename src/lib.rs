//! # igepa — interaction-aware event-participant arrangement
//!
//! Facade crate for the reproduction of *"Interaction-Aware Arrangement for
//! Event-Based Social Networks"* (Kou, Zhou, Cheng, Du, Shi, Xu — ICDE 2019).
//!
//! The workspace is split into focused crates; this facade re-exports them
//! under stable module names so applications can depend on a single crate:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `igepa-core` | problem model: events, users, conflicts, interest, arrangements, admissible sets |
//! | [`graph`] | `igepa-graph` | social-network substrate and generators, degree of potential interaction |
//! | [`lp`] | `igepa-lp` | LP/ILP substrate: bounded-variable simplex, packing solver, branch & bound |
//! | [`datagen`] | `igepa-datagen` | Table-I synthetic workloads and the Meetup-SF simulator |
//! | [`algos`] | `igepa-algos` | LP-packing (Algorithm 1), GG greedy, Random-U/V, exact ILP, extensions |
//! | [`engine`] | `igepa-engine` | incremental arrangement serving: deltas, warm-start repair, replayable request log |
//! | [`experiments`] | `igepa-experiments` | reproduction harness for every table and figure of the paper |
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! ```
//! use igepa::prelude::*;
//!
//! // Generate a small synthetic workload (Table I model, scaled down)...
//! let config = SyntheticConfig::small();
//! let instance = generate_synthetic(&config, 42);
//!
//! // ...and run the paper's LP-packing algorithm against the greedy baseline.
//! let lp = LpPacking::default().run_seeded(&instance, 1);
//! let gg = GreedyArrangement::default().run_seeded(&instance, 1);
//! assert!(lp.is_feasible(&instance));
//! assert!(gg.is_feasible(&instance));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use igepa_algos as algos;
pub use igepa_core as core;
pub use igepa_datagen as datagen;
pub use igepa_engine as engine;
pub use igepa_experiments as experiments;
pub use igepa_graph as graph;
pub use igepa_lp as lp;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    pub use igepa_algos::{
        ArrangementAlgorithm, BottleneckGreedy, ExactIlp, GreedyArrangement, Lagrangian,
        LocalSearch, LpDeterministic, LpPacking, OnlineGreedy, OnlineRanking, Portfolio, RandomU,
        RandomV, SimulatedAnnealing, TabuSearch,
    };
    pub use igepa_core::{
        AdmissibleSetIndex, Arrangement, ArrangementStats, AttributeVector, ConflictMatrix,
        ContentionStats, EventId, Instance, InstanceStats, UserId,
    };
    pub use igepa_datagen::{
        generate_clustered, generate_meetup, generate_synthetic, generate_trace, ClusteredConfig,
        DeltaTrace, MeetupConfig, SyntheticConfig, TraceConfig,
    };
    pub use igepa_engine::{
        Engine, EngineConfig, EngineRequest, EngineResponse, ShardedConfig, ShardedEngine,
    };
    pub use igepa_graph::{InteractionMeasure, SocialNetwork};
}
