//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace vendors a minimal serde implementation (see
//! `vendor/serde`). This proc-macro crate provides `#[derive(Serialize)]`
//! and `#[derive(Deserialize)]` for the data shapes the workspace actually
//! uses:
//!
//! * structs with named fields;
//! * tuple structs (including newtypes);
//! * unit structs;
//! * enums with unit, newtype, tuple and struct variants.
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported —
//! the macro fails loudly on them instead of generating wrong code.
//!
//! The generated impls target the vendored serde's value-based model:
//! `Serialize::to_value(&self) -> serde::Value` and
//! `Deserialize::from_value(&serde::Value) -> Result<Self, serde::DeError>`,
//! mirroring serde_json's externally-tagged data layout.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct NamedField {
    name: String,
}

/// A parsed variant of an enum.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<NamedField>),
}

/// The shapes of type definitions the derive supports.
enum Shape {
    NamedStruct(Vec<NamedField>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = serialize_body(&parsed);
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = parsed.name,
        body = body
    );
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = deserialize_body(&parsed);
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}",
        name = parsed.name,
        body = body
    );
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the vendored serde");
        }
    }

    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    };

    Parsed { name, shape }
}

/// Skips leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` named fields, tolerating attributes, visibility
/// and commas nested inside `<...>` generic arguments of field types.
fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(NamedField { name });
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth: i32 = 0;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not introduce a new field.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' {
            count -= 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip the separating comma (and reject discriminants loudly).
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive: explicit enum discriminants are not supported")
            }
            _ => {}
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ------------------------------------------------------------ generation

fn serialize_body(parsed: &Parsed) -> String {
    let name = &parsed.name;
    match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                .collect();
                            format!(
                                "{name}::{vname}({b}) => ::serde::Value::Object(vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Array(vec![{i}]))]),",
                                b = binders.join(", "),
                                i = items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binders: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {b} }} => ::serde::Value::Object(vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(vec![{e}]))]),",
                                b = binders.join(", "),
                                e = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    }
}

fn deserialize_body(parsed: &Parsed) -> String {
    let name = &parsed.name;
    match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{n}: ::serde::Deserialize::from_value(::serde::object_field(__obj, \"{n}\", \"{name}\")?)?",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "let __obj = ::serde::expect_object(__v, \"{name}\")?;\nOk({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                .collect();
            format!(
                "let __arr = ::serde::expect_array(__v, {n}, \"{name}\")?;\nOk({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __arr = ::serde::expect_array(__inner, {n}, \"{name}::{vn}\")?; Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{n}: ::serde::Deserialize::from_value(::serde::object_field(__obj, \"{n}\", \"{name}::{vn}\")?)?",
                                        n = f.name
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __obj = ::serde::expect_object(__inner, \"{name}::{vn}\")?; Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit}\n\
                 __other => Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n\
                 }},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 let __inner: &::serde::Value = __inner;\n\
                 match __tag.as_str() {{\n\
                 {data}\n\
                 __other => Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n\
                 }}\n\
                 }}\n\
                 __other => Err(::serde::DeError::type_mismatch(\"{name}\", __other)),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
                name = name
            )
        }
    }
}
