//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde replacement. Instead of serde's
//! serializer/visitor architecture, this crate uses a simple value-based
//! model:
//!
//! * [`Serialize`] converts a value into a JSON-like [`Value`] tree;
//! * [`Deserialize`] reconstructs a value from a [`Value`] tree.
//!
//! The derive macros (re-exported from the vendored `serde_derive`) generate
//! impls that mirror serde_json's externally-tagged data layout, so JSON
//! produced by the vendored `serde_json` looks like the real thing for the
//! shapes this workspace uses. Generics and `#[serde(...)]` attributes are
//! unsupported.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A JSON-like value tree, the interchange format of the vendored serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (covers the full `u64` and `i64` ranges).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered list of key/value entries (preserves field
    /// order for readable output; lookup is linear, fine for small structs).
    Object(Vec<(String, Value)>),
}

/// Deserialization error of the vendored serde.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn msg(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Error for an unexpected value shape.
    pub fn type_mismatch(expected: &str, found: &Value) -> Self {
        DeError::msg(format!("expected {expected}, found {}", kind_name(found)))
    }

    /// Error for an unknown enum variant tag.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        DeError::msg(format!("unknown variant `{tag}` of {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) => "integer",
        Value::Float(_) => "float",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------------- helpers
// (used by the generated derive code; public but hidden from docs)

/// Expects an object and returns its entries.
#[doc(hidden)]
pub fn expect_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
    match v {
        Value::Object(entries) => Ok(entries),
        other => Err(DeError::type_mismatch(ty, other)),
    }
}

/// Expects an array of exactly `len` elements.
#[doc(hidden)]
pub fn expect_array<'a>(v: &'a Value, len: usize, ty: &str) -> Result<&'a [Value], DeError> {
    match v {
        Value::Array(items) if items.len() == len => Ok(items),
        Value::Array(items) => Err(DeError::msg(format!(
            "expected {len} elements for {ty}, found {}",
            items.len()
        ))),
        other => Err(DeError::type_mismatch(ty, other)),
    }
}

/// Looks up a field in an object's entries.
#[doc(hidden)]
pub fn object_field<'a>(
    entries: &'a [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::msg(format!("missing field `{name}` of {ty}")))
}

// ------------------------------------------------------ primitive impls

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::msg(format!(
                            "integer {i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::type_mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::type_mismatch("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::type_mismatch("object", other)),
        }
    }
}

/// `Result` uses serde's externally tagged layout: `{"Ok": ...}` /
/// `{"Err": ...}`, so enveloped responses look like the real thing.
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(v) => Value::Object(vec![(String::from("Ok"), v.to_value())]),
            Err(e) => Value::Object(vec![(String::from("Err"), e.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = expect_object(v, "Result")?;
        match entries {
            [(tag, inner)] if tag == "Ok" => T::from_value(inner).map(Ok),
            [(tag, inner)] if tag == "Err" => E::from_value(inner).map(Err),
            [(tag, _)] => Err(DeError::unknown_variant("Result", tag)),
            _ => Err(DeError::msg("expected a single-key Ok/Err object")),
        }
    }
}

/// Identity impls so callers can work with raw value trees (e.g. to sniff
/// an incoming line's shape before committing to a typed decode).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($idx:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = expect_array(v, LEN, "tuple")?;
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v: Vec<Vec<u64>> = vec![vec![1, 2], vec![], vec![3]];
        assert_eq!(Vec::<Vec<u64>>::from_value(&v.to_value()).unwrap(), v);
        let s: BTreeSet<(u32, u32)> = [(1, 2), (3, 4)].into_iter().collect();
        assert_eq!(
            BTreeSet::<(u32, u32)>::from_value(&s.to_value()).unwrap(),
            s
        );
    }

    #[test]
    fn result_roundtrip_externally_tagged() {
        let ok: Result<u32, String> = Ok(7);
        let err: Result<u32, String> = Err("boom".to_string());
        assert_eq!(
            ok.to_value(),
            Value::Object(vec![(String::from("Ok"), Value::Int(7))])
        );
        assert_eq!(
            Result::<u32, String>::from_value(&ok.to_value()).unwrap(),
            ok
        );
        assert_eq!(
            Result::<u32, String>::from_value(&err.to_value()).unwrap(),
            err
        );
        assert!(Result::<u32, String>::from_value(&Value::Null).is_err());
    }

    #[test]
    fn value_identity_roundtrip() {
        let v = Value::Array(vec![Value::Int(1), Value::String("x".into())]);
        assert_eq!(Value::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn int_range_checked() {
        let v = Value::Int(300);
        assert!(u8::from_value(&v).is_err());
        assert_eq!(u16::from_value(&v).unwrap(), 300);
    }
}
