//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! sampling-based property tester: strategies generate random values, the
//! [`proptest!`] macro runs each test body over `ProptestConfig::cases`
//! sampled inputs and reports the failing input's `Debug` representation.
//! Failures are **shrunk** with basic halving/truncation shrinkers before
//! reporting: ranges halve toward their lower bound, collections truncate
//! toward their minimum size (and shrink elements in place), and tuples
//! shrink one component at a time. Combinator strategies (`prop_map`,
//! `prop_flat_map`, filters) do not shrink through the mapping — the
//! shrink loop simply keeps whatever smaller failing input it can reach,
//! so counterexamples are *near*-minimal, not guaranteed minimal. Runs
//! are seeded deterministically per test.
//!
//! Supported surface: range strategies over ints and floats, tuples up to
//! arity 8, `prop_map` / `prop_flat_map` / `prop_filter` / `prop_filter_map`,
//! `proptest::collection::{vec, btree_set}`, `any::<bool>()`,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! `ProptestConfig::with_cases`.

use rand::rngs::StdRng;

pub mod test_runner {
    //! Test-runner configuration and case-level error plumbing.

    /// Configuration of a property test run.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps offline CI fast while still
            // exercising the properties broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and is not counted.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// How many times filtering combinators retry before giving up.
    const MAX_FILTER_ATTEMPTS: usize = 10_000;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug + Clone;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Proposes strictly "smaller" candidate values derived from a
        /// failing `value`; the runner keeps candidates that still fail.
        /// The default (combinators, `Just`) proposes nothing.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }

        /// Maps generated values through `f`.
        fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and samples
        /// the produced strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values for which `f` returns `Some`, resampling
        /// otherwise.
        fn prop_filter_map<T: Debug, F: Fn(Self::Value) -> Option<T>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                f,
                whence,
            }
        }

        /// Keeps only values for which `f` returns `true`, resampling
        /// otherwise.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    trait DynStrategy<T> {
        fn dyn_sample(&self, rng: &mut StdRng) -> T;
        fn dyn_shrink(&self, value: &T) -> Vec<T>;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_sample(&self, rng: &mut StdRng) -> S::Value {
            self.sample(rng)
        }
        fn dyn_shrink(&self, value: &S::Value) -> Vec<S::Value> {
            self.shrink(value)
        }
    }

    impl<T: Debug + Clone> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.0.dyn_sample(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            self.0.dyn_shrink(value)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Debug + Clone, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, T: Debug + Clone, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            for _ in 0..MAX_FILTER_ATTEMPTS {
                if let Some(v) = (self.f)(self.inner.sample(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map `{}` rejected too many samples",
                self.whence
            );
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..MAX_FILTER_ATTEMPTS {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected too many samples", self.whence);
        }
        fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
            self.inner
                .shrink(value)
                .into_iter()
                .filter(|v| (self.f)(v))
                .collect()
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    halve_toward(self.start, *value)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    halve_toward(*self.start(), *value)
                }
            }
        )*};
    }

    /// Halving shrinker for ordered numeric ranges: propose the lower
    /// bound itself, then a bisection ladder of candidates approaching the
    /// failing value (`value − Δ/2`, `value − Δ/4`, …, down to the unit
    /// step), so the shrink loop can route around candidates that pass or
    /// are rejected by `prop_assume`.
    fn halve_toward<T>(lo: T, value: T) -> Vec<T>
    where
        T: Copy + PartialEq + std::ops::Sub<Output = T> + Halve,
    {
        if value == lo {
            return Vec::new();
        }
        let mut out = vec![lo];
        let mut delta = value - lo;
        for _ in 0..24 {
            delta = delta.halve();
            if delta.negligible() {
                break;
            }
            let candidate = value - delta;
            if candidate != lo && candidate != value && out.last() != Some(&candidate) {
                out.push(candidate);
            }
        }
        out
    }

    /// Division by two for the numeric types ranges support.
    pub trait Halve {
        /// `self / 2` in the type's own arithmetic.
        fn halve(self) -> Self;
        /// Whether the step is too small to make progress.
        fn negligible(self) -> bool;
    }

    macro_rules! impl_halve_int {
        ($($t:ty),*) => {$(
            impl Halve for $t {
                fn halve(self) -> Self {
                    self / 2
                }
                fn negligible(self) -> bool {
                    self == 0
                }
            }
        )*};
    }
    impl_halve_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Halve for f64 {
        fn halve(self) -> Self {
            self / 2.0
        }
        fn negligible(self) -> bool {
            self.abs() < 1e-9
        }
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// Strategy yielding any value of a primitive type (see
    /// [`any`](crate::arbitrary::any)).
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    // Bisection ladder toward zero (works from either
                    // sign: the delta keeps the value's sign).
                    let mut out = Vec::new();
                    if *value != 0 {
                        out.push(0);
                        let mut delta = *value;
                        for _ in 0..24 {
                            delta /= 2;
                            if delta == 0 {
                                break;
                            }
                            let candidate = *value - delta;
                            if candidate != 0 && candidate != *value
                                && out.last() != Some(&candidate)
                            {
                                out.push(candidate);
                            }
                        }
                    }
                    out
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // One component at a time, the others kept as-is.
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Truncation toward the minimum size: halve the excess, then
            // drop a single trailing element.
            let lo = self.size.lo.min(value.len());
            if value.len() > lo {
                let half = lo + (value.len() - lo) / 2;
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                if half != value.len() - 1 {
                    out.push(value[..value.len() - 1].to_vec());
                }
            }
            // Element-wise shrink, one position at a time.
            for (i, element) in value.iter().enumerate() {
                for cand in self.element.shrink(element) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    /// Strategy for `BTreeSet`s whose elements come from `element`. The set
    /// may come out smaller than requested when the element space is too
    /// small to reach the chosen size.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 100 + 100 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
        fn shrink(&self, value: &BTreeSet<S::Value>) -> Vec<BTreeSet<S::Value>> {
            // Truncation toward the minimum size: keep the smallest half
            // of the excess, then drop the largest single element.
            let mut out = Vec::new();
            let lo = self.size.lo.min(value.len());
            if value.len() > lo {
                let half = lo + (value.len() - lo) / 2;
                if half < value.len() {
                    out.push(value.iter().take(half).cloned().collect());
                }
                if half != value.len() - 1 {
                    let mut next = value.clone();
                    let largest = next.iter().next_back().cloned();
                    if let Some(largest) = largest {
                        next.remove(&largest);
                    }
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use super::strategy::AnyStrategy;
    use std::marker::PhantomData;

    /// Strategy generating arbitrary values of `T` (supported for `bool` and
    /// the primitive integer types).
    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Derives the deterministic per-test RNG. Seeded from the test name so
/// different properties explore different parts of the space, but reruns are
/// identical.
#[doc(hidden)]
pub fn __test_rng(test_name: &str) -> StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// Runs property-test functions; see the crate docs for the supported form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Upper bound on accepted shrink steps per failure (each step keeps a
/// strictly smaller failing input, so this also bounds the total work).
const MAX_SHRINK_STEPS: usize = 512;

/// Outcome of running the case closure once, with panics folded into
/// failures so panicking bodies shrink like assertion failures do.
enum CaseOutcome {
    Pass,
    Reject,
    Fail(String),
}

fn run_case<V>(
    case: &mut impl FnMut(V) -> Result<(), test_runner::TestCaseError>,
    value: V,
) -> CaseOutcome {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(value))) {
        Ok(Ok(())) => CaseOutcome::Pass,
        Ok(Err(test_runner::TestCaseError::Reject(_))) => CaseOutcome::Reject,
        Ok(Err(test_runner::TestCaseError::Fail(msg))) => CaseOutcome::Fail(msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "test body panicked".to_string());
            CaseOutcome::Fail(format!("panic: {msg}"))
        }
    }
}

/// Drives one property: samples inputs, runs the case closure, shrinks
/// failures with the strategy's halving/truncation shrinkers, and panics
/// with the near-minimal counterexample's `Debug` representation. The
/// generic signature pins the closure's argument type to the strategy's
/// `Value`, so patterns in the test header never influence inference.
#[doc(hidden)]
pub fn __run<S: strategy::Strategy>(
    name: &str,
    config: &test_runner::ProptestConfig,
    strategy: &S,
    mut case: impl FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
) {
    let mut rng = __test_rng(name);
    let mut accepted: u32 = 0;
    let mut attempts: u32 = 0;
    while accepted < config.cases {
        attempts += 1;
        if attempts > config.cases.saturating_mul(20).saturating_add(1000) {
            panic!(
                "proptest {name}: too many rejected cases ({accepted} accepted of {} wanted)",
                config.cases
            );
        }
        let sampled = strategy.sample(&mut rng);
        match run_case(&mut case, sampled.clone()) {
            CaseOutcome::Pass => accepted += 1,
            CaseOutcome::Reject => {}
            CaseOutcome::Fail(msg) => {
                let original_repr = format!("{sampled:?}");
                // Quiet the default panic hook while probing candidates:
                // panicking bodies would otherwise print a "thread
                // panicked" block per probe and bury the final report.
                // (Briefly global — a concurrently failing test in another
                // thread still fails, just without its hook output.)
                let previous_hook = std::panic::take_hook();
                std::panic::set_hook(Box::new(|_| {}));
                // Greedy shrink: repeatedly adopt the first strictly
                // smaller candidate that still fails (rejected candidates
                // do not count as failures).
                let mut current = sampled;
                let mut current_msg = msg;
                let mut steps = 0usize;
                'shrinking: while steps < MAX_SHRINK_STEPS {
                    for candidate in strategy.shrink(&current) {
                        if let CaseOutcome::Fail(m) = run_case(&mut case, candidate.clone()) {
                            current = candidate;
                            current_msg = m;
                            steps += 1;
                            continue 'shrinking;
                        }
                    }
                    break;
                }
                std::panic::set_hook(previous_hook);
                if steps == 0 {
                    panic!("proptest {name} failed: {current_msg}\ninput: {original_repr}");
                }
                panic!(
                    "proptest {name} failed: {current_msg}\nminimal input (after {steps} shrink steps): {current:?}\noriginal input: {original_repr}"
                );
            }
        }
    }
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                $crate::__run(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    &strategy,
                    |__proptest_input| {
                        let ($($arg,)+) = __proptest_input;
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*))
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (it is resampled, not counted as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 0usize..10, b in 1.5f64..2.5) {
            prop_assert!(a < 10);
            prop_assert!((1.5..2.5).contains(&b));
        }

        #[test]
        fn maps_and_filters_compose(
            v in crate::collection::vec((0usize..50).prop_map(|x| x * 2), 1..8),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn flat_map_uses_inner_value(pair in (2usize..6).prop_flat_map(|n| {
            (crate::strategy::Just(n), crate::collection::vec(0usize..100, n))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics_with_input() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0usize..10) {
                prop_assert!(x < 5, "x was {}", x);
            }
        }
        inner();
    }

    #[test]
    fn failing_scalar_shrinks_to_the_boundary() {
        // x >= 5 fails; halving toward 0 must land exactly on 5.
        let result = std::panic::catch_unwind(|| {
            crate::__run(
                "shrink_scalar",
                &crate::test_runner::ProptestConfig::with_cases(64),
                &(0usize..100,),
                |(x,)| {
                    if x < 5 {
                        Ok(())
                    } else {
                        Err(crate::test_runner::TestCaseError::Fail(format!(
                            "x was {x}"
                        )))
                    }
                },
            );
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("x was 5"), "not minimal: {message}");
        assert!(
            message.contains("minimal input"),
            "no shrink report: {message}"
        );
    }

    #[test]
    fn failing_vec_truncates_to_minimal_length() {
        // Any vec with >= 3 elements fails; truncation must reach len 3.
        let result = std::panic::catch_unwind(|| {
            crate::__run(
                "shrink_vec",
                &crate::test_runner::ProptestConfig::with_cases(64),
                &(crate::collection::vec(0usize..100, 0..20),),
                |(v,)| {
                    if v.len() < 3 {
                        Ok(())
                    } else {
                        Err(crate::test_runner::TestCaseError::Fail(format!(
                            "len was {}",
                            v.len()
                        )))
                    }
                },
            );
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("len was 3"), "not minimal: {message}");
        // Elements shrink toward the range's lower bound too.
        assert!(
            message.contains("[0, 0, 0]"),
            "elements not shrunk: {message}"
        );
    }

    #[test]
    fn shrinking_respects_prop_assume_rejections() {
        // Fails for every even x >= 6; odd candidates are rejected, so the
        // shrinker must not adopt them even though they are "smaller".
        let result = std::panic::catch_unwind(|| {
            crate::__run(
                "shrink_assume",
                &crate::test_runner::ProptestConfig::with_cases(64),
                &(0usize..100,),
                |(x,)| {
                    if x % 2 == 1 {
                        return Err(crate::test_runner::TestCaseError::Reject("odd".into()));
                    }
                    if x < 6 {
                        Ok(())
                    } else {
                        Err(crate::test_runner::TestCaseError::Fail(format!(
                            "x was {x}"
                        )))
                    }
                },
            );
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("x was 6"), "not minimal: {message}");
    }

    #[test]
    fn panicking_bodies_shrink_too() {
        let result = std::panic::catch_unwind(|| {
            crate::__run(
                "shrink_panic",
                &crate::test_runner::ProptestConfig::with_cases(64),
                &(0usize..100,),
                |(x,)| {
                    assert!(x < 7, "x was {x}");
                    Ok(())
                },
            );
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("panic: x was 7"), "not minimal: {message}");
    }

    #[test]
    fn btree_set_respects_target_size() {
        use crate::strategy::Strategy;
        let strat = crate::collection::btree_set(0usize..1000, 5..=5);
        let mut rng = crate::__test_rng("btree");
        let s = strat.sample(&mut rng);
        assert_eq!(s.len(), 5);
    }
}
