//! Minimal scoped fork-join helper — offline stand-in for the usual
//! scoped-pool / rayon-scope crates.
//!
//! [`run_scoped`] executes a batch of closures on up to `workers` OS
//! threads borrowed for the duration of the call (via
//! [`std::thread::scope`], so the closures may borrow from the caller's
//! stack) and returns their results **in input order**. Work is pulled
//! from a shared atomic cursor, so long jobs don't serialise behind
//! short ones.
//!
//! With `workers <= 1` or a single job the batch runs inline on the
//! calling thread — no threads are spawned, making the serial
//! configuration byte-for-byte identical to a plain loop. The worker
//! count is also clamped to the host's available parallelism: extra
//! threads on an oversubscribed (or single-core) machine only add spawn
//! and context-switch overhead, never throughput, and the clamp cannot
//! change results — job outputs are independent of which thread runs
//! them and always return in input order.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The host's available parallelism, defaulting to 1 when unknown.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs every job and returns their results in input order, using up to
/// `workers` threads (clamped to the job count and to
/// [`available_workers`]).
///
/// Panics in a job propagate to the caller after the scope unwinds.
pub fn run_scoped<T, F>(workers: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = workers.min(available_workers());
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|job| Mutex::new(Some(job))).collect();
    let cursor = AtomicUsize::new(0);
    let threads = workers.min(n);
    let per_thread: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let job = slots[i]
                            .lock()
                            .expect("job slot poisoned")
                            .take()
                            .expect("each job is taken exactly once");
                        local.push((i, job()));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoped worker panicked"))
            .collect()
    });
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, value) in per_thread.into_iter().flatten() {
        results[i] = Some(value);
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every job produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_path_preserves_order() {
        let jobs: Vec<_> = (0..5).map(|i| move || i * 10).collect();
        assert_eq!(run_scoped(1, jobs), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn parallel_results_come_back_in_input_order() {
        let jobs: Vec<_> = (0..64)
            .map(|i| {
                move || {
                    if i % 7 == 0 {
                        std::thread::yield_now();
                    }
                    i * i
                }
            })
            .collect();
        let expected: Vec<usize> = (0..64).map(|i| i * i).collect();
        assert_eq!(run_scoped(4, jobs), expected);
    }

    #[test]
    fn jobs_may_borrow_from_the_caller() {
        let data = vec![1, 2, 3, 4];
        let slice = &data;
        let jobs: Vec<_> = (0..slice.len()).map(|i| move || slice[i] * 2).collect();
        assert_eq!(run_scoped(2, jobs), vec![2, 4, 6, 8]);
    }

    #[test]
    fn worker_count_above_job_count_is_fine() {
        let jobs: Vec<_> = (0..2).map(|i| move || i).collect();
        assert_eq!(run_scoped(16, jobs), vec![0, 1]);
    }

    #[test]
    fn empty_batch_returns_empty() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = Vec::new();
        assert!(run_scoped(4, jobs).is_empty());
    }
}
