//! Offline stand-in for `criterion`.
//!
//! Implements the criterion API surface this workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!` — with a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Each benchmark reports the mean, min and max iteration time to
//! stdout. No statistical analysis, no HTML reports, no comparison to
//! previous runs; enough to compare alternatives within one run.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    //! Measurement types (wall clock only in this stand-in).

    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_warm_up: Duration::from_millis(200),
            default_measurement: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line filtering is not
    /// implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: self.default_sample_size,
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            _kind: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher::new(
            self.default_sample_size,
            self.default_warm_up,
            self.default_measurement,
        );
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _kind: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.warm_up, self.measurement);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmarks a function over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.warm_up, self.measurement);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Measures closures passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up: Duration, measurement: Duration) -> Self {
        Bencher {
            sample_size,
            warm_up,
            measurement,
            samples: Vec::new(),
        }
    }

    /// Runs `f` repeatedly and records per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measurement: up to `sample_size` samples within the time budget
        // (always at least one).
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if measure_start.elapsed() >= self.measurement {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("bench {label:60} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "bench {label:60} time: [{} {} {}] ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        group.bench_function(BenchmarkId::new("add", 1), |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
