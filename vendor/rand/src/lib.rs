//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//!
//! * [`RngCore`] / [`Rng`] (with `gen_range` over integer and float ranges
//!   and `gen_bool`), with the blanket `Rng for R: RngCore` impl so that
//!   `&mut dyn RngCore` works exactly like with the real crate;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], backed by xoshiro256** seeded via SplitMix64 —
//!   deterministic and fast, which is all the reproduction needs (streams
//!   differ from the real StdRng, which is fine: seeds only anchor
//!   reproducibility within this codebase);
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).

/// A source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range. Panics on empty
    /// ranges, matching the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        // Compare against p scaled to the full 64-bit range; exact for the
        // boundary values 0.0 and 1.0.
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, reduced to the `seed_from_u64` entry point the
/// workspace uses.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** with SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 to spread the seed over the full state, per the
            // xoshiro authors' recommendation.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    pub mod mock {
        //! Mock generators for deterministic tests.

        use crate::RngCore;

        /// Counts up from an initial value in fixed increments; matches the
        /// real crate's `StepRng`.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a generator yielding `initial`, `initial + increment`, …
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Range-sampling machinery backing [`Rng::gen_range`](crate::Rng::gen_range).

    pub mod uniform {
        //! Uniform sampling over ranges.

        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce uniformly distributed values of `T`.
        pub trait SampleRange<T> {
            /// Draws one sample.
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Unbiased sampling of `0..span` via rejection from the top of the
        /// 64-bit range.
        fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let x = rng.next_u64();
                if x < zone {
                    return x % span;
                }
            }
        }

        macro_rules! impl_int_range {
            ($($t:ty => $wide:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                        self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
                    }
                }
            )*};
        }

        impl_int_range!(
            u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
            i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
        );

        /// A uniform draw from `[0, 1)` with 53 bits of precision.
        fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        impl SampleRange<f64> for Range<f64> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                let value = self.start + (self.end - self.start) * unit_f64(rng);
                // Guard against rounding up to the excluded endpoint.
                if value < self.end {
                    value
                } else {
                    self.start
                }
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * unit_f64(rng)
            }
        }

        impl SampleRange<f32> for Range<f32> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                let wide: f64 = (f64::from(self.start)..f64::from(self.end)).sample_from(rng);
                wide as f32
            }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use crate::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = index_below(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[index_below(rng, self.len())])
            }
        }
    }

    fn index_below<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        let zone = u64::MAX - (u64::MAX % n as u64);
        loop {
            let x = rng.next_u64();
            if x < zone {
                return (x % n as u64) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let neg = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&neg));
            let i = rng.gen_range(-5i64..=-1);
            assert!((-5..=-1).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynr: &mut dyn RngCore = &mut rng;
        let x = dynr.gen_range(0usize..10);
        assert!(x < 10);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
