//! Offline stand-in for `serde_json`.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] over the
//! vendored serde's [`Value`] model. The emitted JSON matches serde_json's
//! conventions for the data shapes this workspace uses (externally tagged
//! enums, `1.0`-style floats, two-space pretty indentation).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error raised by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// --------------------------------------------------------------- writer

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            if f.fract() == 0.0 && f.abs() < 1e16 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for characters outside the BMP.
                            if (0xD800..0xDC00).contains(&code) {
                                self.pos += 1; // consume the final hex digit position
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                self.pos -= 1; // parse_hex4 expects pos at its 'u'
                                let low = self.parse_hex4()?;
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte sequences are
                    // copied verbatim; the input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    /// Parses the 4 hex digits of a `\uXXXX` escape; `pos` is at the `u` on
    /// entry and at the last hex digit on exit (the caller advances past it).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        if start + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[start..start + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = start + 3;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&5u32).unwrap(), "5");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u32>("5").unwrap(), 5);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<Option<u8>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u8>>>(&json).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            "A\u{1F600}"
        );
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u8> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("5 x").is_err());
        assert!(from_str::<f64>("").is_err());
    }
}
