//! Live replay: drive the serving engine over a generated Meetup-style
//! arrival trace and print a latency/utility summary.
//!
//! The engine starts from a Table I synthetic snapshot, then absorbs a
//! stream of deltas — registrations, departures, event announcements,
//! capacity edits, bid churn — through its warm-start repair loop. The
//! trace is serialized to the JSON-lines request protocol and replayed
//! from the text form, exactly as a recorded production log would be.
//!
//! ```text
//! cargo run --release --example live_replay [num_deltas]
//! ```

use igepa::algos::GreedyArrangement;
use igepa::core::{ConstantInterest, NeverConflict};
use igepa::datagen::{generate_synthetic, generate_trace, SyntheticConfig, TraceConfig};
use igepa::engine::{replay_jsonl, requests_to_jsonl, Engine, EngineConfig, EngineRequest};

fn main() {
    let num_deltas: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    // 1. A frozen snapshot of the platform...
    let base = generate_synthetic(&SyntheticConfig::small(), 42);
    println!(
        "base instance: {} events x {} users, {} bids",
        base.num_events(),
        base.num_users(),
        base.num_bids()
    );

    // 2. ...and what happens next: a Poisson arrival process of deltas.
    let trace = generate_trace(
        &base,
        &TraceConfig {
            num_deltas,
            ..TraceConfig::default()
        },
        7,
    );
    println!(
        "trace: {} deltas over {:.1} abstract time units",
        trace.len(),
        trace.makespan()
    );

    // 3. Serialize to the JSONL request protocol — the replayable artifact.
    let requests: Vec<EngineRequest> = trace
        .deltas
        .iter()
        .map(|t| EngineRequest::Apply {
            delta: t.delta.clone(),
        })
        .collect();
    let jsonl = requests_to_jsonl(&requests);
    println!("request log: {} bytes of JSONL", jsonl.len());

    // 4. Replay through the warm-start serving engine.
    let mut engine = Engine::new(
        base,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        EngineConfig {
            seed: 1,
            staleness_check_interval: 128,
            max_staleness: 0.05,
            ..EngineConfig::default()
        },
    );
    let outcome = replay_jsonl(&mut engine, &jsonl).expect("self-generated log parses");
    assert!(engine.arrangement().is_feasible(engine.instance()));

    let report = &outcome.report;
    println!(
        "\nreplayed {} requests: {} applied, {} rejected",
        report.requests, report.applied, report.rejected
    );
    println!(
        "per-delta latency: mean {:.1} µs | p50 {:.1} µs | p95 {:.1} µs | p99 {:.1} µs | max {:.1} µs",
        report.latency.mean_us,
        report.latency.p50_us,
        report.latency.p95_us,
        report.latency.p99_us,
        report.latency.max_us
    );

    let stats = engine.stats();
    println!(
        "repairs: {} greedy patches, {} escalations, {} staleness checks ({} adopted)",
        stats.greedy_patches, stats.full_resolves, stats.staleness_checks, stats.staleness_resolves
    );
    println!(
        "final instance: {} events x {} users; serving {} pairs at utility {:.2}",
        engine.instance().num_events(),
        engine.instance().num_users(),
        report.final_pairs,
        report.final_utility
    );
    let ratio = engine.cold_solve_ratio();
    println!(
        "utility vs cold solve of the final instance: {:.1}% (drift bound: {:.0}%)",
        ratio * 100.0,
        engine.config().max_staleness * 100.0
    );
    assert!(
        ratio >= 0.95,
        "served utility fell below 95% of a cold solve"
    );
}
