//! Sharded replay: drive a 4-shard engine over a multi-community arrival
//! trace and compare it head-to-head with the monolithic engine.
//!
//! The base instance is community-structured (events grouped into
//! conflict-sharing communities, users bidding mostly inside their own)
//! and the trace keeps that shape, so the conflict-graph-locality
//! partitioner can put most of each event's bidders on one shard. The
//! example asserts the two acceptance properties of the sharded
//! architecture: the merged arrangement is *feasible* for the full
//! instance, and its utility is at least **95%** of what the monolithic
//! engine serves on the same trace.
//!
//! ```text
//! cargo run --release --example sharded_replay [num_deltas] [num_shards]
//! ```

use igepa::core::{ConstantInterest, LocalityPartitioner, NeverConflict, PartitionCut};
use igepa::datagen::{
    generate_clustered_dataset, generate_community_trace, ClusteredConfig, CommunityTraceConfig,
};
use igepa::engine::{replay, Engine, EngineConfig, EngineRequest, ShardedConfig, ShardedEngine};
use igepa::prelude::GreedyArrangement;

fn main() {
    let num_deltas: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let num_shards: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    // 1. A community-structured snapshot of the platform...
    let dataset = generate_clustered_dataset(&ClusteredConfig::default(), 42);
    let base = dataset.instance.clone();
    println!(
        "base instance: {} events x {} users in {} communities, {} bids",
        base.num_events(),
        base.num_users(),
        ClusteredConfig::default().num_communities,
        base.num_bids()
    );

    // 2. ...and a multi-community arrival trace over it.
    let trace = generate_community_trace(
        &base,
        &dataset.event_communities,
        &CommunityTraceConfig::partition_friendly(num_deltas, num_shards),
        7,
    );
    let requests: Vec<EngineRequest> = trace
        .deltas
        .iter()
        .map(|t| EngineRequest::Apply {
            delta: t.delta.clone(),
        })
        .collect();
    println!(
        "trace: {} deltas over {:.1} time units",
        trace.len(),
        trace.makespan()
    );

    let engine_config = EngineConfig {
        seed: 1,
        staleness_check_interval: 128,
        max_staleness: 0.05,
        ..EngineConfig::default()
    };

    // 3. Monolithic baseline.
    let mut mono = Engine::new(
        base.clone(),
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        engine_config.clone(),
    );
    let mono_outcome = replay(&mut mono, &requests);
    assert_eq!(mono_outcome.report.rejected, 0);
    let mono_utility = mono.utility();

    // 4. The sharded engine: conflict-graph-locality partitioning.
    let partitioner = LocalityPartitioner::from_instance(&base, num_shards);
    let cut = PartitionCut::measure(
        &base,
        &igepa::core::assign_users(&base, &partitioner, num_shards),
    );
    println!(
        "partition: {} of {} active events start as boundary events ({} cross conflict edges)",
        cut.boundary_events, cut.active_events, cut.cross_conflict_edges
    );
    let mut sharded = ShardedEngine::new(
        base,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        Box::new(partitioner),
        ShardedConfig {
            num_shards,
            shard: engine_config,
            reconcile_interval: 64,
            reconcile_rounds: 3,
        },
    );
    let sharded_outcome = replay(&mut sharded, &requests);
    assert_eq!(sharded_outcome.report.rejected, 0);
    let final_reconcile = sharded.rebalance();

    // 5. Compare.
    let mono_lat = &mono_outcome.report.latency;
    let sharded_lat = &sharded_outcome.report.latency;
    println!(
        "\nmonolithic : mean {:.1} µs | p50 {:.1} | p95 {:.1} | p99 {:.1} | max {:.1}",
        mono_lat.mean_us, mono_lat.p50_us, mono_lat.p95_us, mono_lat.p99_us, mono_lat.max_us
    );
    println!(
        "{} shards   : mean {:.1} µs | p50 {:.1} | p95 {:.1} | p99 {:.1} | max {:.1}",
        num_shards,
        sharded_lat.mean_us,
        sharded_lat.p50_us,
        sharded_lat.p95_us,
        sharded_lat.p99_us,
        sharded_lat.max_us
    );
    println!(
        "per-delta speedup: {:.2}x (mean), {:.2}x (p50)",
        mono_lat.mean_us / sharded_lat.mean_us,
        mono_lat.p50_us / sharded_lat.p50_us.max(f64::MIN_POSITIVE)
    );

    let merged = sharded.merged_arrangement();
    let feasible = merged.is_feasible(sharded.instance());
    let sharded_utility = merged.utility_value(sharded.instance());
    let stats = sharded.stats();
    let coord = sharded.coordinator_stats();
    println!(
        "\nshards served {} pairs (per shard: {:?})",
        merged.len(),
        (0..sharded.num_shards())
            .map(|k| sharded.shard(k).arrangement().len())
            .collect::<Vec<_>>()
    );
    println!(
        "repairs: {} greedy patches, {} escalations, {} staleness checks; \
         {} reconcile passes moved {} quota units ({} boundary events at the end)",
        stats.greedy_patches,
        stats.full_resolves,
        stats.staleness_checks,
        coord.reconcile_passes,
        coord.quota_moved,
        final_reconcile.boundary_events,
    );

    let ratio = sharded_utility / mono_utility;
    println!(
        "merged utility {sharded_utility:.2} vs monolithic {mono_utility:.2} → {:.1}% ({})",
        ratio * 100.0,
        if feasible { "feasible" } else { "INFEASIBLE" }
    );
    assert!(feasible, "merged arrangement must be feasible");
    assert!(
        ratio >= 0.95,
        "sharded utility fell below 95% of the monolithic engine"
    );
    println!("acceptance: feasible merged arrangement at >= 95% of monolithic utility");
}
