//! Compare LP-packing with every heuristic shipped by the reproduction:
//! greedy, local search, tabu search, simulated annealing, Lagrangian
//! prices, deterministic LP rounding, the bottleneck (max-min) greedy and
//! the randomized baselines — on the same synthetic workload.
//!
//! ```text
//! cargo run --release --example heuristics_comparison
//! ```

use igepa::algos::{
    ArrangementAlgorithm, BottleneckGreedy, GreedyArrangement, Lagrangian, LocalSearch,
    LpDeterministic, LpPacking, Portfolio, RandomU, RandomV, SimulatedAnnealing, TabuSearch,
};
use igepa::core::ArrangementStats;
use igepa::datagen::{generate_synthetic, SyntheticConfig};

fn main() {
    // A mid-sized Table-I-style workload: large enough that the algorithms
    // separate, small enough that every heuristic finishes in seconds.
    let config = SyntheticConfig {
        num_events: 60,
        num_users: 600,
        max_event_capacity: 20,
        max_user_capacity: 4,
        ..SyntheticConfig::default()
    };
    let instance = generate_synthetic(&config, 2019);
    println!(
        "workload: {} events, {} users, {} bids, {} conflicting event pairs\n",
        instance.num_events(),
        instance.num_users(),
        instance.num_bids(),
        instance.conflicts().num_conflicting_pairs()
    );

    let algorithms: Vec<Box<dyn ArrangementAlgorithm>> = vec![
        Box::new(LpPacking::default()),
        Box::new(LpDeterministic::default()),
        Box::new(Lagrangian::default()),
        Box::new(GreedyArrangement),
        Box::new(LocalSearch::default()),
        Box::new(TabuSearch::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(BottleneckGreedy),
        Box::new(RandomU),
        Box::new(RandomV),
        Box::new(Portfolio::default()),
    ];

    println!(
        "{:<22} {:>10} {:>8} {:>10} {:>12}",
        "algorithm", "utility", "pairs", "users", "runtime (s)"
    );
    for algorithm in &algorithms {
        let start = std::time::Instant::now();
        let arrangement = algorithm.run_seeded(&instance, 7);
        let elapsed = start.elapsed().as_secs_f64();
        let stats = ArrangementStats::of(&instance, &arrangement);
        assert!(stats.feasible, "{} must stay feasible", algorithm.name());
        println!(
            "{:<22} {:>10.2} {:>8} {:>10} {:>12.3}",
            algorithm.name(),
            stats.utility,
            stats.num_pairs,
            stats.users_served,
            elapsed
        );
    }

    // The bottleneck greedy optimises a different objective; report it too.
    let bottleneck = BottleneckGreedy.run_seeded(&instance, 7);
    let lp = LpPacking::default().run_seeded(&instance, 7);
    println!(
        "\nmax-min (bottleneck) value — Bottleneck-greedy: {:.3}, LP-packing: {:.3}",
        BottleneckGreedy::bottleneck_value(&instance, &bottleneck),
        BottleneckGreedy::bottleneck_value(&instance, &lp),
    );
    println!("(the bottleneck greedy trades total utility for the worst-off event, cf. Section V)");
}
