//! Quickstart: build a tiny IGEPA instance by hand, run every algorithm and
//! compare utilities.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use igepa::algos::{GreedyArrangement, LpPacking, RandomU, RandomV};
use igepa::core::{AttributeVector, ConstantInterest, PairSetConflict};
use igepa::prelude::*;

fn main() {
    // --- Model a small evening programme -------------------------------
    // Three events: a concert and a lecture that overlap (conflict), and a
    // late dinner that does not conflict with anything.
    let mut builder = igepa::core::Instance::builder();
    let concert = builder.add_event(2, AttributeVector::empty());
    let lecture = builder.add_event(1, AttributeVector::empty());
    let dinner = builder.add_event(3, AttributeVector::empty());

    // Four users bidding for the events they would actually attend.
    let alice = builder.add_user(2, AttributeVector::empty(), vec![concert, dinner]);
    let bob = builder.add_user(1, AttributeVector::empty(), vec![concert, lecture]);
    let carol = builder.add_user(2, AttributeVector::empty(), vec![lecture, dinner]);
    let dave = builder.add_user(1, AttributeVector::empty(), vec![concert]);

    // Degree of potential interaction: how socially active each user is.
    builder.interaction_scores(vec![0.9, 0.4, 0.6, 0.1]);
    builder.beta(0.5);

    let mut conflicts = PairSetConflict::new();
    conflicts.add(concert, lecture);

    let instance = builder
        .build(&conflicts, &ConstantInterest(0.7))
        .expect("valid instance");

    println!(
        "instance: {} events, {} users, {} bids",
        instance.num_events(),
        instance.num_users(),
        instance.num_bids()
    );

    // --- Run the paper's algorithm and the baselines --------------------
    let algorithms: Vec<Box<dyn ArrangementAlgorithm>> = vec![
        Box::new(LpPacking::default()),
        Box::new(GreedyArrangement),
        Box::new(RandomU),
        Box::new(RandomV),
    ];

    println!(
        "\n{:<12} {:>8} {:>8} {:>10}",
        "algorithm", "utility", "pairs", "feasible"
    );
    for algorithm in &algorithms {
        let arrangement = algorithm.run_seeded(&instance, 42);
        let stats = ArrangementStats::of(&instance, &arrangement);
        println!(
            "{:<12} {:>8.3} {:>8} {:>10}",
            algorithm.name(),
            stats.utility,
            stats.num_pairs,
            stats.feasible
        );
    }

    // --- Inspect the LP-packing arrangement in detail -------------------
    let arrangement = LpPacking::default().run_seeded(&instance, 42);
    println!("\nLP-packing assignment:");
    for (event, user) in arrangement.pairs() {
        println!(
            "  {user} -> {event} (weight {:.3})",
            instance.weight(event, user)
        );
    }
    let _ = (alice, bob, carol, dave);
}
