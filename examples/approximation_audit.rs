//! Approximation audit: measure the empirical approximation ratio of
//! LP-packing against the exact branch-and-bound optimum on small random
//! instances, for the analysed α = ½ and the empirically used α = 1.
//!
//! Theorem 2 of the paper guarantees E[ALG] ≥ OPT / 4 for α = ½; this audit
//! shows how conservative that bound is in practice.
//!
//! ```text
//! cargo run --release --example approximation_audit
//! ```

use igepa::algos::LpPacking;
use igepa::datagen::generate_synthetic;
use igepa::prelude::*;

fn main() {
    let config = SyntheticConfig::tiny();
    let exact = ExactIlp::default();
    let repetitions = 20;
    let instances = 8;

    println!(
        "auditing LP-packing on {instances} tiny instances ({} events, {} users), \
         {repetitions} rounding repetitions each\n",
        config.num_events, config.num_users
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "instance", "OPT", "ratio a=0.5", "ratio a=1.0"
    );

    let mut worst = [f64::INFINITY; 2];
    let mut means = [0.0f64; 2];
    for k in 0..instances {
        let instance = generate_synthetic(&config, 500 + k as u64);
        let (_, opt) = exact.solve_with_value(&instance);
        if opt <= 1e-9 {
            continue;
        }
        let mut ratios = [0.0f64; 2];
        for (i, alpha) in [0.5, 1.0].into_iter().enumerate() {
            let algorithm = LpPacking {
                alpha,
                ..LpPacking::default()
            };
            let mean_utility: f64 = (0..repetitions)
                .map(|rep| {
                    algorithm
                        .run_seeded(&instance, rep as u64)
                        .utility(&instance)
                        .total
                })
                .sum::<f64>()
                / repetitions as f64;
            ratios[i] = mean_utility / opt;
            worst[i] = worst[i].min(ratios[i]);
            means[i] += ratios[i] / instances as f64;
        }
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>12.3}",
            k, opt, ratios[0], ratios[1]
        );
    }

    println!(
        "\nmean ratio:  alpha=0.5 -> {:.3},  alpha=1.0 -> {:.3}",
        means[0], means[1]
    );
    println!(
        "worst ratio: alpha=0.5 -> {:.3},  alpha=1.0 -> {:.3}  (Theorem 2 bound: 0.25)",
        worst[0], worst[1]
    );
    assert!(
        worst[0] >= 0.25,
        "the analysed variant fell below its theoretical guarantee"
    );
}
