//! Conflict-stress scenario: how do the algorithms cope as the conflict
//! probability between events rises? This mirrors Fig. 1(c) of the paper on
//! a scaled-down workload and also includes the extension algorithms.
//!
//! ```text
//! cargo run --release --example conflict_stress
//! ```

use igepa::algos::{GreedyArrangement, LocalSearch, LpPacking, OnlineGreedy, RandomU, RandomV};
use igepa::datagen::generate_synthetic;
use igepa::prelude::*;

fn main() {
    let base = SyntheticConfig {
        num_events: 40,
        num_users: 300,
        max_event_capacity: 15,
        max_user_capacity: 4,
        bids_per_user: 8,
        ..SyntheticConfig::default()
    };

    let algorithms: Vec<Box<dyn ArrangementAlgorithm>> = vec![
        Box::new(LpPacking::default()),
        Box::new(GreedyArrangement),
        Box::new(LocalSearch::default()),
        Box::new(OnlineGreedy::default()),
        Box::new(RandomU),
        Box::new(RandomV),
    ];

    println!("utility as the conflict probability pcf grows (mean of 3 seeds)\n");
    print!("{:>6}", "pcf");
    for a in &algorithms {
        print!(" {:>16}", a.name());
    }
    println!();

    for pcf in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let config = SyntheticConfig {
            p_conflict: pcf,
            ..base.clone()
        };
        print!("{pcf:>6.1}");
        for algorithm in &algorithms {
            let mut total = 0.0;
            for seed in 0..3u64 {
                let instance = generate_synthetic(&config, 100 + seed);
                let arrangement = algorithm.run_seeded(&instance, seed);
                assert!(arrangement.is_feasible(&instance));
                total += arrangement.utility(&instance).total;
            }
            print!(" {:>16.2}", total / 3.0);
        }
        println!();
    }

    println!(
        "\nExpected shape: every algorithm loses utility as conflicts grow, and the \
         gap between LP-packing and GG widens (conflict-heavy bid sets are exactly \
         where LP guidance pays off)."
    );
}
