//! Online arrivals: users show up one by one and must be arranged
//! immediately, the setting of the online variants cited in Section V.
//!
//! The example streams the users of a synthetic workload in a random
//! arrival order through the online greedy algorithm and compares the
//! resulting utility with the offline algorithms that see the whole
//! workload at once (LP-packing, GG) — quantifying the price of not
//! knowing the future.
//!
//! ```text
//! cargo run --release --example online_arrivals
//! ```

use igepa::algos::{ArrangementAlgorithm, GreedyArrangement, LpPacking, OnlineGreedy};
use igepa::core::{Arrangement, EventId, Instance, UserId};
use igepa::datagen::{generate_synthetic, SyntheticConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A minimal online simulator: users arrive in the given order; each is
/// immediately given the best feasible subset of their bids (greedy per
/// user), and decisions are never revisited.
fn simulate_online(instance: &Instance, arrival_order: &[usize]) -> Arrangement {
    let mut arrangement = Arrangement::empty_for(instance);
    for &user_index in arrival_order {
        let user = instance.user(UserId::new(user_index));
        // Rank this user's bids by weight and take them greedily while they
        // stay feasible.
        let mut bids: Vec<EventId> = user.bids.clone();
        bids.sort_by(|&a, &b| {
            instance
                .weight(b, user.id)
                .partial_cmp(&instance.weight(a, user.id))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut taken: Vec<EventId> = Vec::new();
        for v in bids {
            if taken.len() >= user.capacity {
                break;
            }
            if arrangement.load_of(v) >= instance.event(v).capacity {
                continue;
            }
            if taken.iter().any(|&w| instance.conflicts().conflicts(w, v)) {
                continue;
            }
            arrangement.assign(v, user.id);
            taken.push(v);
        }
    }
    arrangement
}

fn main() {
    let config = SyntheticConfig {
        num_events: 50,
        num_users: 500,
        ..SyntheticConfig::default()
    };
    let instance = generate_synthetic(&config, 8);
    println!(
        "workload: {} events, {} users, {} bids\n",
        instance.num_events(),
        instance.num_users(),
        instance.num_bids()
    );

    // Offline references.
    let lp = LpPacking::default().run_seeded(&instance, 1);
    let gg = GreedyArrangement.run_seeded(&instance, 1);
    let online_algo = OnlineGreedy::default().run_seeded(&instance, 1);
    println!(
        "offline LP-packing utility: {:.2}",
        lp.utility(&instance).total
    );
    println!(
        "offline GG utility:         {:.2}",
        gg.utility(&instance).total
    );
    println!(
        "OnlineGreedy (library):     {:.2}\n",
        online_algo.utility(&instance).total
    );

    // Online simulation over several random arrival orders.
    let mut rng = StdRng::seed_from_u64(99);
    let mut orders: Vec<usize> = (0..instance.num_users()).collect();
    let mut best = f64::MIN;
    let mut worst = f64::MAX;
    let mut total = 0.0;
    let trials = 10;
    for _ in 0..trials {
        orders.shuffle(&mut rng);
        let arrangement = simulate_online(&instance, &orders);
        assert!(arrangement.is_feasible(&instance));
        let utility = arrangement.utility(&instance).total;
        best = best.max(utility);
        worst = worst.min(utility);
        total += utility;
    }
    println!(
        "online arrivals over {trials} random orders: mean {:.2}, best {:.2}, worst {:.2}",
        total / trials as f64,
        best,
        worst
    );
    println!(
        "competitive ratio vs offline LP-packing: {:.3} (mean)",
        (total / trials as f64) / lp.utility(&instance).total
    );
}
