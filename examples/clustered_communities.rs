//! Community-structured EBSN workloads: plant communities, recover them
//! from the friendship graph, swap the interaction measure of Definition 6
//! for other centralities and check that the algorithm ordering survives.
//!
//! ```text
//! cargo run --release --example clustered_communities
//! ```

use igepa::algos::{ArrangementAlgorithm, GreedyArrangement, LpPacking, RandomU, RandomV};
use igepa::core::InstanceSnapshot;
use igepa::datagen::{generate_clustered_dataset, ClusteredConfig};
use igepa::graph::{label_propagation, modularity, InteractionMeasure, NetworkStats, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = ClusteredConfig {
        num_events: 60,
        num_users: 500,
        num_communities: 8,
        num_time_slots: 10,
        ..ClusteredConfig::default()
    };
    let dataset = generate_clustered_dataset(&config, 4730);
    let instance = &dataset.instance;

    // --- The planted social structure ------------------------------------
    let stats = NetworkStats::of(&dataset.network);
    println!(
        "friendship graph: {} users, {} edges, density {:.4}, clustering {:.3}",
        dataset.network.num_users(),
        dataset.network.num_edges(),
        stats.density,
        stats.clustering,
    );
    let planted = Partition::from_labels(dataset.user_communities.clone());
    let mut rng = StdRng::seed_from_u64(1);
    let recovered = label_propagation(&dataset.network, 50, &mut rng);
    println!(
        "planted communities: {} (modularity {:.3}); label propagation recovers {} (modularity {:.3})\n",
        planted.num_communities(),
        modularity(&dataset.network, &planted),
        recovered.num_communities(),
        modularity(&dataset.network, &recovered),
    );

    // --- Paper roster on the clustered workload ---------------------------
    let roster: Vec<Box<dyn ArrangementAlgorithm>> = vec![
        Box::new(LpPacking::default()),
        Box::new(GreedyArrangement),
        Box::new(RandomU),
        Box::new(RandomV),
    ];
    println!("utility with the paper's degree-based D(G,u):");
    for algorithm in &roster {
        let utility = algorithm.run_seeded(instance, 3).utility(instance).total;
        println!("  {:<12} {:>10.2}", algorithm.name(), utility);
    }

    // --- Interaction-measure ablation -------------------------------------
    // Replace Definition 6's normalised degree by other centralities of the
    // *same* friendship graph and re-run the roster on otherwise identical
    // instances.
    println!("\nutility when D(G,u) is replaced by another centrality:");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "measure", "LP-packing", "GG", "Random-U", "Random-V"
    );
    for measure in InteractionMeasure::all() {
        let mut snapshot = InstanceSnapshot::capture(instance);
        snapshot.interaction = measure.scores(&dataset.network);
        let rescored = snapshot.restore().expect("re-scored instance is valid");
        let utilities: Vec<f64> = roster
            .iter()
            .map(|a| a.run_seeded(&rescored, 3).utility(&rescored).total)
            .collect();
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            measure.id(),
            utilities[0],
            utilities[1],
            utilities[2],
            utilities[3]
        );
    }
    println!(
        "\n(the ordering LP-packing ≥ GG ≥ Random-U ≈ Random-V should hold for every measure)"
    );
}
