//! End-to-end TCP serving: a sharded engine behind per-shard worker
//! threads, driven by concurrent remote clients over loopback.
//!
//! The flow mirrors a deployed arrangement service:
//!
//! 1. build a community-structured base instance and start
//!    `EngineServer::serve_sharded` on an ephemeral port — the
//!    coordinator validates and routes on one thread while each shard
//!    repairs on its own worker;
//! 2. connect several `EngineClient`s concurrently, each registering a
//!    stream of users (typed errors come back through the versioned
//!    response envelopes — the example provokes one on purpose);
//! 3. shut the server down cleanly, recover the engine, and verify the
//!    merged arrangement is feasible for the full instance.
//!
//! ```text
//! cargo run --release --example service_tcp [num_clients] [deltas_per_client] [num_shards]
//! ```

use igepa::core::{AttributeVector, EventId, InstanceDelta, UserId};
use igepa::datagen::{generate_clustered_dataset, ClusteredConfig};
use igepa::engine::{
    ClientError, EngineClient, EngineError, EngineQuery, EngineResponse, EngineServer, Framing,
};
use igepa::experiments::sharded_serving_engine;
use std::net::TcpListener;
use std::time::Instant;

fn main() {
    let num_clients: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let deltas_per_client: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(250);
    let num_shards: usize = std::env::args()
        .nth(3)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    // 1. The served platform state plus the TCP front door.
    let dataset = generate_clustered_dataset(&ClusteredConfig::default(), 42);
    let base = dataset.instance.clone();
    let num_events = base.num_events();
    println!(
        "serving {} events x {} users on {} shards (one worker thread each)",
        num_events,
        base.num_users(),
        num_shards
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback binds");
    let engine = sharded_serving_engine(base, 5, num_shards, 1);
    let handle =
        EngineServer::serve_sharded(listener, engine, Framing::Lines).expect("server spawns");
    let addr = handle.local_addr();
    println!("listening on {addr}");

    // 2. Concurrent clients, each a burst of user registrations.
    let start = Instant::now();
    let workers: Vec<_> = (0..num_clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client =
                    EngineClient::connect(addr, Framing::Lines).expect("client connects");
                let mut applied = 0usize;
                for i in 0..deltas_per_client {
                    let response = client
                        .apply(InstanceDelta::AddUser {
                            capacity: 1 + (c + i) % 2,
                            attrs: AttributeVector::empty(),
                            bids: vec![
                                EventId::new((c * 7 + i) % num_events),
                                EventId::new((c * 13 + i * 3) % num_events),
                            ],
                            interaction: 0.3 + 0.1 * ((c + i) % 7) as f64,
                        })
                        .expect("apply round-trips");
                    if matches!(response, EngineResponse::Applied { .. }) {
                        applied += 1;
                    }
                }
                // The typed taxonomy over the wire: an out-of-range query
                // answers NotFound instead of a silent empty result.
                match client.query(EngineQuery::AssignmentsOf {
                    user: UserId::new(9_999_999),
                }) {
                    Err(ClientError::Engine(EngineError::NotFound { .. })) => {}
                    other => panic!("expected NotFound, got {other:?}"),
                }
                applied
            })
        })
        .collect();
    let applied: usize = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .sum();
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "{applied} registrations across {num_clients} clients in {elapsed:.2}s \
         ({:.0} req/s through the coordinator)",
        applied as f64 / elapsed
    );
    assert_eq!(applied, num_clients * deltas_per_client);

    // 3. Clean shutdown returns the engine for inspection.
    let engine = handle.shutdown().expect("clean shutdown");
    let merged = engine.merged_arrangement();
    let feasible = merged.is_feasible(engine.instance());
    println!(
        "final state: {} users, {} served pairs, utility {:.3}, merged arrangement {}",
        engine.instance().num_users(),
        merged.len(),
        engine.merged_utility().total,
        if feasible { "FEASIBLE" } else { "INFEASIBLE" }
    );
    assert!(feasible, "quota invariant must survive concurrent serving");
}
