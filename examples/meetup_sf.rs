//! Meetup-SF scenario: regenerate a Table II style comparison on the
//! Meetup San Francisco simulator (190 events, 2811 users by default).
//!
//! ```text
//! cargo run --release --example meetup_sf            # paper scale
//! cargo run --example meetup_sf -- --small           # quick scaled-down run
//! ```

use igepa::algos::{GreedyArrangement, LpPacking, RandomU, RandomV};
use igepa::datagen::generate_meetup_dataset;
use igepa::graph::NetworkStats;
use igepa::prelude::*;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let config = if small {
        MeetupConfig::small()
    } else {
        MeetupConfig::paper_default()
    };

    println!(
        "generating Meetup-SF dataset: {} events, {} users ...",
        config.num_events, config.num_users
    );
    let dataset = generate_meetup_dataset(&config, 2019);
    let instance = &dataset.instance;
    let instance_stats = InstanceStats::of(instance);
    let network_stats = NetworkStats::of(&dataset.network);

    println!(
        "workload: {} bids ({:.1} per user), conflict density {:.3}, \
         social network density {:.4}, mean degree {:.1}",
        instance_stats.num_bids,
        instance_stats.mean_bids_per_user,
        instance_stats.conflict_density,
        network_stats.density,
        network_stats.mean_degree,
    );

    let algorithms: Vec<Box<dyn ArrangementAlgorithm>> = vec![
        Box::new(LpPacking::default()),
        Box::new(GreedyArrangement),
        Box::new(RandomU),
        Box::new(RandomV),
    ];

    println!("\nTable II style comparison (utility, one seed):");
    println!(
        "{:<12} {:>10} {:>8} {:>12}",
        "algorithm", "utility", "pairs", "runtime (s)"
    );
    for algorithm in &algorithms {
        let start = std::time::Instant::now();
        let arrangement = algorithm.run_seeded(instance, 7);
        let elapsed = start.elapsed().as_secs_f64();
        let stats = ArrangementStats::of(instance, &arrangement);
        assert!(
            stats.feasible,
            "{} produced an infeasible arrangement",
            algorithm.name()
        );
        println!(
            "{:<12} {:>10.2} {:>8} {:>12.3}",
            algorithm.name(),
            stats.utility,
            stats.num_pairs,
            elapsed
        );
    }

    println!("\nExpected shape (paper Table II): LP-packing > GG > Random-U ≳ Random-V.");
}
