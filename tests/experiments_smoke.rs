//! Smoke tests for the experiment harness: every table/figure entry point
//! runs end to end on scaled-down settings and produces well-formed reports.

use igepa::experiments::{
    run_figure1, run_ratio_study, run_table1, run_table2, ExperimentSettings, Figure1Factor,
};

fn smoke_settings() -> ExperimentSettings {
    ExperimentSettings {
        repetitions: 1,
        scale: 0.05,
        ..ExperimentSettings::quick()
    }
}

#[test]
fn table1_smoke() {
    let report = run_table1(&smoke_settings());
    assert_eq!(report.id, "table1");
    assert_eq!(report.results.len(), 4);
    let md = report.to_markdown();
    let csv = report.to_csv();
    for name in ["LP-packing", "GG", "Random-U", "Random-V"] {
        assert!(md.contains(name));
        assert!(csv.contains(name));
    }
}

#[test]
fn table2_smoke() {
    let report = run_table2(&smoke_settings());
    assert_eq!(report.id, "table2");
    assert_eq!(report.results.len(), 4);
    for result in &report.results {
        assert!(result.mean_utility > 0.0, "{} scored 0", result.algorithm);
        assert!(result.min_utility <= result.mean_utility + 1e-9);
        assert!(result.mean_utility <= result.max_utility + 1e-9);
    }
}

#[test]
fn figure1_subfigure_smoke() {
    // One cheap subfigure is enough to exercise the sweep plumbing; the
    // others share the exact same code path with different factors.
    let report = run_figure1(Figure1Factor::ConflictProbability, &smoke_settings());
    assert_eq!(report.id, "fig1c");
    assert_eq!(report.points.len(), 5);
    let csv = report.to_csv();
    assert_eq!(csv.trim().lines().count(), 1 + 5 * 4);
    // Sweep values must appear in the rendered output.
    let md = report.to_markdown();
    assert!(md.contains("0.1") && md.contains("0.5"));
}

#[test]
fn all_figure1_factors_are_runnable_metadata_wise() {
    // Full sweeps are exercised by the bench harness; here we only verify
    // the factor metadata produces valid configurations.
    for factor in Figure1Factor::all() {
        for value in factor.sweep_values() {
            let config = factor.apply(&igepa::datagen::SyntheticConfig::paper_default(), value);
            assert!(config.num_events > 0);
            assert!(config.num_users > 0);
            assert!(config.p_conflict >= 0.0 && config.p_conflict <= 1.0);
            assert!(config.p_friend >= 0.0 && config.p_friend <= 1.0);
        }
    }
}

#[test]
fn ratio_study_smoke_respects_theorem_two() {
    let settings = ExperimentSettings {
        repetitions: 3,
        ..ExperimentSettings::quick()
    };
    let report = run_ratio_study(&settings, 2);
    assert_eq!(report.theoretical_bound, 0.25);
    for result in &report.results {
        assert!(result.mean_ratio >= 0.25);
        assert!(result.mean_ratio <= 1.0 + 1e-9);
    }
}
