//! End-to-end integration tests spanning every crate of the workspace:
//! workload generation → algorithms → feasibility/utility → reporting.

use igepa::algos::{
    ArrangementAlgorithm, ExactIlp, GreedyArrangement, LocalSearch, LpBackend, LpPacking,
    OnlineGreedy, RandomU, RandomV,
};
use igepa::core::{AdmissibleSetIndex, ArrangementStats, InstanceStats, UserId};
use igepa::datagen::{
    generate_meetup, generate_meetup_dataset, generate_synthetic, MeetupConfig, SyntheticConfig,
};

fn full_roster() -> Vec<Box<dyn ArrangementAlgorithm>> {
    vec![
        Box::new(LpPacking::default()),
        Box::new(GreedyArrangement),
        Box::new(RandomU),
        Box::new(RandomV),
        Box::new(LocalSearch::default()),
        Box::new(OnlineGreedy::default()),
    ]
}

#[test]
fn every_algorithm_is_feasible_on_synthetic_workloads() {
    let config = SyntheticConfig::small();
    for seed in 0..3u64 {
        let instance = generate_synthetic(&config, seed);
        for algorithm in full_roster() {
            let arrangement = algorithm.run_seeded(&instance, seed);
            let stats = ArrangementStats::of(&instance, &arrangement);
            assert!(
                stats.feasible,
                "{} infeasible on synthetic seed {seed}",
                algorithm.name()
            );
            assert!(stats.utility >= 0.0);
        }
    }
}

#[test]
fn every_algorithm_is_feasible_on_the_meetup_simulator() {
    let config = MeetupConfig::small();
    let instance = generate_meetup(&config, 11);
    for algorithm in full_roster() {
        let arrangement = algorithm.run_seeded(&instance, 5);
        assert!(
            arrangement.is_feasible(&instance),
            "{} infeasible on meetup workload",
            algorithm.name()
        );
    }
}

#[test]
fn lp_packing_beats_the_random_baselines_on_average() {
    // The paper's headline qualitative result: LP-packing > Random-U/V, and
    // LP-packing >= GG except in regimes with overwhelming user surplus.
    let config = SyntheticConfig {
        num_events: 25,
        num_users: 150,
        max_event_capacity: 8,
        max_user_capacity: 3,
        bids_per_user: 6,
        ..SyntheticConfig::default()
    };
    let repetitions = 5;
    let mut totals = [0.0f64; 4]; // lp, gg, random_u, random_v
    for seed in 0..repetitions {
        let instance = generate_synthetic(&config, seed);
        totals[0] += LpPacking::default()
            .run_seeded(&instance, seed)
            .utility(&instance)
            .total;
        totals[1] += GreedyArrangement
            .run_seeded(&instance, seed)
            .utility(&instance)
            .total;
        totals[2] += RandomU.run_seeded(&instance, seed).utility(&instance).total;
        totals[3] += RandomV.run_seeded(&instance, seed).utility(&instance).total;
    }
    let [lp, gg, ru, rv] = totals.map(|t| t / repetitions as f64);
    assert!(
        lp > ru,
        "LP-packing ({lp:.2}) should beat Random-U ({ru:.2})"
    );
    assert!(
        lp > rv,
        "LP-packing ({lp:.2}) should beat Random-V ({rv:.2})"
    );
    assert!(
        lp >= 0.95 * gg,
        "LP-packing ({lp:.2}) should be at least on par with GG ({gg:.2})"
    );
}

#[test]
fn exact_optimum_dominates_all_heuristics_and_respects_lemma_one() {
    let config = SyntheticConfig::tiny();
    for seed in 0..3u64 {
        let instance = generate_synthetic(&config, seed);
        let (optimal_arrangement, opt) = ExactIlp::default().solve_with_value(&instance);
        assert!(optimal_arrangement.is_feasible(&instance));

        // Lemma 1: the LP relaxation upper-bounds the optimum.
        let admissible = AdmissibleSetIndex::build(&instance).unwrap();
        let lp_algo = LpPacking::with_backend(LpBackend::Simplex);
        let fractional = lp_algo.solve_benchmark_lp(&instance, &admissible);
        let lp_value: f64 = fractional
            .iter()
            .enumerate()
            .map(|(u, sets)| {
                sets.iter()
                    .map(|(s, x)| x * instance.set_weight(UserId::new(u), s))
                    .sum::<f64>()
            })
            .sum();
        assert!(
            lp_value + 1e-6 >= opt,
            "seed {seed}: LP value {lp_value} below ILP optimum {opt}"
        );

        for algorithm in full_roster() {
            let utility = algorithm
                .run_seeded(&instance, seed)
                .utility(&instance)
                .total;
            assert!(
                opt + 1e-6 >= utility,
                "seed {seed}: {} achieved {utility} above the optimum {opt}",
                algorithm.name()
            );
        }
    }
}

#[test]
fn seeded_runs_are_fully_reproducible_across_the_stack() {
    let config = SyntheticConfig::small();
    let a = generate_synthetic(&config, 77);
    let b = generate_synthetic(&config, 77);
    for algorithm in full_roster() {
        let ra = algorithm.run_seeded(&a, 5);
        let rb = algorithm.run_seeded(&b, 5);
        assert_eq!(
            ra.utility(&a).total,
            rb.utility(&b).total,
            "{} is not reproducible",
            algorithm.name()
        );
    }
}

#[test]
fn meetup_dataset_preprocessing_matches_the_paper_rules() {
    let config = MeetupConfig::small();
    let dataset = generate_meetup_dataset(&config, 3);
    let instance = &dataset.instance;
    let stats = InstanceStats::of(instance);
    assert_eq!(stats.num_events, config.num_events);
    assert_eq!(stats.num_users, config.num_users);
    // Every user's capacity is twice their attendance, so mean capacity is
    // at least 2 (everyone attended at least one event).
    assert!(stats.mean_user_capacity >= 2.0);
    // The social network and the instance interaction scores agree.
    let degrees = dataset.network.degrees_of_potential_interaction();
    for (u, &d) in degrees.iter().enumerate() {
        assert!((instance.interaction(UserId::new(u)) - d).abs() < 1e-12);
    }
}

#[test]
fn interaction_term_steers_assignments_towards_social_users() {
    // With beta = 0 the utility only rewards socially active participants,
    // so LP-packing and GG should prefer the high-degree user when capacity
    // is scarce.
    use igepa::core::{AttributeVector, ConstantInterest, Instance, NeverConflict};
    let mut builder = Instance::builder();
    let event = builder.add_event(1, AttributeVector::empty());
    builder.add_user(1, AttributeVector::empty(), vec![event]);
    builder.add_user(1, AttributeVector::empty(), vec![event]);
    builder.interaction_scores(vec![0.05, 0.95]);
    builder.beta(0.0);
    let instance = builder
        .build(&NeverConflict, &ConstantInterest(0.5))
        .unwrap();

    let gg = GreedyArrangement.run_seeded(&instance, 0);
    assert!(gg.contains(event, UserId::new(1)));
    let mut lp_wins = 0;
    for seed in 0..10 {
        let lp = LpPacking::default().run_seeded(&instance, seed);
        if lp.contains(event, UserId::new(1)) {
            lp_wins += 1;
        }
    }
    assert!(
        lp_wins >= 8,
        "LP-packing picked the social user only {lp_wins}/10 times"
    );
}
