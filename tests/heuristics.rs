//! Integration tests for the extension algorithms (simulated annealing,
//! tabu search, Lagrangian prices, deterministic LP rounding, bottleneck
//! greedy, portfolio) across the workload generators.

use igepa::algos::{
    ArrangementAlgorithm, BottleneckGreedy, GreedyArrangement, Lagrangian, LpDeterministic,
    LpPacking, Portfolio, RandomV, SimulatedAnnealing, TabuSearch,
};
use igepa::core::ArrangementStats;
use igepa::datagen::{
    generate_clustered, generate_meetup, generate_synthetic, ClusteredConfig, MeetupConfig,
    SyntheticConfig,
};

fn extension_roster() -> Vec<Box<dyn ArrangementAlgorithm>> {
    vec![
        Box::new(LpDeterministic::default()),
        Box::new(Lagrangian::default()),
        Box::new(SimulatedAnnealing {
            iterations: 3_000,
            ..SimulatedAnnealing::default()
        }),
        Box::new(TabuSearch {
            iterations: 100,
            tenure: 15,
        }),
        Box::new(BottleneckGreedy),
        Box::new(Portfolio::default()),
    ]
}

#[test]
fn extension_algorithms_are_feasible_on_every_generator() {
    let synthetic = generate_synthetic(&SyntheticConfig::small(), 1);
    let clustered = generate_clustered(&ClusteredConfig::small(), 1);
    let meetup = generate_meetup(&MeetupConfig::small(), 1);
    for (label, instance) in [
        ("synthetic", &synthetic),
        ("clustered", &clustered),
        ("meetup", &meetup),
    ] {
        for algorithm in extension_roster() {
            let arrangement = algorithm.run_seeded(instance, 3);
            let stats = ArrangementStats::of(instance, &arrangement);
            assert!(
                stats.feasible,
                "{} infeasible on the {label} workload",
                algorithm.name()
            );
            assert!(stats.utility >= 0.0);
        }
    }
}

#[test]
fn improvement_heuristics_dominate_their_greedy_seed() {
    let config = SyntheticConfig::small();
    for seed in 0..3u64 {
        let instance = generate_synthetic(&config, seed);
        let greedy = GreedyArrangement
            .run_seeded(&instance, seed)
            .utility(&instance)
            .total;
        for algorithm in [
            Box::new(TabuSearch::default()) as Box<dyn ArrangementAlgorithm>,
            Box::new(SimulatedAnnealing {
                iterations: 5_000,
                ..SimulatedAnnealing::default()
            }),
            Box::new(Portfolio::default()),
        ] {
            let utility = algorithm
                .run_seeded(&instance, seed)
                .utility(&instance)
                .total;
            assert!(
                utility + 1e-9 >= greedy,
                "{} ({utility}) lost to its greedy seed ({greedy}) on seed {seed}",
                algorithm.name()
            );
        }
    }
}

#[test]
fn lp_guided_algorithms_beat_the_randomized_baseline() {
    let config = SyntheticConfig::small();
    let mut lp_total = 0.0;
    let mut lp_det_total = 0.0;
    let mut lagrangian_total = 0.0;
    let mut random_total = 0.0;
    for seed in 0..3u64 {
        let instance = generate_synthetic(&config, seed);
        lp_total += LpPacking::default()
            .run_seeded(&instance, seed)
            .utility(&instance)
            .total;
        lp_det_total += LpDeterministic::default()
            .run_seeded(&instance, seed)
            .utility(&instance)
            .total;
        lagrangian_total += Lagrangian::default()
            .run_seeded(&instance, seed)
            .utility(&instance)
            .total;
        random_total += RandomV.run_seeded(&instance, seed).utility(&instance).total;
    }
    assert!(
        lp_total > random_total,
        "LP-packing {lp_total} vs Random-V {random_total}"
    );
    assert!(
        lp_det_total > random_total,
        "LP-deterministic {lp_det_total} vs Random-V {random_total}"
    );
    assert!(
        lagrangian_total > random_total,
        "Lagrangian {lagrangian_total} vs Random-V {random_total}"
    );
}

#[test]
fn bottleneck_greedy_improves_the_worst_off_event() {
    // On the clustered workload (popular events attract most bids) the
    // bottleneck greedy must not leave any serviceable event worse off than
    // the total-utility greedy does.
    let instance = generate_clustered(&ClusteredConfig::small(), 5);
    let bottleneck = BottleneckGreedy.run_seeded(&instance, 5);
    let greedy = GreedyArrangement.run_seeded(&instance, 5);
    let ours = BottleneckGreedy::bottleneck_value(&instance, &bottleneck);
    let theirs = BottleneckGreedy::bottleneck_value(&instance, &greedy);
    assert!(
        ours + 1e-9 >= theirs,
        "bottleneck value {ours} is below the greedy baseline's {theirs}"
    );
}

#[test]
fn clustered_workloads_preserve_the_paper_ordering() {
    // The headline shape of Fig. 1 — LP-packing ≥ GG ≥ randomized — must
    // also hold on the community-structured generator.
    let config = ClusteredConfig::small();
    let mut lp = 0.0;
    let mut gg = 0.0;
    let mut random = 0.0;
    for seed in 0..3u64 {
        let instance = generate_clustered(&config, seed);
        lp += LpPacking::default()
            .run_seeded(&instance, seed)
            .utility(&instance)
            .total;
        gg += GreedyArrangement
            .run_seeded(&instance, seed)
            .utility(&instance)
            .total;
        random += RandomV.run_seeded(&instance, seed).utility(&instance).total;
    }
    assert!(lp + 1e-9 >= gg, "LP-packing {lp} below GG {gg}");
    assert!(gg > random, "GG {gg} below Random-V {random}");
}
