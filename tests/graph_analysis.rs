//! Integration tests for the social-network analysis substrate: centrality,
//! community detection and alternative interaction measures, wired into
//! real workload instances.

use igepa::core::{InstanceSnapshot, UserId};
use igepa::datagen::{
    generate_clustered_dataset, generate_meetup_dataset, ClusteredConfig, MeetupConfig,
};
use igepa::graph::{
    betweenness_centrality, closeness_centrality, core_numbers, degree_centrality, diameter,
    greedy_modularity, is_connected, label_propagation, modularity, pagerank, InteractionMeasure,
    PageRankConfig, Partition,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn centralities_are_consistent_on_the_meetup_network() {
    let dataset = generate_meetup_dataset(&MeetupConfig::small(), 3);
    let g = &dataset.network;
    let n = g.num_users();
    assert!(n > 0);

    let degree = degree_centrality(g);
    let closeness = closeness_centrality(g);
    let betweenness = betweenness_centrality(g);
    let pr = pagerank(g, &PageRankConfig::default());
    let core = core_numbers(g);

    assert_eq!(degree.len(), n);
    assert_eq!(closeness.len(), n);
    assert_eq!(betweenness.len(), n);
    assert_eq!(pr.len(), n);
    assert_eq!(core.len(), n);

    // PageRank is a distribution.
    let pr_sum: f64 = pr.iter().sum();
    assert!((pr_sum - 1.0).abs() < 1e-6);

    // Scores are within their documented ranges and isolated users score 0.
    for u in 0..n {
        assert!((0.0..=1.0 + 1e-9).contains(&degree[u]));
        assert!((0.0..=1.0 + 1e-9).contains(&closeness[u]));
        assert!((0.0..=1.0 + 1e-9).contains(&betweenness[u]));
        assert!(core[u] <= g.degree(u));
        if g.degree(u) == 0 {
            assert_eq!(degree[u], 0.0);
            assert_eq!(closeness[u], 0.0);
        }
    }

    // The degree centrality must equal the instance's interaction scores
    // (Definition 6) because the Meetup generator uses exactly that rule.
    for u in 0..n {
        assert!(
            (degree[u] - dataset.instance.interaction(UserId::new(u))).abs() < 1e-9,
            "user {u}"
        );
    }
}

#[test]
fn community_detection_recovers_planted_clusters() {
    let config = ClusteredConfig {
        num_users: 160,
        num_communities: 4,
        p_intra: 0.35,
        p_inter: 0.004,
        ..ClusteredConfig::small()
    };
    let dataset = generate_clustered_dataset(&config, 13);
    let g = &dataset.network;
    let planted = Partition::from_labels(dataset.user_communities.clone());
    let q_planted = modularity(g, &planted);
    assert!(q_planted > 0.4, "planted modularity {q_planted}");

    let mut rng = StdRng::seed_from_u64(2);
    let lp = label_propagation(g, 40, &mut rng);
    let q_lp = modularity(g, &lp);
    assert!(
        q_lp > 0.5 * q_planted,
        "label propagation modularity {q_lp} too far below planted {q_planted}"
    );

    let greedy = greedy_modularity(g);
    let q_greedy = modularity(g, &greedy);
    assert!(q_greedy >= 0.0);
}

#[test]
fn path_metrics_behave_on_generated_networks() {
    let dataset = generate_clustered_dataset(&ClusteredConfig::small(), 21);
    let g = &dataset.network;
    if let Some(d) = diameter(g) {
        assert!(d >= 1);
        assert!(d < g.num_users());
    }
    // Connectivity is consistent with the diameter being defined over the
    // largest component only.
    let _ = is_connected(g);
}

#[test]
fn every_interaction_measure_yields_a_valid_instance() {
    let dataset = generate_clustered_dataset(&ClusteredConfig::tiny(), 7);
    for measure in InteractionMeasure::all() {
        let scores = measure.scores(&dataset.network);
        assert_eq!(scores.len(), dataset.instance.num_users());
        let mut snapshot = InstanceSnapshot::capture(&dataset.instance);
        snapshot.interaction = scores.clone();
        let rescored = snapshot
            .restore()
            .unwrap_or_else(|e| panic!("measure {measure} produced an invalid instance: {e}"));
        for (u, &score) in scores.iter().enumerate() {
            assert!((rescored.interaction(UserId::new(u)) - score).abs() < 1e-12);
        }
    }
}

#[test]
fn interaction_measures_rank_a_planted_hub_first() {
    // Build a clustered dataset, then add a user who is friends with
    // everyone: every measure must rank that user at the top.
    let dataset = generate_clustered_dataset(&ClusteredConfig::tiny(), 2);
    let n = dataset.network.num_users();
    let mut g = igepa::graph::SocialNetwork::new(n + 1);
    for (a, b) in dataset.network.edges() {
        g.add_edge(a, b);
    }
    for other in 0..n {
        g.add_edge(n, other);
    }
    for measure in InteractionMeasure::all() {
        let scores = measure.scores(&g);
        let hub = scores[n];
        for (u, &score) in scores.iter().enumerate().take(n) {
            assert!(
                hub >= score - 1e-9,
                "{measure}: hub {hub} ranked below user {u} ({score})"
            );
        }
    }
}
