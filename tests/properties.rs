//! Cross-crate property-based tests (proptest): model invariants that must
//! hold for *any* randomly generated workload, not just the hand-picked unit
//! test cases.

use igepa::algos::{
    ArrangementAlgorithm, GreedyArrangement, LpBackend, LpPacking, RandomU, RandomV,
};
use igepa::core::{AdmissibleSetIndex, Arrangement, UserId};
use igepa::datagen::{generate_synthetic, SyntheticConfig};
use proptest::prelude::*;

/// Strategy over small synthetic configurations with every factor varied.
fn config_strategy() -> impl Strategy<Value = SyntheticConfig> {
    (
        3usize..12,   // events
        5usize..40,   // users
        1usize..6,    // max event capacity
        1usize..4,    // max user capacity
        0.0f64..0.9,  // p_conflict
        0.0f64..0.9,  // p_friend
        0.0f64..=1.0, // beta
        2usize..7,    // bids per user
    )
        .prop_map(
            |(num_events, num_users, max_cv, max_cu, pcf, pdeg, beta, bids)| SyntheticConfig {
                num_events,
                num_users,
                max_event_capacity: max_cv,
                max_user_capacity: max_cu,
                p_conflict: pcf,
                p_friend: pdeg,
                beta,
                bids_per_user: bids,
                conflict_group_width: 3,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every algorithm returns a feasible arrangement on any workload.
    #[test]
    fn all_algorithms_always_feasible(config in config_strategy(), seed in 0u64..1000) {
        let instance = generate_synthetic(&config, seed);
        let algorithms: Vec<Box<dyn ArrangementAlgorithm>> = vec![
            Box::new(LpPacking::default()),
            Box::new(GreedyArrangement),
            Box::new(RandomU),
            Box::new(RandomV),
        ];
        for algorithm in algorithms {
            let arrangement = algorithm.run_seeded(&instance, seed);
            prop_assert!(
                arrangement.is_feasible(&instance),
                "{} produced an infeasible arrangement",
                algorithm.name()
            );
        }
    }

    /// Lemma 1: the benchmark LP optimum upper-bounds the utility of every
    /// feasible arrangement produced by any algorithm.
    #[test]
    fn lp_value_upper_bounds_all_feasible_arrangements(
        config in config_strategy(),
        seed in 0u64..1000,
    ) {
        let instance = generate_synthetic(&config, seed);
        let admissible = AdmissibleSetIndex::build(&instance).unwrap();
        let lp_algo = LpPacking::with_backend(LpBackend::Simplex);
        let fractional = lp_algo.solve_benchmark_lp(&instance, &admissible);
        let lp_value: f64 = fractional
            .iter()
            .enumerate()
            .map(|(u, sets)| {
                sets.iter()
                    .map(|(s, x)| x * instance.set_weight(UserId::new(u), s))
                    .sum::<f64>()
            })
            .sum();
        for algorithm in [&GreedyArrangement as &dyn ArrangementAlgorithm, &RandomU, &RandomV] {
            let utility = algorithm.run_seeded(&instance, seed).utility(&instance).total;
            prop_assert!(
                lp_value + 1e-6 >= utility,
                "LP value {lp_value} below {} utility {utility}",
                algorithm.name()
            );
        }
    }

    /// The admissible-set index only ever contains sets that satisfy the
    /// user capacity and conflict constraints, and never duplicates.
    #[test]
    fn admissible_sets_are_valid_and_unique(config in config_strategy(), seed in 0u64..1000) {
        let instance = generate_synthetic(&config, seed);
        let admissible = AdmissibleSetIndex::build(&instance).unwrap();
        for user_sets in admissible.iter() {
            let user = instance.user(user_sets.user);
            let mut seen = std::collections::HashSet::new();
            for set in &user_sets.sets {
                prop_assert!(!set.is_empty());
                prop_assert!(set.len() <= user.capacity);
                prop_assert!(instance.conflicts().set_is_conflict_free(set));
                for v in set {
                    prop_assert!(user.has_bid(*v));
                }
                prop_assert!(seen.insert(set.clone()), "duplicate admissible set");
            }
        }
    }

    /// Utility is additive over pairs: removing any single pair decreases the
    /// utility by exactly that pair's weight.
    #[test]
    fn utility_is_additive_over_pairs(config in config_strategy(), seed in 0u64..1000) {
        let instance = generate_synthetic(&config, seed);
        let arrangement = GreedyArrangement.run_seeded(&instance, seed);
        let total = arrangement.utility(&instance).total;
        let first_pair = arrangement.pairs().next();
        if let Some((event, user)) = first_pair {
            let mut smaller: Arrangement = arrangement.clone();
            smaller.unassign(event, user);
            let reduced = smaller.utility(&instance).total;
            let weight = instance.weight(event, user);
            prop_assert!((total - reduced - weight).abs() < 1e-9);
        }
    }

    /// The workload generator itself produces valid instances: interests and
    /// interaction scores in [0, 1], bids referencing real events.
    #[test]
    fn generator_invariants(config in config_strategy(), seed in 0u64..1000) {
        let instance = generate_synthetic(&config, seed);
        prop_assert_eq!(instance.num_events(), config.num_events);
        prop_assert_eq!(instance.num_users(), config.num_users);
        for user in instance.users() {
            let d = instance.interaction(user.id);
            prop_assert!((0.0..=1.0).contains(&d));
            for &v in &user.bids {
                prop_assert!(v.index() < instance.num_events());
                let si = instance.interest(v, user.id);
                prop_assert!((0.0..=1.0).contains(&si));
            }
        }
    }
}
