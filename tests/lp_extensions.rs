//! Integration tests for the LP substrate extensions (presolve, MPS export,
//! scaling) exercised on benchmark-LP-shaped programs derived from real
//! workload instances.

use igepa::core::{AdmissibleSetIndex, EventId, Instance};
use igepa::datagen::{generate_synthetic, SyntheticConfig};
use igepa::lp::{
    equilibrate, from_mps, matrix_spread, presolve, presolve_and_solve, to_mps, LinearProgram,
    SimplexSolver,
};

/// Builds the paper's benchmark LP (1)–(4) for an instance: one variable per
/// (user, admissible set), per-user convexity rows and per-event capacity
/// rows. This mirrors what LP-packing solves internally, but as a plain
/// [`LinearProgram`] so the generic LP tooling can be applied to it.
fn benchmark_lp(instance: &Instance) -> LinearProgram {
    let admissible = AdmissibleSetIndex::build(instance).expect("admissible sets enumerable");
    let mut lp = LinearProgram::new();
    let mut event_terms: Vec<Vec<(usize, f64)>> = vec![Vec::new(); instance.num_events()];
    let mut user_rows: Vec<Vec<usize>> = Vec::new();
    for user_sets in admissible.iter() {
        let mut vars = Vec::new();
        for set in &user_sets.sets {
            let weight = instance.set_weight(user_sets.user, set);
            let var = lp.add_var(weight, 1.0);
            vars.push(var);
            for &v in set {
                event_terms[v.index()].push((var, 1.0));
            }
        }
        user_rows.push(vars);
    }
    for vars in user_rows {
        if !vars.is_empty() {
            lp.add_le_constraint(vars.into_iter().map(|v| (v, 1.0)), 1.0)
                .unwrap();
        }
    }
    for (event_index, terms) in event_terms.into_iter().enumerate() {
        if !terms.is_empty() {
            let capacity = instance.event(EventId::new(event_index)).capacity as f64;
            lp.add_le_constraint(terms, capacity).unwrap();
        }
    }
    lp
}

fn small_instance(seed: u64) -> Instance {
    generate_synthetic(&SyntheticConfig::tiny(), seed)
}

#[test]
fn presolve_preserves_the_benchmark_lp_optimum() {
    for seed in 0..3u64 {
        let instance = small_instance(seed);
        let lp = benchmark_lp(&instance);
        let direct = SimplexSolver::default().solve(&lp).expect("solvable");
        let presolved = presolve_and_solve(&lp, &SimplexSolver::default()).expect("solvable");
        assert!(
            (direct.objective - presolved.objective).abs() < 1e-6 * (1.0 + direct.objective),
            "seed {seed}: direct {} vs presolved {}",
            direct.objective,
            presolved.objective
        );
        assert!(lp.is_feasible(&presolved.values, 1e-6));
    }
}

#[test]
fn presolve_reduces_the_benchmark_lp() {
    // Capacity rows whose capacity exceeds the number of interested users
    // are redundant and must be dropped; the reduced LP is never larger.
    let instance = small_instance(7);
    let lp = benchmark_lp(&instance);
    let reduced = presolve(&lp).expect("presolvable");
    assert!(reduced.reduced.num_vars() <= lp.num_vars());
    assert!(reduced.reduced.num_constraints() <= lp.num_constraints());
    assert!(reduced.stats.passes >= 1);
}

#[test]
fn benchmark_lp_round_trips_through_mps() {
    let instance = small_instance(2);
    let lp = benchmark_lp(&instance);
    let text = to_mps(&lp, "IGEPA-BENCHMARK");
    let restored = from_mps(&text).expect("parseable");
    assert_eq!(restored.num_vars(), lp.num_vars());
    assert_eq!(restored.num_constraints(), lp.num_constraints());
    let a = SimplexSolver::default().solve(&lp).unwrap();
    let b = SimplexSolver::default().solve(&restored).unwrap();
    assert!((a.objective - b.objective).abs() < 1e-6 * (1.0 + a.objective));
}

#[test]
fn scaling_leaves_the_well_conditioned_benchmark_lp_intact() {
    // The benchmark LP has 0/1 coefficients, so its spread is already 1 and
    // equilibration must not distort the optimum.
    let instance = small_instance(4);
    let lp = benchmark_lp(&instance);
    assert!((matrix_spread(&lp) - 1.0).abs() < 1e-12);
    let scaled = equilibrate(&lp, 2);
    let direct = SimplexSolver::default().solve(&lp).unwrap();
    let via_scaled = SimplexSolver::default().solve(&scaled.scaled).unwrap();
    let unscaled = scaled.unscale_solution(&via_scaled.values);
    assert!(
        (lp.objective_value(&unscaled) - direct.objective).abs() < 1e-6 * (1.0 + direct.objective)
    );
}

#[test]
fn lemma1_holds_after_presolve() {
    // Lemma 1: the LP optimum upper-bounds the utility of any feasible
    // arrangement — and presolve must not break that certificate.
    use igepa::algos::{ArrangementAlgorithm, GreedyArrangement, LpPacking};
    for seed in 0..3u64 {
        let instance = small_instance(seed + 10);
        let lp = benchmark_lp(&instance);
        let bound = presolve_and_solve(&lp, &SimplexSolver::default())
            .expect("solvable")
            .objective;
        for algorithm in [
            Box::new(LpPacking::default()) as Box<dyn ArrangementAlgorithm>,
            Box::new(GreedyArrangement),
        ] {
            let utility = algorithm
                .run_seeded(&instance, seed)
                .utility(&instance)
                .total;
            assert!(
                utility <= bound + 1e-6 * (1.0 + bound),
                "{}: utility {utility} exceeds the LP bound {bound} (seed {seed})",
                algorithm.name()
            );
        }
    }
}
