//! Property-based tests (proptest) for the extension modules: CSV round
//! trips, spatial conflict functions, LP presolve/scaling/MPS invariants,
//! centrality ranges and the feasibility of every extension algorithm on
//! arbitrary generated instances.

use igepa::algos::{
    ArrangementAlgorithm, BottleneckGreedy, Lagrangian, LpDeterministic, OnlineRanking,
    SimulatedAnnealing, TabuSearch,
};
use igepa::core::{
    arrangement_from_csv, arrangement_to_csv, instance_from_csv, instance_to_csv, AttributeVector,
    ConflictFn, DistanceConflict, Event, EventId, TravelTimeConflict,
};
use igepa::datagen::{generate_clustered, generate_synthetic, ClusteredConfig, SyntheticConfig};
use igepa::graph::{
    betweenness_centrality, closeness_centrality, core_numbers, erdos_renyi, modularity, pagerank,
    InteractionMeasure, PageRankConfig, Partition, SocialNetwork,
};
use igepa::lp::{equilibrate, from_mps, presolve_and_solve, to_mps, LinearProgram, SimplexSolver};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Instance CSV round trips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn synthetic_instances_round_trip_through_csv(seed in 0u64..500) {
        let instance = generate_synthetic(&SyntheticConfig::tiny(), seed);
        let restored = instance_from_csv(&instance_to_csv(&instance)).expect("parseable");
        prop_assert_eq!(restored.num_events(), instance.num_events());
        prop_assert_eq!(restored.num_users(), instance.num_users());
        prop_assert_eq!(restored.num_bids(), instance.num_bids());
        prop_assert!((restored.beta() - instance.beta()).abs() < 1e-12);
        // Utility of the same arrangement must be identical on both copies.
        let arrangement = igepa::algos::GreedyArrangement.run_seeded(&instance, seed);
        prop_assert!(
            (arrangement.utility(&instance).total - arrangement.utility(&restored).total).abs()
                < 1e-9
        );
    }

    #[test]
    fn arrangements_round_trip_through_csv(seed in 0u64..500) {
        let instance = generate_clustered(&ClusteredConfig::tiny(), seed);
        let arrangement = igepa::algos::GreedyArrangement.run_seeded(&instance, seed);
        let restored = arrangement_from_csv(&arrangement_to_csv(&arrangement), &instance)
            .expect("parseable");
        prop_assert_eq!(restored, arrangement);
    }
}

// ---------------------------------------------------------------------------
// Spatial conflict functions
// ---------------------------------------------------------------------------

fn arbitrary_event(id: usize, start: i64, duration: i64, x: f64, y: f64) -> Event {
    Event::new(
        EventId::new(id),
        4,
        AttributeVector::empty()
            .with_time(start, duration.max(1))
            .with_location(x, y),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn travel_time_conflict_is_symmetric_and_subsumes_overlap(
        start_a in -500i64..500, dur_a in 1i64..200,
        start_b in -500i64..500, dur_b in 1i64..200,
        xa in -50.0f64..50.0, ya in -50.0f64..50.0,
        xb in -50.0f64..50.0, yb in -50.0f64..50.0,
        speed in 0.1f64..20.0,
    ) {
        let a = arbitrary_event(0, start_a, dur_a, xa, ya);
        let b = arbitrary_event(1, start_b, dur_b, xb, yb);
        let sigma = TravelTimeConflict::new(speed);
        prop_assert_eq!(sigma.conflicts(&a, &b), sigma.conflicts(&b, &a));
        // Overlapping windows always conflict regardless of speed.
        let overlap = start_a < start_b + dur_b && start_b < start_a + dur_a;
        if overlap {
            prop_assert!(sigma.conflicts(&a, &b));
        }
        // A faster traveller never has *more* conflicts.
        let faster = TravelTimeConflict::new(speed * 2.0);
        if faster.conflicts(&a, &b) {
            prop_assert!(sigma.conflicts(&a, &b));
        }
    }

    #[test]
    fn distance_conflict_is_monotone_in_the_radius(
        start_a in -100i64..100, dur_a in 1i64..100,
        start_b in -100i64..100, dur_b in 1i64..100,
        xa in -10.0f64..10.0, ya in -10.0f64..10.0,
        xb in -10.0f64..10.0, yb in -10.0f64..10.0,
        radius in 0.0f64..10.0,
    ) {
        let a = arbitrary_event(0, start_a, dur_a, xa, ya);
        let b = arbitrary_event(1, start_b, dur_b, xb, yb);
        let narrow = DistanceConflict::new(radius);
        let wide = DistanceConflict::new(radius + 5.0);
        prop_assert_eq!(narrow.conflicts(&a, &b), narrow.conflicts(&b, &a));
        if narrow.conflicts(&a, &b) {
            prop_assert!(wide.conflicts(&a, &b));
        }
    }
}

// ---------------------------------------------------------------------------
// LP substrate: presolve, scaling, MPS
// ---------------------------------------------------------------------------

fn random_packing_lp(seed: u64, num_vars: usize, num_rows: usize) -> LinearProgram {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LinearProgram::new();
    for _ in 0..num_vars {
        lp.add_var(rng.gen_range(0.0..5.0), rng.gen_range(0.5..3.0));
    }
    for _ in 0..num_rows {
        let mut coefficients = Vec::new();
        for v in 0..num_vars {
            if rng.gen_bool(0.5) {
                coefficients.push((v, rng.gen_range(0.1..2.0)));
            }
        }
        lp.add_le_constraint(coefficients, rng.gen_range(1.0..8.0))
            .unwrap();
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn presolve_scaling_and_mps_preserve_the_optimum(
        seed in 0u64..10_000,
        num_vars in 2usize..8,
        num_rows in 1usize..6,
    ) {
        let lp = random_packing_lp(seed, num_vars, num_rows);
        let reference = SimplexSolver::default().solve(&lp).expect("bounded");
        let tolerance = 1e-6 * (1.0 + reference.objective.abs());

        let presolved = presolve_and_solve(&lp, &SimplexSolver::default()).expect("bounded");
        prop_assert!((presolved.objective - reference.objective).abs() < tolerance);
        prop_assert!(lp.is_feasible(&presolved.values, 1e-6));

        let scaled = equilibrate(&lp, 2);
        let scaled_solution = SimplexSolver::default().solve(&scaled.scaled).expect("bounded");
        let unscaled = scaled.unscale_solution(&scaled_solution.values);
        prop_assert!((lp.objective_value(&unscaled) - reference.objective).abs() < tolerance);

        let restored = from_mps(&to_mps(&lp, "PROP")).expect("parseable");
        let roundtrip = SimplexSolver::default().solve(&restored).expect("bounded");
        prop_assert!((roundtrip.objective - reference.objective).abs() < tolerance);
    }
}

// ---------------------------------------------------------------------------
// Graph substrate: centrality ranges, modularity bounds, interaction measures
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn centralities_stay_in_range_on_random_graphs(seed in 0u64..10_000, n in 2usize..40, p in 0.0f64..0.6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g: SocialNetwork = erdos_renyi(n, p, &mut rng);
        for &score in &closeness_centrality(&g) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&score));
        }
        for &score in &betweenness_centrality(&g) {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&score));
        }
        let pr = pagerank(&g, &PageRankConfig::default());
        prop_assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        for (u, &core) in core_numbers(&g).iter().enumerate() {
            prop_assert!(core <= g.degree(u));
        }
        for measure in InteractionMeasure::all() {
            for &score in &measure.scores(&g) {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&score));
            }
        }
    }

    #[test]
    fn modularity_is_bounded_for_any_partition(seed in 0u64..10_000, n in 2usize..30, k in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g: SocialNetwork = erdos_renyi(n, 0.3, &mut rng);
        let labels: Vec<usize> = (0..n).map(|u| u % k).collect();
        let q = modularity(&g, &Partition::from_labels(labels));
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&q));
    }
}

// ---------------------------------------------------------------------------
// Extension algorithms: always feasible on arbitrary instances
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn extension_algorithms_always_return_feasible_arrangements(seed in 0u64..1_000) {
        let instance = generate_synthetic(&SyntheticConfig::tiny(), seed);
        let algorithms: Vec<Box<dyn ArrangementAlgorithm>> = vec![
            Box::new(LpDeterministic::default()),
            Box::new(Lagrangian::quick()),
            Box::new(SimulatedAnnealing::quick()),
            Box::new(TabuSearch::quick()),
            Box::new(BottleneckGreedy),
            Box::new(OnlineRanking::default()),
        ];
        for algorithm in algorithms {
            let arrangement = algorithm.run_seeded(&instance, seed);
            prop_assert!(
                arrangement.is_feasible(&instance),
                "{} infeasible on seed {}",
                algorithm.name(),
                seed
            );
            // Every assigned pair respects the bid constraint explicitly.
            for (v, u) in arrangement.pairs() {
                prop_assert!(instance.user(u).has_bid(v));
                prop_assert!(instance.event(v).has_bidder(u));
            }
        }
    }

    #[test]
    fn interaction_scores_enter_the_utility_linearly(seed in 0u64..1_000) {
        // Doubling β's complement share: with β = 1 the interaction term
        // vanishes, so utilities computed on the same arrangement must not
        // depend on the interaction scores at all.
        let instance = generate_synthetic(
            &SyntheticConfig { beta: 1.0, ..SyntheticConfig::tiny() },
            seed,
        );
        let arrangement = igepa::algos::GreedyArrangement.run_seeded(&instance, seed);
        let breakdown = arrangement.utility(&instance);
        // With β = 1 the total is exactly the (unweighted) interest sum.
        prop_assert!((breakdown.total - breakdown.interest_sum).abs() < 1e-9);
        prop_assert!((breakdown.beta - 1.0).abs() < 1e-12);
    }
}
