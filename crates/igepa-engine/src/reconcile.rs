//! Cross-shard reconciliation: a bounded quota-exchange protocol over
//! contended events.
//!
//! The quota invariant (per-event shard quotas sum to the true capacity)
//! keeps the merged arrangement feasible no matter what, but it says
//! nothing about *where* the quota sits. A boundary event — one whose
//! bidders live on more than one shard — can strand slack quota on a
//! shard with no demand while another shard's bidders go unseated (the
//! same stranding also happens when churn moves all of an event's bidders
//! onto one shard while the quota split is stale). The reconciler fixes
//! exactly that:
//!
//! 1. For every event, each shard reports its quota, its load and its
//!    *unmet demand* (bidders it could seat if the quota allowed,
//!    [`crate::Shard::unmet_demand`]).
//! 2. Shards with free quota beyond their own demand donate; shards with
//!    demand beyond their free quota receive. Units move donor→receiver
//!    in shard-index order, so the exchange is deterministic.
//! 3. Each shard that gained quota re-runs its greedy repair over the
//!    dirtied events, seating the waiting bidders.
//!
//! The pass is **bounded**: at most `max_rounds` rounds, stopping early
//! on the first round that moves nothing. Donations never exceed slack,
//! so reconciliation itself never evicts anybody, and every move
//! preserves the quota invariant (what one shard gives up, another
//! receives).

use crate::shard::Shard;
use igepa_core::{EventId, Instance, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What one reconciliation pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReconcileReport {
    /// Exchange rounds that actually ran (moved at least one unit).
    pub rounds_run: usize,
    /// Events whose bidders span more than one shard (the structural
    /// boundary the partitioner left behind).
    pub boundary_events: usize,
    /// Events the first round actually moved quota for.
    pub contended_events: usize,
    /// Capacity units moved between shards, summed over rounds.
    pub quota_moved: usize,
    /// Shard repair passes triggered by quota changes.
    pub shard_repairs: usize,
}

/// Runs one bounded reconciliation pass over the given candidate events
/// (the coordinator tracks which events deltas have touched since the
/// last pass, so periodic passes don't rescan the whole catalogue; an
/// explicit rebalance passes every event). See the module docs.
pub(crate) fn run(
    shards: &mut [Shard],
    mirror: &Instance,
    owners: &[(usize, UserId)],
    events: &[EventId],
    max_rounds: usize,
) -> ReconcileReport {
    let num_shards = shards.len();
    let mut report = ReconcileReport::default();
    if num_shards <= 1 || max_rounds == 0 || events.is_empty() {
        return report;
    }
    // Boundary metric over the examined events only (the full-catalogue
    // count is an O(total bids) scan the periodic path must not pay),
    // sharing the single boundary definition in `igepa_core::partition`.
    report.boundary_events = events
        .iter()
        .filter(|&&event| igepa_core::spans_shards(mirror.event(event), |u| owners[u.index()].0))
        .count();

    // Round 0 scans every candidate event; each later round scans only
    // the events the previous round could have changed. Quota and load
    // move only at events whose quota the round touched, and the demand
    // signal changes only through new seatings — a freshly admitted user
    // spends capacity (and arms conflicts) that shrink their demand at
    // every other event they bid on. Everything else re-reads exactly as
    // before, so the restriction is behaviour-preserving: it skips only
    // events whose previous scan already said "nothing to move".
    let candidates: BTreeSet<EventId> = events.iter().copied().collect();
    let mut active: Vec<EventId> = events.to_vec();
    for round in 0..max_rounds {
        if active.is_empty() {
            break;
        }
        // Plan this round's moves over the active candidate events.
        let mut changes: Vec<Vec<(EventId, usize)>> = vec![Vec::new(); num_shards];
        let mut moved = 0usize;
        let mut contended = 0usize;
        for &event in &active {
            let quota: Vec<usize> = shards.iter().map(|s| s.quota_of(event)).collect();
            let load: Vec<usize> = shards.iter().map(|s| s.load_of(event)).collect();
            // Quota and load are O(1) reads; the demand signal is the
            // expensive part (a per-bidder feasibility scan). When no
            // shard holds free quota there is nothing any demand could
            // receive — `surplus[k] ≤ quota[k] − load[k]` makes
            // `to_move` zero regardless — so fully packed events skip
            // the scan entirely.
            if quota.iter().zip(&load).all(|(&q, &l)| q <= l) {
                continue;
            }
            let demand: Vec<usize> = shards.iter().map(|s| s.unmet_demand(event)).collect();
            // Free quota beyond the shard's own demand donates; demand
            // beyond the shard's free quota receives.
            let surplus: Vec<usize> = (0..num_shards)
                .map(|k| (quota[k] - load[k]).saturating_sub(demand[k]))
                .collect();
            let deficit: Vec<usize> = (0..num_shards)
                .map(|k| demand[k].saturating_sub(quota[k] - load[k]))
                .collect();
            let to_move = surplus
                .iter()
                .sum::<usize>()
                .min(deficit.iter().sum::<usize>());
            if to_move == 0 {
                continue;
            }
            contended += 1;
            let mut new_quota = quota.clone();
            let mut take = to_move;
            for k in 0..num_shards {
                let t = surplus[k].min(take);
                new_quota[k] -= t;
                take -= t;
                if take == 0 {
                    break;
                }
            }
            let mut give = to_move;
            for k in 0..num_shards {
                let g = deficit[k].min(give);
                new_quota[k] += g;
                give -= g;
                if give == 0 {
                    break;
                }
            }
            debug_assert_eq!(
                new_quota.iter().sum::<usize>(),
                quota.iter().sum::<usize>(),
                "quota exchange must preserve the invariant"
            );
            for k in 0..num_shards {
                if new_quota[k] != quota[k] {
                    changes[k].push((event, new_quota[k]));
                }
            }
            moved += to_move;
        }
        if moved == 0 {
            break;
        }
        if round == 0 {
            report.contended_events = contended;
        }
        report.quota_moved += moved;
        report.rounds_run += 1;
        let mut next: BTreeSet<EventId> = BTreeSet::new();
        let mut rescan_everything = false;
        for (k, shard_changes) in changes.iter().enumerate() {
            if !shard_changes.is_empty() {
                let (_repair, admitted) = shards[k].apply_quotas(shard_changes);
                report.shard_repairs += 1;
                for &(event, _) in shard_changes.iter() {
                    next.insert(event);
                }
                match admitted {
                    // Sub-instances carry the full event catalogue, so a
                    // user's bid list already holds global event ids.
                    Some(users) => {
                        for u in users {
                            next.extend(shards[k].instance().user(u).bids.iter().copied());
                        }
                    }
                    // The repair escalated to a full re-solve and cannot
                    // say who moved; fall back to the full rescan.
                    None => rescan_everything = true,
                }
            }
        }
        active = if rescan_everything {
            events.to_vec()
        } else {
            next.intersection(&candidates).copied().collect()
        };
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::EngineConfig;
    use igepa_algos::GreedyArrangement;
    use igepa_core::{AttributeVector, ConstantInterest, Instance, NeverConflict};
    use std::sync::Arc;

    /// Two shards over one global event of capacity 4: shard 0 has no
    /// users but holds quota 3; shard 1 has three bidders and quota 1.
    fn stranded_setup() -> (Vec<Shard>, Instance, Vec<(usize, UserId)>) {
        let make = |quota: usize, users: usize| {
            let mut b = Instance::builder();
            let v = b.add_event(quota, AttributeVector::empty());
            for _ in 0..users {
                b.add_user(1, AttributeVector::empty(), vec![v]);
            }
            b.interaction_scores(vec![0.5; users]);
            let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
            Shard::new(
                instance,
                Arc::new(NeverConflict),
                Arc::new(ConstantInterest(0.5)),
                Arc::new(GreedyArrangement),
                EngineConfig::default(),
            )
        };
        let shards = vec![make(3, 0), make(1, 3)];
        // Global mirror: capacity 4, three users all bidding for it.
        let mut b = Instance::builder();
        let v = b.add_event(4, AttributeVector::empty());
        for _ in 0..3 {
            b.add_user(1, AttributeVector::empty(), vec![v]);
        }
        b.interaction_scores(vec![0.5; 3]);
        let mirror = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        // To make the event a boundary event, pretend user 0 sits on
        // shard 0 (with no local counterpart needed for quota math).
        let owners = vec![
            (1, UserId::new(0)),
            (1, UserId::new(1)),
            (1, UserId::new(2)),
        ];
        (shards, mirror, owners)
    }

    #[test]
    fn stranded_quota_moves_even_without_boundary_bidders() {
        // All bidders on shard 1 (no boundary event), yet 3 of the 4
        // capacity units sit on shard 0: the exchange must reclaim them.
        let (mut shards, mirror, owners) = stranded_setup();
        let report = run(&mut shards, &mirror, &owners, &[EventId::new(0)], 3);
        assert_eq!(report.boundary_events, 0);
        assert_eq!(report.contended_events, 1);
        assert_eq!(report.quota_moved, 2);
        assert_eq!(shards[1].load_of(EventId::new(0)), 3);
    }

    #[test]
    fn stranded_quota_flows_to_the_demanding_shard() {
        let (mut shards, mirror, mut owners) = stranded_setup();
        owners[0] = (0, UserId::new(0)); // now bidders span both shards
        assert_eq!(shards[1].load_of(EventId::new(0)), 1);
        assert_eq!(shards[1].unmet_demand(EventId::new(0)), 2);
        let report = run(&mut shards, &mirror, &owners, &[EventId::new(0)], 3);
        assert_eq!(report.boundary_events, 1);
        assert_eq!(report.quota_moved, 2);
        assert_eq!(report.rounds_run, 1);
        // Shard 1 got two more units and seated both waiting bidders.
        assert_eq!(shards[1].quota_of(EventId::new(0)), 3);
        assert_eq!(shards[1].load_of(EventId::new(0)), 3);
        assert_eq!(shards[0].quota_of(EventId::new(0)), 1);
        // Quota invariant against the mirror capacity.
        assert_eq!(
            shards[0].quota_of(EventId::new(0)) + shards[1].quota_of(EventId::new(0)),
            4
        );
        // A second pass finds nothing left to move.
        let again = run(&mut shards, &mirror, &owners, &[EventId::new(0)], 3);
        assert_eq!(again.quota_moved, 0);
    }

    /// Two shards over two global events of capacity 2 each: shard 0
    /// holds all the quota and no users; shard 1 hosts two bidders (user
    /// capacity 2, bidding both events) and no quota.
    fn two_event_setup() -> (Vec<Shard>, Instance, Vec<(usize, UserId)>) {
        let make = |quota_a: usize, quota_b: usize, users: usize| {
            let mut b = Instance::builder();
            let a = b.add_event(quota_a, AttributeVector::empty());
            let v = b.add_event(quota_b, AttributeVector::empty());
            for _ in 0..users {
                b.add_user(2, AttributeVector::empty(), vec![a, v]);
            }
            b.interaction_scores(vec![0.5; users]);
            let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
            Shard::new(
                instance,
                Arc::new(NeverConflict),
                Arc::new(ConstantInterest(0.5)),
                Arc::new(GreedyArrangement),
                EngineConfig::default(),
            )
        };
        let shards = vec![make(2, 2, 0), make(0, 0, 2)];
        let mut b = Instance::builder();
        let a = b.add_event(2, AttributeVector::empty());
        let v = b.add_event(2, AttributeVector::empty());
        for _ in 0..2 {
            b.add_user(2, AttributeVector::empty(), vec![a, v]);
        }
        b.interaction_scores(vec![0.5; 2]);
        let mirror = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        let owners = vec![(1, UserId::new(0)), (1, UserId::new(1))];
        (shards, mirror, owners)
    }

    #[test]
    fn multi_event_exchange_settles_in_one_round_regardless_of_budget() {
        // Round 1 moves quota at both events and seats both bidders at
        // both; the restricted second round re-reads only the touched
        // events (plus the admitted bidders' bid lists — the same two
        // events here), finds them fully packed, and stops.
        let (mut shards, mirror, owners) = two_event_setup();
        let events = [EventId::new(0), EventId::new(1)];
        let report = run(&mut shards, &mirror, &owners, &events, 5);
        assert_eq!(report.rounds_run, 1);
        assert_eq!(report.contended_events, 2);
        assert_eq!(report.quota_moved, 4);
        assert_eq!(report.shard_repairs, 2);
        assert_eq!(shards[1].load_of(EventId::new(0)), 2);
        assert_eq!(shards[1].load_of(EventId::new(1)), 2);
        // Pin that the extra round budget changes nothing: a one-round
        // budget produces the identical report, so rounds past the first
        // only pay for the narrowed rescan and never move quota here.
        let (mut shards1, mirror1, owners1) = two_event_setup();
        let single = run(&mut shards1, &mirror1, &owners1, &events, 1);
        assert_eq!(single, report);
    }

    #[test]
    fn zero_rounds_disables_the_pass() {
        let (mut shards, mirror, mut owners) = stranded_setup();
        owners[0] = (0, UserId::new(0));
        let report = run(&mut shards, &mirror, &owners, &[EventId::new(0)], 0);
        assert_eq!(report.quota_moved, 0);
        assert_eq!(shards[1].load_of(EventId::new(0)), 1);
    }

    #[test]
    fn donations_never_exceed_slack_so_nobody_is_evicted() {
        let (mut shards, mirror, mut owners) = stranded_setup();
        owners[0] = (0, UserId::new(0));
        let pairs_before: usize = shards.iter().map(|s| s.arrangement().len()).sum();
        let report = run(&mut shards, &mirror, &owners, &[EventId::new(0)], 3);
        let pairs_after: usize = shards.iter().map(|s| s.arrangement().len()).sum();
        assert!(pairs_after >= pairs_before + report.quota_moved.min(2));
        for shard in &shards {
            assert!(shard.arrangement().is_feasible(shard.instance()));
        }
    }
}
