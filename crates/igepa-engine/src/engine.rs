//! The single-instance serving engine: one [`Shard`] over the full
//! instance.
//!
//! The solve/repair core lives in [`crate::shard`]; this wrapper keeps the
//! original monolithic API (and bit-for-bit behaviour) for callers that do
//! not need sharding. The sharded coordinator is [`crate::ShardedEngine`].

use crate::shard::Shard;
pub use crate::shard::{ApplyOutcome, BatchPolicy, EngineConfig, EngineStats, RepairKind};
use igepa_algos::WarmStart;
use igepa_core::{Arrangement, ConflictFn, CoreError, Instance, InstanceDelta, InterestFn};
use std::sync::Arc;

/// A long-lived arrangement-serving engine over one instance. See the
/// crate docs.
pub struct Engine {
    shard: Shard,
}

impl Engine {
    /// Creates an engine serving `instance`, running an initial cold solve.
    ///
    /// `sigma` and `interest` are consulted only for *new* event pairs and
    /// bid pairs introduced by future deltas; existing cached values are
    /// kept as-is.
    pub fn new(
        instance: Instance,
        sigma: Box<dyn ConflictFn + Send + Sync>,
        interest: Box<dyn InterestFn + Send + Sync>,
        solver: Box<dyn WarmStart + Send + Sync>,
        config: EngineConfig,
    ) -> Self {
        Engine {
            shard: Shard::new(
                instance,
                Arc::from(sigma),
                Arc::from(interest),
                Arc::from(solver),
                config,
            ),
        }
    }

    /// The instance currently served.
    pub fn instance(&self) -> &Instance {
        self.shard.instance()
    }

    /// The arrangement currently served (always feasible for
    /// [`Engine::instance`]).
    pub fn arrangement(&self) -> &Arrangement {
        self.shard.arrangement()
    }

    /// Utility of the served arrangement — O(1), from the shard's
    /// incremental tracker.
    pub fn utility(&self) -> f64 {
        self.shard.utility()
    }

    /// Utility breakdown of the served arrangement — O(1), bit-identical
    /// to `self.arrangement().utility(self.instance())`.
    pub fn utility_breakdown(&self) -> igepa_core::UtilityBreakdown {
        self.shard.utility_breakdown()
    }

    /// Activity counters.
    pub fn stats(&self) -> &EngineStats {
        self.shard.stats()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        self.shard.config()
    }

    /// Applies one delta and repairs the served arrangement.
    ///
    /// On validation errors the instance, arrangement and counters (except
    /// `deltas_rejected`) are unchanged.
    pub fn apply(&mut self, delta: &InstanceDelta) -> Result<ApplyOutcome, CoreError> {
        self.shard.apply(delta)
    }

    /// Applies a batch of deltas with a single repair pass at the end —
    /// cheaper than per-delta repair when deltas arrive in bursts. Returns
    /// one outcome describing the batch. Fails on the first invalid delta;
    /// previously applied deltas of the batch stay applied and the
    /// arrangement is repaired before returning the error.
    pub fn apply_batch(&mut self, deltas: &[InstanceDelta]) -> Result<ApplyOutcome, CoreError> {
        self.shard.apply_batch(deltas)
    }

    /// Forces a cold solve of the current instance and reports the served
    /// utility relative to it (`served / cold`, 1.0 when the cold solve is
    /// empty). Does not modify the served arrangement.
    pub fn cold_solve_ratio(&mut self) -> f64 {
        self.shard.cold_solve_ratio()
    }

    /// The online cost-calibration estimates `(patch ns/candidate,
    /// solve ns/bid)`; see [`Shard::online_cost_estimates`].
    pub fn online_cost_estimates(&self) -> (Option<f64>, Option<f64>) {
        self.shard.online_cost_estimates()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("num_events", &self.instance().num_events())
            .field("num_users", &self.instance().num_users())
            .field("num_pairs", &self.arrangement().len())
            .field("stats", self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_algos::GreedyArrangement;
    use igepa_core::{
        AttributeVector, CapacityTarget, ConstantInterest, EventId, NeverConflict, UserId,
    };

    fn engine_for(num_events: usize, num_users: usize) -> Engine {
        let mut b = Instance::builder();
        let events: Vec<EventId> = (0..num_events)
            .map(|_| b.add_event(2, AttributeVector::empty()))
            .collect();
        for _ in 0..num_users {
            b.add_user(2, AttributeVector::empty(), events.clone());
        }
        b.interaction_scores(vec![0.5; num_users]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        Engine::new(
            instance,
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            EngineConfig::default(),
        )
    }

    #[test]
    fn initial_solve_is_feasible_and_nonempty() {
        let engine = engine_for(3, 4);
        assert!(engine.arrangement().is_feasible(engine.instance()));
        assert!(!engine.arrangement().is_empty());
    }

    #[test]
    fn add_user_gets_seated_by_greedy_patch() {
        let mut engine = engine_for(2, 1);
        let before_pairs = engine.arrangement().len();
        let outcome = engine
            .apply(&InstanceDelta::AddUser {
                capacity: 1,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(0)],
                interaction: 1.0,
            })
            .unwrap();
        assert!(matches!(outcome.repair, RepairKind::GreedyPatch { .. }));
        assert_eq!(outcome.num_pairs, before_pairs + 1);
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn capacity_shrink_evicts_overflow() {
        let mut engine = engine_for(1, 2);
        assert_eq!(engine.arrangement().load_of(EventId::new(0)), 2);
        let outcome = engine
            .apply(&InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(EventId::new(0)),
                capacity: 1,
            })
            .unwrap();
        assert!(matches!(
            outcome.repair,
            RepairKind::GreedyPatch { pruned: 1, .. }
        ));
        assert_eq!(engine.arrangement().load_of(EventId::new(0)), 1);
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn remove_user_clears_their_assignments() {
        let mut engine = engine_for(2, 2);
        engine
            .apply(&InstanceDelta::RemoveUser {
                user: UserId::new(0),
            })
            .unwrap();
        assert!(engine.arrangement().events_of(UserId::new(0)).is_empty());
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn rejected_delta_leaves_engine_intact() {
        let mut engine = engine_for(2, 2);
        let utility = engine.utility();
        let err = engine.apply(&InstanceDelta::UpdateInteractionScore {
            user: UserId::new(9),
            score: 0.5,
        });
        assert!(err.is_err());
        assert_eq!(engine.utility(), utility);
        assert_eq!(engine.stats().deltas_rejected, 1);
        assert_eq!(engine.stats().deltas_applied, 0);
    }

    #[test]
    fn batch_apply_repairs_once() {
        let mut engine = engine_for(2, 2);
        let deltas: Vec<InstanceDelta> = (0..5)
            .map(|i| InstanceDelta::AddUser {
                capacity: 1,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(i % 2)],
                interaction: 0.5,
            })
            .collect();
        let patches_before = engine.stats().greedy_patches + engine.stats().full_resolves;
        engine.apply_batch(&deltas).unwrap();
        let patches_after = engine.stats().greedy_patches + engine.stats().full_resolves;
        assert_eq!(patches_after - patches_before, 1);
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn large_dirty_set_escalates_to_full_resolve() {
        let mut engine = engine_for(2, 4);
        // Touch every user in one batch: dirty users (4) > 25% of 4 users.
        let deltas: Vec<InstanceDelta> = (0..4)
            .map(|u| InstanceDelta::UpdateInteractionScore {
                user: UserId::new(u),
                score: 0.9,
            })
            .collect();
        let outcome = engine.apply_batch(&deltas).unwrap();
        assert_eq!(outcome.repair, RepairKind::FullResolve);
        assert_eq!(engine.stats().full_resolves, 1);
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn staleness_check_fires_on_interval() {
        let mut b = Instance::builder();
        let v = b.add_event(4, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![v]);
        b.interaction_scores(vec![0.5]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        let mut engine = Engine::new(
            instance,
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            EngineConfig {
                staleness_check_interval: 2,
                ..EngineConfig::default()
            },
        );
        for u in 0..4u32 {
            engine
                .apply(&InstanceDelta::UpdateInteractionScore {
                    user: UserId::new(0),
                    score: 0.1 + 0.1 * f64::from(u),
                })
                .unwrap();
        }
        assert_eq!(engine.stats().staleness_checks, 2);
    }

    #[test]
    fn cold_solve_ratio_is_high_after_repairs() {
        let mut engine = engine_for(3, 3);
        for i in 0..6 {
            engine
                .apply(&InstanceDelta::AddUser {
                    capacity: 1,
                    attrs: AttributeVector::empty(),
                    bids: vec![EventId::new(i % 3)],
                    interaction: 0.25,
                })
                .unwrap();
        }
        let ratio = engine.cold_solve_ratio();
        assert!(ratio >= 0.95, "ratio {ratio} too low");
    }
}
