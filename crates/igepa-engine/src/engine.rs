//! The serving engine: delta application, dirty tracking and the
//! warm-start repair loop. See the crate docs for the model.

use igepa_algos::{admit_greedily, WarmStart};
use igepa_core::{
    Arrangement, ConflictFn, CoreError, DirtySet, EventId, Instance, InstanceDelta, InterestFn,
    UserId,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Tuning knobs of the repair loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Base seed for every solver invocation; solves draw `seed`,
    /// `seed + 1`, … so runs are reproducible.
    pub seed: u64,
    /// When the dirty-user count exceeds this fraction of all users, the
    /// greedy patch escalates to a full warm-start re-solve.
    pub escalation_fraction: f64,
    /// Run a cold solve and compare utilities every this many deltas
    /// (0 disables staleness checking).
    pub staleness_check_interval: u64,
    /// Adopt the cold solution when the served utility falls below
    /// `(1 − max_staleness) ×` the cold utility.
    pub max_staleness: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0,
            escalation_fraction: 0.25,
            staleness_check_interval: 256,
            max_staleness: 0.05,
        }
    }
}

/// Counters describing the engine's activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Deltas applied successfully.
    pub deltas_applied: u64,
    /// Deltas rejected by validation.
    pub deltas_rejected: u64,
    /// Repairs handled by the greedy patch.
    pub greedy_patches: u64,
    /// Repairs escalated to a full warm-start re-solve.
    pub full_resolves: u64,
    /// Cold solves adopted by the staleness check.
    pub staleness_resolves: u64,
    /// Cold solves run by the staleness check (adopted or not).
    pub staleness_checks: u64,
    /// Utility drift `1 − served/cold` observed at the last staleness
    /// check (negative when the served arrangement was better).
    pub last_observed_drift: f64,
}

/// How [`Engine::apply`] restored the arrangement after a delta.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepairKind {
    /// The delta left the arrangement feasible and no candidates improved
    /// it (nothing changed).
    Untouched,
    /// Local prune / evict / re-admit around the dirty set.
    GreedyPatch {
        /// Pairs removed while restoring feasibility.
        pruned: usize,
        /// Pairs added back by greedy re-admission.
        added: usize,
    },
    /// Full warm-start re-solve (dirty set exceeded the escalation
    /// threshold).
    FullResolve,
    /// A staleness check replaced the served arrangement with a fresh cold
    /// solve (possibly after one of the other repairs ran first).
    StalenessResolve,
}

/// Result of one successful [`Engine::apply`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplyOutcome {
    /// What kind of delta was applied.
    pub kind: String,
    /// How the arrangement was repaired.
    pub repair: RepairKind,
    /// Utility of the served arrangement after repair.
    pub utility: f64,
    /// Number of (event, user) pairs served after repair.
    pub num_pairs: usize,
}

/// A long-lived arrangement-serving engine. See the crate docs.
pub struct Engine {
    instance: Instance,
    arrangement: Arrangement,
    dirty: DirtySet,
    sigma: Box<dyn ConflictFn>,
    interest: Box<dyn InterestFn>,
    solver: Box<dyn WarmStart>,
    config: EngineConfig,
    stats: EngineStats,
    solve_counter: u64,
    /// `stats.deltas_applied` at the last staleness check.
    last_staleness_check: u64,
}

impl Engine {
    /// Creates an engine serving `instance`, running an initial cold solve.
    ///
    /// `sigma` and `interest` are consulted only for *new* event pairs and
    /// bid pairs introduced by future deltas; existing cached values are
    /// kept as-is.
    pub fn new(
        instance: Instance,
        sigma: Box<dyn ConflictFn>,
        interest: Box<dyn InterestFn>,
        solver: Box<dyn WarmStart>,
        config: EngineConfig,
    ) -> Self {
        let mut engine = Engine {
            arrangement: Arrangement::empty_for(&instance),
            instance,
            dirty: DirtySet::new(),
            sigma,
            interest,
            solver,
            config,
            stats: EngineStats::default(),
            solve_counter: 0,
            last_staleness_check: 0,
        };
        engine.arrangement = engine.next_solve(None);
        engine
    }

    /// The instance currently served.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The arrangement currently served (always feasible for
    /// [`Engine::instance`]).
    pub fn arrangement(&self) -> &Arrangement {
        &self.arrangement
    }

    /// Utility of the served arrangement.
    pub fn utility(&self) -> f64 {
        self.arrangement.utility_value(&self.instance)
    }

    /// Activity counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Applies one delta and repairs the served arrangement.
    ///
    /// On validation errors the instance, arrangement and counters (except
    /// `deltas_rejected`) are unchanged.
    pub fn apply(&mut self, delta: &InstanceDelta) -> Result<ApplyOutcome, CoreError> {
        let effect =
            match self
                .instance
                .apply_delta(delta, self.sigma.as_ref(), self.interest.as_ref())
            {
                Ok(effect) => effect,
                Err(e) => {
                    self.stats.deltas_rejected += 1;
                    return Err(e);
                }
            };
        self.arrangement
            .grow(self.instance.num_events(), self.instance.num_users());
        self.dirty.absorb(&effect);
        self.stats.deltas_applied += 1;

        let mut repair = self.repair();
        if self.maybe_check_staleness() {
            repair = RepairKind::StalenessResolve;
        }

        Ok(ApplyOutcome {
            kind: delta.kind().to_string(),
            repair,
            utility: self.utility(),
            num_pairs: self.arrangement.len(),
        })
    }

    /// Applies a batch of deltas with a single repair pass at the end —
    /// cheaper than per-delta repair when deltas arrive in bursts. Returns
    /// one outcome describing the batch. Fails on the first invalid delta;
    /// previously applied deltas of the batch stay applied and the
    /// arrangement is repaired before returning the error.
    pub fn apply_batch(&mut self, deltas: &[InstanceDelta]) -> Result<ApplyOutcome, CoreError> {
        let mut first_error = None;
        for delta in deltas {
            match self
                .instance
                .apply_delta(delta, self.sigma.as_ref(), self.interest.as_ref())
            {
                Ok(effect) => {
                    self.arrangement
                        .grow(self.instance.num_events(), self.instance.num_users());
                    self.dirty.absorb(&effect);
                    self.stats.deltas_applied += 1;
                }
                Err(e) => {
                    self.stats.deltas_rejected += 1;
                    first_error = Some(e);
                    break;
                }
            }
        }
        let mut repair = self.repair();
        if self.maybe_check_staleness() {
            repair = RepairKind::StalenessResolve;
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(ApplyOutcome {
            kind: "batch".to_string(),
            repair,
            utility: self.utility(),
            num_pairs: self.arrangement.len(),
        })
    }

    /// Forces a cold solve of the current instance and reports the served
    /// utility relative to it (`served / cold`, 1.0 when the cold solve is
    /// empty). Does not modify the served arrangement.
    pub fn cold_solve_ratio(&mut self) -> f64 {
        let cold = self.next_solve(None);
        let cold_utility = cold.utility_value(&self.instance);
        if cold_utility <= 0.0 {
            return 1.0;
        }
        self.utility() / cold_utility
    }

    /// Runs the solver; with `Some(previous)` it warm-starts from it.
    fn next_solve(&mut self, previous: Option<&Arrangement>) -> Arrangement {
        let seed = self.config.seed.wrapping_add(self.solve_counter);
        self.solve_counter += 1;
        match previous {
            Some(prev) => self.solver.resolve_seeded(&self.instance, prev, seed),
            None => self.solver.run_seeded(&self.instance, seed),
        }
    }

    fn repair(&mut self) -> RepairKind {
        if self.dirty.is_empty() {
            return RepairKind::Untouched;
        }
        let threshold =
            (self.config.escalation_fraction * self.instance.num_users() as f64).max(1.0);
        let repair = if self.dirty.users.len() as f64 > threshold {
            let previous = std::mem::replace(
                &mut self.arrangement,
                Arrangement::empty_for(&self.instance),
            );
            self.arrangement = self.next_solve(Some(&previous));
            self.stats.full_resolves += 1;
            RepairKind::FullResolve
        } else {
            self.greedy_patch()
        };
        self.dirty.clear();
        repair
    }

    /// Local repair: prune dirty users' assignments, evict overflow at
    /// dirty events, then greedily re-admit the heaviest feasible
    /// candidate pairs around the dirty set.
    fn greedy_patch(&mut self) -> RepairKind {
        let mut pruned = 0usize;

        // Re-seat every dirty user from scratch: removing all their pairs
        // and re-adding greedily uniformly handles revoked bids, shrunk
        // user capacities and conflict structure around new assignments.
        let dirty_users: Vec<UserId> = self.dirty.users.iter().copied().collect();
        for &u in &dirty_users {
            pruned += self.arrangement.remove_user_assignments(u).len();
        }

        // Evict overflow at dirty events (capacity may have shrunk),
        // dropping the lightest attendees first.
        let dirty_events: Vec<EventId> = self.dirty.events.iter().copied().collect();
        let mut evicted_users: BTreeSet<UserId> = BTreeSet::new();
        for &v in &dirty_events {
            let capacity = self.instance.event(v).capacity;
            if self.arrangement.load_of(v) <= capacity {
                continue;
            }
            let mut attendees: Vec<(f64, UserId)> = self
                .arrangement
                .users_of(v)
                .into_iter()
                .map(|u| (self.instance.weight(v, u), u))
                .collect();
            attendees.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.cmp(&b.1))
            });
            let overflow = self.arrangement.load_of(v) - capacity;
            for &(_, u) in attendees.iter().take(overflow) {
                self.arrangement.unassign(v, u);
                evicted_users.insert(u);
                pruned += 1;
            }
        }

        // Candidate pairs: dirty users × their bids, dirty events × their
        // bidders, and every bid of a user evicted above (they may fit
        // elsewhere).
        let mut candidates: BTreeSet<(EventId, UserId)> = BTreeSet::new();
        for &u in dirty_users.iter().chain(evicted_users.iter()) {
            for &v in &self.instance.user(u).bids {
                candidates.insert((v, u));
            }
        }
        for &v in &dirty_events {
            for &u in &self.instance.event(v).bidders {
                candidates.insert((v, u));
            }
        }

        let added = admit_greedily(&self.instance, &mut self.arrangement, candidates);

        if pruned == 0 && added == 0 {
            RepairKind::Untouched
        } else {
            self.stats.greedy_patches += 1;
            RepairKind::GreedyPatch { pruned, added }
        }
    }

    /// Runs the staleness check when at least
    /// `staleness_check_interval` deltas accumulated since the last one.
    /// Tracking the last-check watermark (rather than exact interval
    /// multiples) means batches that jump over a multiple still trigger
    /// the check, so the configured drift bound holds on every apply
    /// path.
    fn maybe_check_staleness(&mut self) -> bool {
        let interval = self.config.staleness_check_interval;
        if interval == 0 || self.stats.deltas_applied - self.last_staleness_check < interval {
            return false;
        }
        self.last_staleness_check = self.stats.deltas_applied;
        self.check_staleness()
    }

    /// Cold-solves the current instance and adopts the result when the
    /// served utility drifted too far. Returns whether it was adopted.
    fn check_staleness(&mut self) -> bool {
        let cold = self.next_solve(None);
        self.stats.staleness_checks += 1;
        let cold_utility = cold.utility_value(&self.instance);
        let served_utility = self.utility();
        self.stats.last_observed_drift = if cold_utility > 0.0 {
            1.0 - served_utility / cold_utility
        } else {
            0.0
        };
        if served_utility < (1.0 - self.config.max_staleness) * cold_utility {
            self.arrangement = cold;
            self.stats.staleness_resolves += 1;
            true
        } else {
            false
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("num_events", &self.instance.num_events())
            .field("num_users", &self.instance.num_users())
            .field("num_pairs", &self.arrangement.len())
            .field("dirty", &self.dirty.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_algos::GreedyArrangement;
    use igepa_core::{AttributeVector, CapacityTarget, ConstantInterest, NeverConflict};

    fn engine_for(num_events: usize, num_users: usize) -> Engine {
        let mut b = Instance::builder();
        let events: Vec<EventId> = (0..num_events)
            .map(|_| b.add_event(2, AttributeVector::empty()))
            .collect();
        for _ in 0..num_users {
            b.add_user(2, AttributeVector::empty(), events.clone());
        }
        b.interaction_scores(vec![0.5; num_users]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        Engine::new(
            instance,
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            EngineConfig::default(),
        )
    }

    #[test]
    fn initial_solve_is_feasible_and_nonempty() {
        let engine = engine_for(3, 4);
        assert!(engine.arrangement().is_feasible(engine.instance()));
        assert!(!engine.arrangement().is_empty());
    }

    #[test]
    fn add_user_gets_seated_by_greedy_patch() {
        let mut engine = engine_for(2, 1);
        let before_pairs = engine.arrangement().len();
        let outcome = engine
            .apply(&InstanceDelta::AddUser {
                capacity: 1,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(0)],
                interaction: 1.0,
            })
            .unwrap();
        assert!(matches!(outcome.repair, RepairKind::GreedyPatch { .. }));
        assert_eq!(outcome.num_pairs, before_pairs + 1);
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn capacity_shrink_evicts_overflow() {
        let mut engine = engine_for(1, 2);
        assert_eq!(engine.arrangement().load_of(EventId::new(0)), 2);
        let outcome = engine
            .apply(&InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(EventId::new(0)),
                capacity: 1,
            })
            .unwrap();
        assert!(matches!(
            outcome.repair,
            RepairKind::GreedyPatch { pruned: 1, .. }
        ));
        assert_eq!(engine.arrangement().load_of(EventId::new(0)), 1);
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn remove_user_clears_their_assignments() {
        let mut engine = engine_for(2, 2);
        engine
            .apply(&InstanceDelta::RemoveUser {
                user: UserId::new(0),
            })
            .unwrap();
        assert!(engine.arrangement().events_of(UserId::new(0)).is_empty());
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn rejected_delta_leaves_engine_intact() {
        let mut engine = engine_for(2, 2);
        let utility = engine.utility();
        let err = engine.apply(&InstanceDelta::UpdateInteractionScore {
            user: UserId::new(9),
            score: 0.5,
        });
        assert!(err.is_err());
        assert_eq!(engine.utility(), utility);
        assert_eq!(engine.stats().deltas_rejected, 1);
        assert_eq!(engine.stats().deltas_applied, 0);
    }

    #[test]
    fn batch_apply_repairs_once() {
        let mut engine = engine_for(2, 2);
        let deltas: Vec<InstanceDelta> = (0..5)
            .map(|i| InstanceDelta::AddUser {
                capacity: 1,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(i % 2)],
                interaction: 0.5,
            })
            .collect();
        let patches_before = engine.stats().greedy_patches + engine.stats().full_resolves;
        engine.apply_batch(&deltas).unwrap();
        let patches_after = engine.stats().greedy_patches + engine.stats().full_resolves;
        assert_eq!(patches_after - patches_before, 1);
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn large_dirty_set_escalates_to_full_resolve() {
        let mut engine = engine_for(2, 4);
        // Touch every user in one batch: dirty users (4) > 25% of 4 users.
        let deltas: Vec<InstanceDelta> = (0..4)
            .map(|u| InstanceDelta::UpdateInteractionScore {
                user: UserId::new(u),
                score: 0.9,
            })
            .collect();
        let outcome = engine.apply_batch(&deltas).unwrap();
        assert_eq!(outcome.repair, RepairKind::FullResolve);
        assert_eq!(engine.stats().full_resolves, 1);
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn staleness_check_fires_on_interval() {
        let mut b = Instance::builder();
        let v = b.add_event(4, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![v]);
        b.interaction_scores(vec![0.5]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        let mut engine = Engine::new(
            instance,
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            EngineConfig {
                staleness_check_interval: 2,
                ..EngineConfig::default()
            },
        );
        for u in 0..4u32 {
            engine
                .apply(&InstanceDelta::UpdateInteractionScore {
                    user: UserId::new(0),
                    score: 0.1 + 0.1 * f64::from(u),
                })
                .unwrap();
        }
        assert_eq!(engine.stats().staleness_checks, 2);
    }

    #[test]
    fn cold_solve_ratio_is_high_after_repairs() {
        let mut engine = engine_for(3, 3);
        for i in 0..6 {
            engine
                .apply(&InstanceDelta::AddUser {
                    capacity: 1,
                    attrs: AttributeVector::empty(),
                    bids: vec![EventId::new(i % 3)],
                    interaction: 0.25,
                })
                .unwrap();
        }
        let ratio = engine.cold_solve_ratio();
        assert!(ratio >= 0.95, "ratio {ratio} too low");
    }
}
