//! The service layer: protocol semantics defined once, over any backend.
//!
//! Before this module existed, [`Engine`](crate::Engine) and
//! [`ShardedEngine`](crate::ShardedEngine) each carried their own ~90-line
//! `handle`/`answer` implementation — two near-duplicate copies of the
//! protocol's meaning that had already begun to drift. The redesign moves
//! every semantic decision here:
//!
//! * [`EngineBackend`] is the complete surface a protocol implementation
//!   needs from a serving engine (apply, rebalance, and the read-side
//!   accessors). Both engines implement it; the monolithic one behaves as
//!   a single logical shard.
//! * [`EngineService`] interprets requests against a backend. It speaks
//!   two dialects: the **legacy** path reproduces the pre-envelope
//!   protocol bit for bit (stringly `Rejected`, silent `[]` / `(0, 0)`
//!   answers for unknown ids), and the **strict** path — used for
//!   [`RequestEnvelope`]s at [`PROTOCOL_VERSION`] — returns typed
//!   [`EngineError`]s instead.
//!
//! A recorded pre-envelope JSONL log therefore replays through
//! [`EngineService`] with byte-identical responses, while new clients get
//! a versioned, typed API on the same code path.

use crate::coordinator::{ShardStatsEntry, ShardedEngine};
use crate::engine::Engine;
use crate::error::{EngineError, EntityRef};
use crate::protocol::{
    decode_request_envelope, EngineQuery, EngineRequest, EngineResponse, MigrationRecord,
    RequestEnvelope, ResponseEnvelope, LEGACY_VERSION, PROTOCOL_VERSION,
};
use crate::reconcile::ReconcileReport;
use crate::shard::{ApplyOutcome, EngineStats};
use igepa_core::{CoreError, EventId, InstanceDelta, UserId, UtilityBreakdown};

/// Everything the protocol needs from a serving engine. The replay driver
/// and the TCP transport are generic over this trait, so one service
/// implementation covers monolithic and sharded serving.
pub trait EngineBackend {
    /// Applies one delta and repairs the served arrangement.
    fn apply(&mut self, delta: &InstanceDelta) -> Result<ApplyOutcome, CoreError>;

    /// Applies a burst of deltas with one repair pass per touched shard.
    fn apply_batch(&mut self, deltas: &[InstanceDelta]) -> Result<ApplyOutcome, CoreError>;

    /// Runs a reconciliation pass and reports it plus the utility after
    /// the pass (a no-op report on a monolithic engine).
    fn rebalance(&mut self) -> (ReconcileReport, f64);

    /// Re-places every user across `num_shards` shards (see
    /// [`ShardedEngine::reshard`]). A monolithic engine serves exactly one
    /// logical shard: resharding *to* one is a no-op, any other target is
    /// rejected. Errors are human-readable rejection details.
    fn reshard(&mut self, num_shards: usize) -> Result<MigrationRecord, String>;

    /// Utility breakdown of the served (merged) arrangement.
    fn utility_breakdown(&self) -> UtilityBreakdown;

    /// Users in the served instance (including retired ones).
    fn num_users(&self) -> usize;

    /// Events in the served instance.
    fn num_events(&self) -> usize;

    /// Events currently assigned to a user. Callers have already
    /// bounds-checked `user`; the service layer decides how out-of-range
    /// ids are reported.
    fn assignments_of(&self, user: UserId) -> Vec<EventId>;

    /// `(load, capacity)` of an in-range event.
    fn event_load(&self, event: EventId) -> (usize, usize);

    /// Aggregated activity counters.
    fn engine_stats(&self) -> EngineStats;

    /// Per-shard summaries (one entry on a monolithic engine).
    fn shard_stats(&self) -> Vec<ShardStatsEntry>;

    /// `(num_events, num_users, utility, pairs)` of the merged snapshot.
    fn merged_snapshot(&self) -> (usize, usize, f64, Vec<(EventId, UserId)>);

    /// Utility currently served (merged across shards where applicable).
    fn served_utility(&self) -> f64;

    /// Pairs currently served (merged across shards where applicable).
    fn served_pairs(&self) -> usize;

    /// Current epoch of the shared event catalogue (0 on backends without
    /// one). WAL records carry it so a replayed log can be audited against
    /// the catalogue history it was recorded under.
    fn catalog_epoch(&self) -> u64 {
        0
    }

    /// Handles one protocol request with legacy semantics. Defined once,
    /// here, for every backend.
    fn handle(&mut self, request: &EngineRequest) -> EngineResponse
    where
        Self: Sized,
    {
        handle_request(self, request)
    }
}

/// Builds the `Applied` response from an apply outcome (shared by the
/// service dispatch and the per-shard worker transport).
pub(crate) fn applied_response(outcome: ApplyOutcome) -> EngineResponse {
    EngineResponse::Applied {
        kind: outcome.kind,
        repair: outcome.repair,
        utility: outcome.utility,
        num_pairs: outcome.num_pairs,
    }
}

/// The single protocol interpretation. `strict` selects the enveloped
/// dialect: out-of-range query ids become [`EngineError::NotFound`]
/// instead of the legacy silent `[]` / `(0, 0)` answers.
fn try_dispatch<B: EngineBackend>(
    backend: &mut B,
    request: &EngineRequest,
    strict: bool,
) -> Result<EngineResponse, EngineError> {
    match request {
        EngineRequest::Apply { delta } => backend
            .apply(delta)
            .map(applied_response)
            .map_err(|e| EngineError::from(&e)),
        EngineRequest::ApplyBatch { deltas } => backend
            .apply_batch(deltas)
            .map(applied_response)
            .map_err(|e| EngineError::from(&e)),
        EngineRequest::Rebalance => {
            let (report, utility) = backend.rebalance();
            Ok(EngineResponse::Rebalanced { report, utility })
        }
        // Checkpoints are an admin action on the durability layer; the
        // durable TCP server intercepts them before dispatch. A backend
        // reached directly has no WAL to checkpoint.
        EngineRequest::Checkpoint => Err(EngineError::Rejected {
            reason: crate::error::RejectReason::Invalid {
                detail: "durability not enabled on this server".to_string(),
            },
        }),
        // The TCP server wraps this arm in its migration seam (barrier,
        // pre/post checkpoints, worker-pool resize); dispatched directly it
        // is the bare engine-side migration, which is what WAL replay needs
        // to re-perform the identical re-placement.
        EngineRequest::Reshard { num_shards } => backend
            .reshard(*num_shards)
            .map(|record| {
                let utility = backend.served_utility();
                EngineResponse::Resharded { record, utility }
            })
            .map_err(|detail| EngineError::Rejected {
                reason: crate::error::RejectReason::Invalid { detail },
            }),
        EngineRequest::Query { query } => answer(backend, *query, strict),
    }
}

fn answer<B: EngineBackend>(
    backend: &B,
    query: EngineQuery,
    strict: bool,
) -> Result<EngineResponse, EngineError> {
    match query {
        EngineQuery::Utility => {
            let breakdown = backend.utility_breakdown();
            Ok(EngineResponse::Utility {
                total: breakdown.total,
                interest_sum: breakdown.interest_sum,
                interaction_sum: breakdown.interaction_sum,
            })
        }
        EngineQuery::AssignmentsOf { user } => {
            if user.index() >= backend.num_users() {
                if strict {
                    return Err(EngineError::NotFound {
                        entity: EntityRef::User { user },
                    });
                }
                return Ok(EngineResponse::Assignments {
                    user,
                    events: Vec::new(),
                });
            }
            Ok(EngineResponse::Assignments {
                user,
                events: backend.assignments_of(user),
            })
        }
        EngineQuery::EventLoad { event } => {
            if event.index() >= backend.num_events() {
                if strict {
                    return Err(EngineError::NotFound {
                        entity: EntityRef::Event { event },
                    });
                }
                return Ok(EngineResponse::EventLoad {
                    event,
                    load: 0,
                    capacity: 0,
                });
            }
            let (load, capacity) = backend.event_load(event);
            Ok(EngineResponse::EventLoad {
                event,
                load,
                capacity,
            })
        }
        EngineQuery::Stats => Ok(EngineResponse::Stats {
            stats: backend.engine_stats(),
        }),
        EngineQuery::ShardStats => Ok(EngineResponse::ShardStats {
            shards: backend.shard_stats(),
        }),
        EngineQuery::MergedSnapshot => {
            let (num_events, num_users, utility, pairs) = backend.merged_snapshot();
            Ok(EngineResponse::Snapshot {
                num_events,
                num_users,
                utility,
                pairs,
            })
        }
        // The durable TCP server answers this at its dispatcher with live
        // counters; a backend reached directly reports durability off.
        EngineQuery::DurabilityStats => Ok(EngineResponse::DurabilityStats {
            enabled: false,
            policy: "off".to_string(),
            wal_records: 0,
            wal_bytes: 0,
            fsyncs: 0,
            segments: 0,
            checkpoints: 0,
            last_checkpoint_seq: 0,
        }),
        // The TCP server answers this at its connection threads with live
        // counters; a backend reached directly has no dispatch queue.
        EngineQuery::OverloadStats => Ok(EngineResponse::OverloadStats {
            stats: crate::protocol::OverloadStats {
                policy: "unbounded".to_string(),
                queue_depth: 0,
                high_water: 0,
                shed: 0,
                deadline_expired: 0,
                read_only: false,
            },
        }),
    }
}

/// Handles one request with legacy (pre-envelope) semantics: rejections
/// come back as the stringly `Rejected` response and out-of-range query
/// ids answer silently. This is the path replayed request logs take.
pub fn handle_request<B: EngineBackend>(
    backend: &mut B,
    request: &EngineRequest,
) -> EngineResponse {
    match try_dispatch(backend, request, false) {
        Ok(response) => response,
        Err(EngineError::Rejected { reason }) => EngineResponse::Rejected {
            reason: reason.to_string(),
        },
        // Non-strict dispatch only fails on rejected deltas, but keep the
        // mapping total rather than panic on a future error kind.
        Err(other) => EngineResponse::Rejected {
            reason: other.to_string(),
        },
    }
}

/// Version-gated envelope dispatch against a backend; shared by
/// [`EngineService::handle_envelope`] and the TCP transport's barrier
/// path so the two can never disagree.
pub(crate) fn dispatch_envelope<B: EngineBackend>(
    backend: &mut B,
    envelope: &RequestEnvelope,
) -> ResponseEnvelope {
    let result = match envelope.version {
        PROTOCOL_VERSION => try_dispatch(backend, &envelope.body, true),
        LEGACY_VERSION => Ok(handle_request(backend, &envelope.body)),
        version => Err(EngineError::Unsupported { version }),
    };
    ResponseEnvelope {
        id: envelope.id,
        result,
    }
}

/// The engine service: one backend plus the protocol interpretation.
///
/// ```
/// use igepa_core::{AttributeVector, ConstantInterest, Instance, NeverConflict};
/// use igepa_algos::GreedyArrangement;
/// use igepa_engine::{Engine, EngineConfig, EngineQuery, EngineRequest, EngineService};
///
/// let mut b = Instance::builder();
/// let v = b.add_event(2, AttributeVector::empty());
/// b.add_user(1, AttributeVector::empty(), vec![v]);
/// b.interaction_scores(vec![0.4]);
/// let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
/// let engine = Engine::new(
///     instance,
///     Box::new(NeverConflict),
///     Box::new(ConstantInterest(0.5)),
///     Box::new(GreedyArrangement),
///     EngineConfig::default(),
/// );
///
/// let mut service = EngineService::new(engine);
/// let response = service.handle(&EngineRequest::Query {
///     query: EngineQuery::Utility,
/// });
/// assert!(matches!(response, igepa_engine::EngineResponse::Utility { .. }));
/// ```
pub struct EngineService<B: EngineBackend> {
    backend: B,
}

impl<B: EngineBackend> EngineService<B> {
    /// Wraps a backend.
    pub fn new(backend: B) -> Self {
        EngineService { backend }
    }

    /// The wrapped backend, read-only.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The wrapped backend, mutable (for direct engine access between
    /// requests).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Unwraps the backend.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Handles one request with legacy semantics (see [`handle_request`]).
    pub fn handle(&mut self, request: &EngineRequest) -> EngineResponse {
        handle_request(&mut self.backend, request)
    }

    /// Handles one request with strict semantics: typed errors, and
    /// `NotFound` for out-of-range query ids.
    pub fn try_handle(&mut self, request: &EngineRequest) -> Result<EngineResponse, EngineError> {
        try_dispatch(&mut self.backend, request, true)
    }

    /// Handles one enveloped request. The envelope's version selects the
    /// dialect: [`PROTOCOL_VERSION`] is strict, [`LEGACY_VERSION`] (the
    /// version assigned to bare pre-envelope requests by the decoder)
    /// keeps legacy semantics, and anything else is
    /// [`EngineError::Unsupported`].
    pub fn handle_envelope(&mut self, envelope: &RequestEnvelope) -> ResponseEnvelope {
        dispatch_envelope(&mut self.backend, envelope)
    }

    /// Decodes one wire line (enveloped or legacy-bare) and handles it.
    /// Undecodable lines answer [`EngineError::Malformed`] under
    /// `fallback_id` instead of tearing down the connection.
    pub fn handle_line(&mut self, line: &str, fallback_id: u64) -> ResponseEnvelope {
        match decode_request_envelope(line, fallback_id) {
            Ok(envelope) => self.handle_envelope(&envelope),
            Err(e) => ResponseEnvelope {
                id: fallback_id,
                result: Err(EngineError::Malformed { detail: e.message }),
            },
        }
    }
}

// ------------------------------------------------------- backend impls

impl EngineBackend for Engine {
    fn apply(&mut self, delta: &InstanceDelta) -> Result<ApplyOutcome, CoreError> {
        Engine::apply(self, delta)
    }

    fn apply_batch(&mut self, deltas: &[InstanceDelta]) -> Result<ApplyOutcome, CoreError> {
        Engine::apply_batch(self, deltas)
    }

    fn rebalance(&mut self) -> (ReconcileReport, f64) {
        // A monolithic engine has no shard boundary to reconcile.
        (ReconcileReport::default(), self.utility())
    }

    fn reshard(&mut self, num_shards: usize) -> Result<MigrationRecord, String> {
        if num_shards == 1 {
            // Already the requested shape: a vacuous migration.
            return Ok(MigrationRecord {
                from_shards: 1,
                to_shards: 1,
                moved_users: 0,
                quota_moved: 0,
                catalog_epoch: 0,
            });
        }
        Err(format!(
            "a monolithic engine serves one logical shard; cannot reshard to {num_shards}"
        ))
    }

    fn utility_breakdown(&self) -> UtilityBreakdown {
        // O(1): the engine's incrementally tracked breakdown (bit-identical
        // to a from-scratch recompute over the served arrangement).
        Engine::utility_breakdown(self)
    }

    fn num_users(&self) -> usize {
        self.instance().num_users()
    }

    fn num_events(&self) -> usize {
        self.instance().num_events()
    }

    fn assignments_of(&self, user: UserId) -> Vec<EventId> {
        self.arrangement().events_of(user).to_vec()
    }

    fn event_load(&self, event: EventId) -> (usize, usize) {
        (
            self.arrangement().load_of(event),
            self.instance().event(event).capacity,
        )
    }

    fn engine_stats(&self) -> EngineStats {
        *self.stats()
    }

    fn shard_stats(&self) -> Vec<ShardStatsEntry> {
        vec![ShardStatsEntry {
            shard: 0,
            users: self.instance().num_users(),
            pairs: self.arrangement().len(),
            utility: self.utility(),
            stats: *self.stats(),
            moved_in: 0,
            moved_out: 0,
        }]
    }

    fn merged_snapshot(&self) -> (usize, usize, f64, Vec<(EventId, UserId)>) {
        (
            self.instance().num_events(),
            self.instance().num_users(),
            self.utility(),
            self.arrangement().pairs().collect(),
        )
    }

    fn served_utility(&self) -> f64 {
        self.utility()
    }

    fn served_pairs(&self) -> usize {
        self.arrangement().len()
    }
}

impl EngineBackend for ShardedEngine {
    fn apply(&mut self, delta: &InstanceDelta) -> Result<ApplyOutcome, CoreError> {
        ShardedEngine::apply(self, delta)
    }

    fn apply_batch(&mut self, deltas: &[InstanceDelta]) -> Result<ApplyOutcome, CoreError> {
        ShardedEngine::apply_batch(self, deltas)
    }

    fn rebalance(&mut self) -> (ReconcileReport, f64) {
        let report = ShardedEngine::rebalance(self);
        let utility = self.merged_utility().total;
        (report, utility)
    }

    fn reshard(&mut self, num_shards: usize) -> Result<MigrationRecord, String> {
        ShardedEngine::reshard(self, num_shards)
    }

    fn utility_breakdown(&self) -> UtilityBreakdown {
        self.merged_utility()
    }

    fn num_users(&self) -> usize {
        self.instance().num_users()
    }

    fn num_events(&self) -> usize {
        self.instance().num_events()
    }

    fn assignments_of(&self, user: UserId) -> Vec<EventId> {
        ShardedEngine::assignments_of(self, user)
    }

    fn event_load(&self, event: EventId) -> (usize, usize) {
        (
            (0..self.num_shards())
                .map(|k| self.shard(k).load_of(event))
                .sum(),
            self.instance().event(event).capacity,
        )
    }

    fn engine_stats(&self) -> EngineStats {
        self.stats()
    }

    fn shard_stats(&self) -> Vec<ShardStatsEntry> {
        self.shard_stats_entries()
    }

    fn merged_snapshot(&self) -> (usize, usize, f64, Vec<(EventId, UserId)>) {
        let merged = self.merged_arrangement();
        (
            self.instance().num_events(),
            self.instance().num_users(),
            merged.utility_value(self.instance()),
            merged.pairs().collect(),
        )
    }

    fn served_utility(&self) -> f64 {
        self.utility()
    }

    fn served_pairs(&self) -> usize {
        self.num_pairs()
    }

    fn catalog_epoch(&self) -> u64 {
        self.catalog().epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::error::RejectReason;
    use igepa_algos::GreedyArrangement;
    use igepa_core::{AttributeVector, ConstantInterest, Instance, NeverConflict};

    fn service_for(num_events: usize, num_users: usize) -> EngineService<Engine> {
        let mut b = Instance::builder();
        let events: Vec<EventId> = (0..num_events)
            .map(|_| b.add_event(2, AttributeVector::empty()))
            .collect();
        for _ in 0..num_users {
            b.add_user(2, AttributeVector::empty(), events.clone());
        }
        b.interaction_scores(vec![0.5; num_users]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        EngineService::new(Engine::new(
            instance,
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            EngineConfig::default(),
        ))
    }

    #[test]
    fn legacy_out_of_range_queries_answer_silently() {
        let mut service = service_for(2, 2);
        let assignments = service.handle(&EngineRequest::Query {
            query: EngineQuery::AssignmentsOf {
                user: UserId::new(99),
            },
        });
        assert_eq!(
            assignments,
            EngineResponse::Assignments {
                user: UserId::new(99),
                events: Vec::new(),
            }
        );
        let load = service.handle(&EngineRequest::Query {
            query: EngineQuery::EventLoad {
                event: EventId::new(99),
            },
        });
        assert_eq!(
            load,
            EngineResponse::EventLoad {
                event: EventId::new(99),
                load: 0,
                capacity: 0,
            }
        );
    }

    #[test]
    fn strict_out_of_range_queries_are_not_found() {
        let mut service = service_for(2, 2);
        let err = service
            .try_handle(&EngineRequest::Query {
                query: EngineQuery::AssignmentsOf {
                    user: UserId::new(99),
                },
            })
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::NotFound {
                entity: EntityRef::User {
                    user: UserId::new(99),
                },
            }
        );
        let err = service
            .try_handle(&EngineRequest::Query {
                query: EngineQuery::EventLoad {
                    event: EventId::new(99),
                },
            })
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::NotFound {
                entity: EntityRef::Event {
                    event: EventId::new(99),
                },
            }
        );
    }

    #[test]
    fn strict_rejections_are_typed() {
        let mut service = service_for(2, 2);
        let err = service
            .try_handle(&EngineRequest::Apply {
                delta: igepa_core::InstanceDelta::UpdateInteractionScore {
                    user: UserId::new(9),
                    score: 0.5,
                },
            })
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::Rejected {
                reason: RejectReason::UnknownUser {
                    user: UserId::new(9),
                },
            }
        );
    }

    #[test]
    fn envelope_version_gates_the_dialect() {
        let mut service = service_for(2, 2);
        let query = EngineRequest::Query {
            query: EngineQuery::AssignmentsOf {
                user: UserId::new(99),
            },
        };
        // Strict version: NotFound.
        let strict =
            service.handle_envelope(&RequestEnvelope::new(1, PROTOCOL_VERSION, query.clone()));
        assert_eq!(strict.id, 1);
        assert!(matches!(strict.result, Err(EngineError::NotFound { .. })));
        // Legacy version: silent empty answer.
        let legacy =
            service.handle_envelope(&RequestEnvelope::new(2, LEGACY_VERSION, query.clone()));
        assert!(matches!(
            legacy.result,
            Ok(EngineResponse::Assignments { ref events, .. }) if events.is_empty()
        ));
        // Future version: unsupported.
        let future = service.handle_envelope(&RequestEnvelope::new(3, 42, query));
        assert_eq!(future.result, Err(EngineError::Unsupported { version: 42 }));
    }

    #[test]
    fn handle_line_reports_malformed_input() {
        let mut service = service_for(1, 1);
        let response = service.handle_line("not json at all", 7);
        assert_eq!(response.id, 7);
        assert!(matches!(
            response.result,
            Err(EngineError::Malformed { .. })
        ));
    }
}
