//! Typed errors of the serving API.
//!
//! The pre-envelope protocol reported failures in two stringly ways: a
//! rejected delta became `EngineResponse::Rejected { reason: String }`,
//! and an out-of-range `AssignmentsOf` / `EventLoad` query silently
//! answered `[]` / `(0, 0)`. The enveloped API replaces both with a typed
//! taxonomy: [`EngineError`] is the `Err` side of every
//! [`ResponseEnvelope`](crate::protocol::ResponseEnvelope), and
//! [`RejectReason`] classifies validation failures while still rendering
//! the exact legacy reason strings (so legacy responses built through the
//! typed path replay bit for bit).

use igepa_core::{CoreError, EventId, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a delta was rejected by instance validation.
///
/// The common cases are structured; everything else carries the
/// validation message verbatim in [`RejectReason::Invalid`]. The
/// [`fmt::Display`] impl reproduces [`CoreError`]'s strings exactly, so a
/// legacy `Rejected { reason }` response built from a `RejectReason` is
/// byte-identical to one built from the original error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The delta referenced a user that does not exist.
    UnknownUser {
        /// The unknown user id.
        user: UserId,
    },
    /// The delta referenced an event that does not exist.
    UnknownEvent {
        /// The unknown event id.
        event: EventId,
    },
    /// A bid set named an event that does not exist.
    UnknownEventInBid {
        /// The bidding user.
        user: UserId,
        /// The unknown event id found in the bid set.
        event: EventId,
    },
    /// Any other validation failure, message verbatim.
    Invalid {
        /// The validation error's display string.
        detail: String,
    },
}

impl From<&CoreError> for RejectReason {
    fn from(e: &CoreError) -> Self {
        match e {
            CoreError::UnknownUser { user } => RejectReason::UnknownUser { user: *user },
            CoreError::UnknownEvent { event } => RejectReason::UnknownEvent { event: *event },
            CoreError::UnknownEventInBid { user, event } => RejectReason::UnknownEventInBid {
                user: *user,
                event: *event,
            },
            other => RejectReason::Invalid {
                detail: other.to_string(),
            },
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keep these strings in lockstep with `CoreError`'s Display: the
        // legacy protocol's `Rejected { reason }` is built from them.
        match self {
            RejectReason::UnknownUser { user } => {
                write!(f, "user {user} does not exist in the instance")
            }
            RejectReason::UnknownEvent { event } => {
                write!(f, "event {event} does not exist in the instance")
            }
            RejectReason::UnknownEventInBid { user, event } => {
                write!(f, "user {user} bids for unknown event {event}")
            }
            RejectReason::Invalid { detail } => write!(f, "{detail}"),
        }
    }
}

/// The entity a [`EngineError::NotFound`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntityRef {
    /// A user id outside the served population.
    User {
        /// The queried user.
        user: UserId,
    },
    /// An event id outside the served catalogue.
    Event {
        /// The queried event.
        event: EventId,
    },
}

impl fmt::Display for EntityRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntityRef::User { user } => write!(f, "user {user}"),
            EntityRef::Event { event } => write!(f, "event {event}"),
        }
    }
}

/// The `Err` side of an enveloped response: everything that can go wrong
/// between decoding a request line and answering it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineError {
    /// A delta (or batch) was rejected by validation; the engine state is
    /// unchanged (for batches: the prefix before the invalid delta stays
    /// applied, exactly as in the legacy protocol).
    Rejected {
        /// The classified rejection.
        reason: RejectReason,
    },
    /// A query named a user or event outside the served instance. The
    /// legacy protocol silently answered `[]` / `(0, 0)` here.
    NotFound {
        /// What was not found.
        entity: EntityRef,
    },
    /// The request envelope declared a protocol version this server does
    /// not speak.
    Unsupported {
        /// The rejected version.
        version: u32,
    },
    /// The request line could not be decoded at all.
    Malformed {
        /// Decoder message.
        detail: String,
    },
    /// The serving infrastructure failed — a worker thread died, a
    /// dispatch invariant broke — before the request could execute.
    /// The request was not applied; the client may retry against a
    /// recovered server.
    Internal {
        /// What failed, for the operator.
        detail: String,
    },
    /// The server refused to admit the request: the dispatch queue is
    /// at its admission cap, or the server is in read-only degraded
    /// mode (e.g. after a WAL-append failure) and sheds mutations.
    /// Nothing was enqueued or applied; cached reads keep answering.
    Overloaded {
        /// Dispatch queue depth observed at refusal time.
        queue_depth: usize,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline had already expired when the dispatcher
    /// dequeued it; the request was dropped without doing dead work
    /// and the engine state is unchanged.
    DeadlineExceeded {
        /// The per-request budget the envelope carried, in
        /// milliseconds from arrival at the server.
        deadline_ms: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Rejected { reason } => write!(f, "rejected: {reason}"),
            EngineError::NotFound { entity } => {
                write!(f, "{entity} does not exist in the instance")
            }
            EngineError::Unsupported { version } => {
                write!(f, "unsupported protocol version {version}")
            }
            EngineError::Malformed { detail } => write!(f, "malformed request: {detail}"),
            EngineError::Internal { detail } => write!(f, "internal error: {detail}"),
            EngineError::Overloaded {
                queue_depth,
                retry_after_ms,
            } => write!(
                f,
                "overloaded: {queue_depth} requests queued, retry after {retry_after_ms} ms"
            ),
            EngineError::DeadlineExceeded { deadline_ms } => {
                write!(
                    f,
                    "deadline exceeded: {deadline_ms} ms budget expired before dispatch"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<&CoreError> for EngineError {
    fn from(e: &CoreError) -> Self {
        EngineError::Rejected {
            reason: RejectReason::from(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reason_matches_core_error_strings() {
        let cases = vec![
            CoreError::UnknownUser {
                user: UserId::new(9),
            },
            CoreError::UnknownEvent {
                event: EventId::new(4),
            },
            CoreError::UnknownEventInBid {
                user: UserId::new(3),
                event: EventId::new(9),
            },
            CoreError::InvalidBeta(1.5),
            CoreError::InteractionOutOfRange {
                user: UserId::new(2),
                value: 7.0,
            },
        ];
        for e in cases {
            assert_eq!(
                RejectReason::from(&e).to_string(),
                e.to_string(),
                "legacy reason string drifted for {e:?}"
            );
        }
    }

    #[test]
    fn engine_error_serde_roundtrip() {
        let errors = vec![
            EngineError::Rejected {
                reason: RejectReason::UnknownUser {
                    user: UserId::new(1),
                },
            },
            EngineError::Rejected {
                reason: RejectReason::Invalid {
                    detail: "beta out of range".to_string(),
                },
            },
            EngineError::NotFound {
                entity: EntityRef::Event {
                    event: EventId::new(7),
                },
            },
            EngineError::Unsupported { version: 9 },
            EngineError::Malformed {
                detail: "not json".to_string(),
            },
            EngineError::Internal {
                detail: "shard 2 worker is gone".to_string(),
            },
            EngineError::Overloaded {
                queue_depth: 64,
                retry_after_ms: 25,
            },
            EngineError::DeadlineExceeded { deadline_ms: 150 },
        ];
        for e in errors {
            let json = serde_json::to_string(&e).unwrap();
            assert_eq!(serde_json::from_str::<EngineError>(&json).unwrap(), e);
        }
    }

    #[test]
    fn display_is_informative() {
        let e = EngineError::NotFound {
            entity: EntityRef::User {
                user: UserId::new(5),
            },
        };
        assert!(e.to_string().contains("u5"));
        assert!(EngineError::Unsupported { version: 3 }
            .to_string()
            .contains('3'));
        let overloaded = EngineError::Overloaded {
            queue_depth: 12,
            retry_after_ms: 40,
        };
        assert!(overloaded.to_string().contains("12"));
        assert!(overloaded.to_string().contains("40 ms"));
        assert!(EngineError::DeadlineExceeded { deadline_ms: 9 }
            .to_string()
            .contains("9 ms"));
    }
}
