//! The shared event catalogue: one copy of the event-side state, published
//! as epoch-versioned copy-on-write snapshots.
//!
//! ## Why
//!
//! User-side state partitions cleanly across shards, but event-side state
//! — the event list, the O(|V|²) [`ConflictMatrix`], true capacities —
//! must be visible to *every* shard. Before the catalogue each of the k
//! shards plus the coordinator mirror kept a private full copy: an
//! `AddEvent` broadcast evaluated σ k+1 times and resident conflict
//! memory was O((k+1)·|V|²). The catalogue inverts that: the event-side
//! view lives **once**, behind [`Arc`]-shared [`CatalogSnapshot`]s, and an
//! announcement is one coordinator-side publish (σ evaluated exactly once)
//! plus an epoch bump every shard picks up by swapping a pointer.
//!
//! ## How publishing stays cheap
//!
//! Snapshots are immutable, so the matrix inside the current snapshot can
//! never be grown in place while readers hold it. A naive copy-on-write
//! would deep-copy the O(|V|²) table on every publish. The catalogue
//! instead **double-buffers**: the matrix of the *previous* snapshot is
//! retained as a spare write buffer, and a small log of already-evaluated
//! conflict rows ([`ConflictMatrix::push_row`]) replays the publishes the
//! spare missed. Once every reader has adopted the newer epoch — shards
//! adopt synchronously during the broadcast — the spare is uniquely owned
//! and [`Arc::make_mut`] mutates it in place, so steady-state publishing
//! costs one σ scan plus amortised O(|V|) bookkeeping. A straggler still
//! holding an old snapshot merely forces one transient deep copy (counted
//! in [`EventCatalog::cow_copies`]), never incorrect data.
//!
//! Interest columns are *not* in the catalogue: the interest table
//! partitions by user exactly like bids and arrangements do, so each
//! shard's columns cover only its own users and nothing is duplicated.
//!
//! The memory invariant the catalogue buys: resident conflict-matrix
//! memory is O(|V|²) — two buffers, independent of the shard count —
//! instead of O((k+1)·|V|²), and all adopters of one epoch return
//! [`Arc::ptr_eq`] conflict handles (asserted by the proptests).

use igepa_core::{AttributeVector, ConflictFn, ConflictMatrix, Event, EventId, Instance};
use std::collections::VecDeque;
use std::sync::Arc;

/// One immutable, epoch-tagged view of the event catalogue: the event
/// list with **true** (un-quota'd) capacities and the shared conflict
/// matrix. Cheap to clone (two `Arc` bumps); shards compose their user
/// state with a snapshot instead of owning event-side copies.
#[derive(Debug, Clone)]
pub struct CatalogSnapshot {
    epoch: u64,
    /// Catalogue events (empty bidder lists: bidders are user-state).
    /// Append-only; an event record's `capacity` field is its capacity
    /// *at announce time* — [`CatalogSnapshot::true_capacity`] is the
    /// authoritative current value.
    events: Arc<Vec<Arc<Event>>>,
    /// Current true capacities, one per event (flat, so a capacity edit
    /// publishes with one memcpy instead of touching the event records).
    capacities: Arc<Vec<usize>>,
    conflicts: Arc<ConflictMatrix>,
}

impl CatalogSnapshot {
    /// The epoch this snapshot was published at (0 = construction).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of events in the catalogue at this epoch.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// The catalogue events, in id order.
    pub fn events(&self) -> &[Arc<Event>] {
        &self.events
    }

    /// One catalogue event (true capacity, empty bidder list).
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// True capacity `c_v` of an event at this epoch.
    pub fn true_capacity(&self, event: EventId) -> usize {
        self.capacities[event.index()]
    }

    /// Current true capacities, one per event in id order.
    pub fn capacities(&self) -> &[usize] {
        &self.capacities
    }

    /// The shared conflict matrix at this epoch.
    pub fn conflicts(&self) -> &ConflictMatrix {
        &self.conflicts
    }

    /// The shared matrix handle, for adoption via
    /// [`Instance::apply_add_event_shared`].
    pub fn conflicts_handle(&self) -> &Arc<ConflictMatrix> {
        &self.conflicts
    }

    /// The newest event — the one added by the publish that produced this
    /// snapshot. `None` only for an empty catalogue.
    pub fn newest(&self) -> Option<&Event> {
        self.events.last().map(Arc::as_ref)
    }
}

/// The coordinator-side writer of the shared event catalogue. See the
/// module docs for the publish protocol.
#[derive(Debug)]
pub struct EventCatalog {
    current: Arc<CatalogSnapshot>,
    /// The previous epoch's matrix, reused as the write buffer of the
    /// next publish (uniquely owned once every reader adopted `current`).
    spare: Arc<ConflictMatrix>,
    /// The previous epoch's event list, double-buffered the same way;
    /// a lagging buffer catches up by cloning the missing tail records
    /// (cheap `Arc` bumps) straight out of `current`.
    spare_events: Arc<Vec<Arc<Event>>>,
    /// Conflict rows the spare has not absorbed yet:
    /// `(absolute event index, conflicting partners among earlier events)`.
    pending_rows: VecDeque<(usize, Vec<EventId>)>,
    /// Publishes that had to deep-copy the matrix because a stale
    /// snapshot was still held (the transient CoW cost).
    cow_copies: u64,
}

impl EventCatalog {
    /// Builds a catalogue over an instance's current events, sharing the
    /// instance's conflict-matrix allocation (no copy).
    pub fn from_instance(instance: &Instance) -> Self {
        EventCatalog::from_instance_at_epoch(instance, 0)
    }

    /// Like [`EventCatalog::from_instance`], but publishes the founding
    /// snapshot at `epoch` instead of 0. Recovery uses this so a restored
    /// engine resumes the epoch sequence exactly where the checkpointed
    /// one left off (shards compare their adopted epoch against the
    /// catalogue's when absorbing announcements).
    pub fn from_instance_at_epoch(instance: &Instance, epoch: u64) -> Self {
        let events: Arc<Vec<Arc<Event>>> = Arc::new(
            instance
                .events()
                .iter()
                .map(|e| Arc::new(Event::new(e.id, e.capacity, e.attrs.clone())))
                .collect(),
        );
        let capacities: Vec<usize> = instance.events().iter().map(|e| e.capacity).collect();
        let conflicts = Arc::clone(instance.conflicts_handle());
        EventCatalog {
            current: Arc::new(CatalogSnapshot {
                epoch,
                events: Arc::clone(&events),
                capacities: Arc::new(capacities),
                conflicts: Arc::clone(&conflicts),
            }),
            spare: conflicts,
            spare_events: events,
            pending_rows: VecDeque::new(),
            cow_copies: 0,
        }
    }

    /// The current snapshot (cheap: one `Arc` bump).
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        Arc::clone(&self.current)
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.current.epoch
    }

    /// Number of events in the catalogue.
    pub fn num_events(&self) -> usize {
        self.current.num_events()
    }

    /// True capacity of an event.
    pub fn true_capacity(&self, event: EventId) -> usize {
        self.current.true_capacity(event)
    }

    /// Publishes that forced a transient O(|V|²) matrix copy because a
    /// stale snapshot was still alive. Steady-state publishing (readers
    /// adopt each epoch before the next publish) keeps this at its
    /// post-first-publish value: the very first publish always splits the
    /// construction-time sharing with the founding instance.
    pub fn cow_copies(&self) -> u64 {
        self.cow_copies
    }

    /// Announces one event: evaluates σ against the catalogue exactly
    /// once, grows the double-buffered matrix, appends the event record
    /// and publishes the next epoch. Returns the new snapshot; its
    /// [`CatalogSnapshot::newest`] is the announced event.
    pub fn publish_event(
        &mut self,
        capacity: usize,
        attrs: AttributeVector,
        sigma: &dyn ConflictFn,
    ) -> Arc<CatalogSnapshot> {
        let n = self.current.num_events();
        let new_event = Event::new(EventId::new(n), capacity, attrs);
        // The one and only σ evaluation for this announcement.
        let partners: Vec<EventId> = self
            .current
            .events
            .iter()
            .filter(|e| sigma.conflicts(e, &new_event))
            .map(|e| e.id)
            .collect();
        self.pending_rows.push_back((n, partners));

        // Rotate the matrix buffers: the spare becomes the next current
        // matrix (after catching up), the outgoing current matrix becomes
        // the new spare — it lags by exactly the rows in `pending_rows`.
        let mut next = std::mem::replace(&mut self.spare, Arc::clone(&self.current.conflicts));
        if Arc::get_mut(&mut next).is_none() {
            self.cow_copies += 1;
        }
        let matrix = Arc::make_mut(&mut next);
        for (index, partners) in &self.pending_rows {
            if *index >= matrix.num_events() {
                debug_assert_eq!(*index, matrix.num_events(), "pending rows replay in order");
                matrix.push_row(partners);
            }
        }
        self.pending_rows.retain(|(index, _)| *index >= n);

        // Rotate the event-list buffers the same way; a lagging buffer
        // catches up by cloning the missing tail out of `current` (the
        // list is append-only), so steady-state publishing appends O(1)
        // records instead of re-cloning O(|V|) handles.
        let mut next_events =
            std::mem::replace(&mut self.spare_events, Arc::clone(&self.current.events));
        {
            let list = Arc::make_mut(&mut next_events);
            list.extend(self.current.events[list.len()..].iter().cloned());
            list.push(Arc::new(new_event));
        }

        let mut capacities: Vec<usize> = self.current.capacities.as_ref().clone();
        capacities.push(capacity);
        self.current = Arc::new(CatalogSnapshot {
            epoch: self.current.epoch + 1,
            events: next_events,
            capacities: Arc::new(capacities),
            conflicts: next,
        });
        self.snapshot()
    }

    /// Updates the true capacity of an event and publishes the next
    /// epoch. The conflict matrix and the event records are untouched
    /// (same shared handles); only the flat capacity vector republishes,
    /// one memcpy.
    pub fn set_capacity(&mut self, event: EventId, capacity: usize) -> Arc<CatalogSnapshot> {
        let mut capacities: Vec<usize> = self.current.capacities.as_ref().clone();
        capacities[event.index()] = capacity;
        self.current = Arc::new(CatalogSnapshot {
            epoch: self.current.epoch + 1,
            events: Arc::clone(&self.current.events),
            capacities: Arc::new(capacities),
            conflicts: Arc::clone(&self.current.conflicts),
        });
        self.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::{ConstantInterest, TimeOverlapConflict};

    fn timed_instance(num_events: usize) -> Instance {
        let mut b = Instance::builder();
        for i in 0..num_events {
            b.add_event(2, AttributeVector::from_time(i as i64 * 40, 60));
        }
        b.build(&TimeOverlapConflict, &ConstantInterest(0.5))
            .unwrap()
    }

    #[test]
    fn construction_shares_the_instance_matrix() {
        let instance = timed_instance(4);
        let catalog = EventCatalog::from_instance(&instance);
        assert_eq!(catalog.epoch(), 0);
        assert_eq!(catalog.num_events(), 4);
        assert!(Arc::ptr_eq(
            catalog.snapshot().conflicts_handle(),
            instance.conflicts_handle()
        ));
        assert_eq!(catalog.true_capacity(EventId::new(1)), 2);
    }

    #[test]
    fn publishes_match_a_from_scratch_build() {
        let instance = timed_instance(3);
        let mut catalog = EventCatalog::from_instance(&instance);
        let mut events: Vec<Event> = instance.events().to_vec();
        for i in 3..12 {
            let attrs = AttributeVector::from_time(i as i64 * 25, 60);
            let snapshot = catalog.publish_event(1 + i, attrs.clone(), &TimeOverlapConflict);
            events.push(Event::new(EventId::new(i), 1 + i, attrs));
            let rebuilt = ConflictMatrix::build(&events, &TimeOverlapConflict);
            assert_eq!(*snapshot.conflicts(), rebuilt, "divergence at {i} events");
            assert_eq!(snapshot.num_events(), i + 1);
            assert_eq!(snapshot.epoch(), (i - 2) as u64);
            assert_eq!(snapshot.newest().unwrap().id, EventId::new(i));
            assert_eq!(snapshot.newest().unwrap().capacity, 1 + i);
        }
    }

    #[test]
    fn steady_state_publishing_avoids_matrix_copies() {
        let instance = timed_instance(2);
        let mut catalog = EventCatalog::from_instance(&instance);
        drop(instance);
        // Epoch 0 shares one matrix between the snapshot and the spare:
        // the first publish must split that sharing (one copy)...
        catalog.publish_event(1, AttributeVector::empty(), &TimeOverlapConflict);
        let after_first = catalog.cow_copies();
        assert_eq!(after_first, 1);
        // ...but once no stale snapshot is held, publishing alternates
        // between the two buffers with zero further copies.
        for _ in 0..10 {
            catalog.publish_event(1, AttributeVector::empty(), &TimeOverlapConflict);
        }
        assert_eq!(catalog.cow_copies(), after_first);
    }

    #[test]
    fn stale_snapshot_forces_one_transient_copy() {
        let instance = timed_instance(2);
        let mut catalog = EventCatalog::from_instance(&instance);
        drop(instance);
        catalog.publish_event(1, AttributeVector::empty(), &TimeOverlapConflict);
        let baseline = catalog.cow_copies();
        // A straggler keeps epoch 1 alive across two publishes: the
        // publish that wants epoch 1's matrix as its write buffer copies.
        let straggler = catalog.snapshot();
        catalog.publish_event(1, AttributeVector::empty(), &TimeOverlapConflict);
        catalog.publish_event(1, AttributeVector::empty(), &TimeOverlapConflict);
        assert_eq!(catalog.cow_copies(), baseline + 1);
        // The straggler's view is untouched by the later publishes.
        assert_eq!(straggler.num_events(), 3);
        assert_eq!(straggler.conflicts().num_events(), 3);
        drop(straggler);
        catalog.publish_event(1, AttributeVector::empty(), &TimeOverlapConflict);
        catalog.publish_event(1, AttributeVector::empty(), &TimeOverlapConflict);
        assert_eq!(
            catalog.cow_copies(),
            baseline + 1,
            "copies stop once adopted"
        );
    }

    #[test]
    fn set_capacity_bumps_epoch_and_keeps_the_matrix() {
        let instance = timed_instance(3);
        let mut catalog = EventCatalog::from_instance(&instance);
        let before = catalog.snapshot();
        let after = catalog.set_capacity(EventId::new(1), 9);
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.true_capacity(EventId::new(1)), 9);
        assert_eq!(before.true_capacity(EventId::new(1)), 2, "old epoch intact");
        assert!(Arc::ptr_eq(
            before.conflicts_handle(),
            after.conflicts_handle()
        ));
        // Untouched records are shared, not cloned.
        assert!(Arc::ptr_eq(&before.events()[0], &after.events()[0]));
    }
}
