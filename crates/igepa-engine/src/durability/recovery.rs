//! Crash recovery: newest valid snapshot + WAL tail replay.
//!
//! Recovery is provably exact, not merely plausible, because the engine
//! is deterministic end to end: solver seeds are drawn from checkpointed
//! counters and every utility sum goes through the exact accumulator.
//! Restoring the newest valid checkpoint and replaying the WAL records
//! after its `wal_seq` therefore reproduces — bit for bit — the merged
//! arrangement and utility breakdown of an engine that executed the same
//! request prefix without ever crashing. The crash-injection integration
//! tests assert exactly that equivalence at arbitrary kill points.

use crate::coordinator::ShardedEngine;
use crate::durability::snapshot::{load_newest, EngineSnapshotState};
use crate::durability::wal::{read_wal, WalError};
use crate::service::EngineBackend;
use std::path::Path;

/// What recovery did, for reporting and for the `recover` CLI.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// WAL sequence the loaded snapshot covered (`None`: no snapshot,
    /// recovery replayed the whole log from a fresh engine).
    pub snapshot_seq: Option<u64>,
    /// Partial or corrupt snapshot files that were skipped.
    pub skipped_snapshots: usize,
    /// Valid WAL records on disk (including those the snapshot covers).
    pub wal_records: usize,
    /// Records actually replayed (the tail after the snapshot).
    pub replayed: usize,
    /// Bytes of torn WAL tail truncated away.
    pub truncated_bytes: u64,
    /// Torn frames discarded with those bytes.
    pub truncated_records: u64,
    /// Utility served by the recovered engine.
    pub final_utility: f64,
    /// Pairs served by the recovered engine.
    pub final_pairs: usize,
}

/// A recovered engine plus everything needed to resume serving durably.
pub struct Recovered {
    /// The recovered engine, caught up through the last intact record.
    pub engine: ShardedEngine,
    /// What recovery did.
    pub report: RecoveryReport,
    /// Sequence number the resumed WAL writer must assign next.
    pub next_seq: u64,
    /// `wal_seq` of the snapshot recovery started from (0 when none).
    pub last_checkpoint_seq: u64,
}

/// Errors raised during recovery.
#[derive(Debug)]
pub enum RecoveryError {
    /// The WAL could not be read (I/O, or interior corruption that
    /// truncation must not repair).
    Wal(WalError),
    /// A snapshot loaded and validated but could not be turned back into
    /// an engine (schema drift, or checkpoint/restore divergence caught
    /// by the bit-exact tracker verification).
    Restore(String),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Wal(e) => write!(f, "recovery failed reading the wal: {e}"),
            RecoveryError::Restore(detail) => {
                write!(f, "recovery failed restoring the snapshot: {detail}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<WalError> for RecoveryError {
    fn from(e: WalError) -> Self {
        RecoveryError::Wal(e)
    }
}

/// Recovers an engine from `dir`: loads the newest valid snapshot (via
/// `restore`), or builds a fresh engine (via `fresh`) when none exists,
/// then replays the WAL tail through the standard replay path. Torn tail
/// records are truncated from the log on the way.
///
/// `fresh` must rebuild the engine exactly as it was originally started
/// (same instance, functions, partitioner, config); `restore` is
/// typically [`ShardedEngine::restore_state`] partially applied over the
/// same functions. Determinism does the rest.
pub fn recover(
    dir: &Path,
    fresh: impl FnOnce() -> ShardedEngine,
    restore: impl FnOnce(&EngineSnapshotState) -> Result<ShardedEngine, String>,
) -> Result<Recovered, RecoveryError> {
    let (loaded, skipped) = load_newest(dir).map_err(|e| RecoveryError::Wal(WalError::Io(e)))?;
    let mut report = RecoveryReport {
        skipped_snapshots: skipped.len(),
        ..RecoveryReport::default()
    };
    let (mut engine, covered) = match loaded {
        Some((state, _)) => {
            report.snapshot_seq = Some(state.wal_seq);
            (
                restore(&state).map_err(RecoveryError::Restore)?,
                state.wal_seq,
            )
        }
        None => (fresh(), 0),
    };
    let (records, wal_report) = read_wal(dir, true)?;
    if let Some(first) = records.first() {
        if first.seq > covered + 1 {
            // The log's head was compacted against a snapshot we could
            // not load: replaying the tail alone would skip records.
            return Err(RecoveryError::Restore(format!(
                "wal starts at seq {} but the best snapshot covers only {covered}",
                first.seq
            )));
        }
    }
    report.wal_records = records.len();
    report.truncated_bytes = wal_report.truncated_bytes;
    report.truncated_records = wal_report.truncated_records;
    let mut last_seq = covered;
    for record in &records {
        if record.seq <= covered {
            continue;
        }
        // Replay through the same handle path the server executed; the
        // response (including a rejection) is re-derived deterministically
        // and discarded.
        let _ = engine.handle(&record.request);
        report.replayed += 1;
        last_seq = record.seq;
    }
    report.final_utility = engine.served_utility();
    report.final_pairs = engine.served_pairs();
    Ok(Recovered {
        engine,
        report,
        next_seq: last_seq + 1,
        last_checkpoint_seq: covered,
    })
}
