//! The segmented write-ahead log.
//!
//! Every mutating request the served engine accepts for execution is
//! appended here *before* its acknowledgement is sent (and before the
//! shards touch it), as a length-prefixed, checksummed frame carrying the
//! request's envelope id and the catalogue epoch it was admitted under.
//! Replaying the log from the last checkpoint therefore reproduces the
//! engine's post-crash state bit for bit — including rejections, which
//! are logged too (the rejection *decision* is deterministic, so replay
//! re-derives it and the `deltas_rejected` counter survives exactly).
//!
//! ## Frame format
//!
//! ```text
//! [u32 BE payload length][u64 BE FNV-1a-64 of payload][payload JSON]
//! ```
//!
//! A torn tail — a frame cut short by a crash mid-append — fails either
//! the length bound or the checksum and is truncated away by the reader;
//! the same failure anywhere *except* the final segment tail is real
//! corruption and reported as an error instead.
//!
//! ## Segments
//!
//! The log is a directory of `wal-<first-seq>.log` segment files, rotated
//! by size. After a checkpoint at sequence `S`, [`WalWriter::compact`]
//! deletes every segment wholly covered by the snapshot (all records
//! `≤ S`), keeping the segment containing `S + 1` and everything after.

use crate::protocol::EngineRequest;
use crate::shard::DurabilityPolicy;
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// FNV-1a 64-bit hash — the WAL/snapshot checksum. Not cryptographic;
/// it guards against torn writes and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Bytes of the fixed frame header: length prefix plus checksum.
const FRAME_HEADER: usize = 12;

/// Upper bound accepted for one frame's payload; a corrupt length prefix
/// must not make the reader allocate gigabytes.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Default segment rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1024 * 1024;

/// One logged request: the replayable unit of the WAL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Monotone log sequence number (1-based; `0` means "nothing logged").
    pub seq: u64,
    /// Correlation id of the request envelope that carried the request.
    pub envelope_id: u64,
    /// Catalogue epoch the request was admitted under.
    pub epoch: u64,
    /// The request itself (always a mutating kind; queries are not logged).
    pub request: EngineRequest,
}

/// Errors raised while reading the log.
#[derive(Debug)]
pub enum WalError {
    /// An I/O failure outside any frame.
    Io(io::Error),
    /// A frame failed validation somewhere truncation cannot repair
    /// (mid-stream, or in a non-final segment).
    Corrupt {
        /// The offending segment file.
        segment: PathBuf,
        /// Byte offset of the bad frame.
        offset: u64,
        /// What failed.
        detail: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "wal corrupt in {} at offset {offset}: {detail}",
                segment.display()
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:020}.log"))
}

/// Lists the log's segment files as `(first_seq, path)`, ascending.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
        {
            if let Ok(first_seq) = stem.parse::<u64>() {
                segments.push((first_seq, entry.path()));
            }
        }
    }
    segments.sort();
    Ok(segments)
}

fn encode_frame(record: &WalRecord) -> io::Result<Vec<u8>> {
    // Serialization cannot fail for well-formed records, but an append
    // that cannot build its frame must refuse the request (the caller
    // answers a typed durability error), never kill the server.
    let payload = serde_json::to_string(record).map_err(io::Error::other)?;
    let payload = payload.as_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&fnv1a64(payload).to_be_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// The appending side of the log. Every append reaches the operating
/// system before it returns (an engine crash never loses an acknowledged
/// record); the [`DurabilityPolicy`] decides when appends are additionally
/// fsync'd onto the device.
pub struct WalWriter {
    dir: PathBuf,
    policy: DurabilityPolicy,
    segment_max_bytes: u64,
    file: File,
    segment_bytes: u64,
    next_seq: u64,
    last_fsync: Instant,
    records_since_fsync: u64,
    /// Crash-injection hook: the next append writes at most this many
    /// bytes of its frame, then fails — producing exactly the torn tail
    /// the reader must detect and truncate.
    fail_after_bytes: Option<u64>,
    records: u64,
    bytes: u64,
    fsyncs: u64,
    segments_created: u64,
}

impl WalWriter {
    /// Opens a writer whose next record takes sequence number `next_seq`
    /// (1 for a fresh log; `last replayed + 1` after recovery). A new
    /// segment is started; earlier segments are left untouched.
    pub fn open(dir: &Path, policy: DurabilityPolicy, next_seq: u64) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let path = segment_path(dir, next_seq.max(1));
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            policy,
            segment_max_bytes: DEFAULT_SEGMENT_BYTES,
            file,
            segment_bytes: 0,
            next_seq: next_seq.max(1),
            last_fsync: Instant::now(),
            records_since_fsync: 0,
            fail_after_bytes: None,
            records: 0,
            bytes: 0,
            fsyncs: 0,
            segments_created: 1,
        })
    }

    /// Overrides the segment rotation threshold (tests use tiny segments
    /// to exercise rotation and compaction quickly).
    pub fn set_segment_max_bytes(&mut self, bytes: u64) {
        self.segment_max_bytes = bytes.max(1);
    }

    /// Arms the crash-injection hook (see [`WalWriter::fail_after_bytes`]).
    pub fn set_fail_after_bytes(&mut self, limit: Option<u64>) {
        self.fail_after_bytes = limit;
    }

    /// Sequence number the next append will take.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the last appended record (0 when none yet).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// `(records, bytes, fsyncs, segments_created)` appended so far.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.records, self.bytes, self.fsyncs, self.segments_created)
    }

    /// Appends one request and returns its sequence number. The record is
    /// written to the OS before return; fsync follows the policy.
    pub fn append(
        &mut self,
        envelope_id: u64,
        epoch: u64,
        request: &EngineRequest,
    ) -> io::Result<u64> {
        let record = WalRecord {
            seq: self.next_seq,
            envelope_id,
            epoch,
            request: request.clone(),
        };
        let frame = encode_frame(&record)?;
        if self.segment_bytes > 0
            && self.segment_bytes + frame.len() as u64 > self.segment_max_bytes
        {
            self.rotate()?;
        }
        if let Some(limit) = self.fail_after_bytes.take() {
            let cut = (limit as usize).min(frame.len());
            self.file.write_all(&frame[..cut])?;
            self.file.sync_data()?;
            return Err(io::Error::other("injected crash mid-append"));
        }
        self.file.write_all(&frame)?;
        self.segment_bytes += frame.len() as u64;
        self.records += 1;
        self.bytes += frame.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.apply_fsync_policy()?;
        Ok(seq)
    }

    fn apply_fsync_policy(&mut self) -> io::Result<()> {
        self.records_since_fsync += 1;
        let due = match self.policy {
            DurabilityPolicy::Off => false,
            DurabilityPolicy::Always => true,
            DurabilityPolicy::EveryN { n } => self.records_since_fsync >= n.max(1),
            DurabilityPolicy::Interval { millis } => {
                self.last_fsync.elapsed() >= Duration::from_millis(millis)
            }
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces an fsync of the current segment now.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.records_since_fsync = 0;
        self.last_fsync = Instant::now();
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        // Seal the outgoing segment onto the device before abandoning the
        // handle: rotation must never weaken the configured policy.
        self.file.sync_data()?;
        let path = segment_path(&self.dir, self.next_seq);
        self.file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        self.segment_bytes = 0;
        self.segments_created += 1;
        Ok(())
    }

    /// Deletes segments wholly covered by a checkpoint at `through_seq`:
    /// the segment containing `through_seq + 1` and everything after it
    /// survive. Returns how many segment files were removed.
    pub fn compact(&mut self, through_seq: u64) -> io::Result<u64> {
        let segments = list_segments(&self.dir)?;
        let keep_from = segments
            .iter()
            .map(|&(first, _)| first)
            .filter(|&first| first <= through_seq + 1)
            .max()
            .unwrap_or(0);
        let mut removed = 0;
        for (first, path) in segments {
            if first < keep_from {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// What the reader saw, beyond the records themselves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalReadReport {
    /// Segment files scanned.
    pub segments: usize,
    /// Valid records decoded.
    pub records: usize,
    /// Bytes of torn tail truncated from the final segment.
    pub truncated_bytes: u64,
    /// Torn frames discarded with those bytes (0 or 1 in practice).
    pub truncated_records: u64,
}

/// Reads the whole log in sequence order. With `repair_tail`, a torn
/// frame at the very end of the final segment is physically truncated
/// away (and reported); the same damage anywhere else is
/// [`WalError::Corrupt`] — truncation can only ever lose the unfinished
/// final append, never an interior record.
pub fn read_wal(
    dir: &Path,
    repair_tail: bool,
) -> Result<(Vec<WalRecord>, WalReadReport), WalError> {
    let segments = list_segments(dir)?;
    let mut records: Vec<WalRecord> = Vec::new();
    let mut report = WalReadReport {
        segments: segments.len(),
        ..WalReadReport::default()
    };
    let last_index = segments.len().saturating_sub(1);
    for (index, (first_seq, path)) in segments.iter().enumerate() {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        let mut offset = 0usize;
        let mut torn: Option<String> = None;
        while offset < data.len() {
            let remaining = &data[offset..];
            if remaining.len() < FRAME_HEADER {
                torn = Some(format!("{}-byte partial frame header", remaining.len()));
                break;
            }
            // The length guard above proved 12 header bytes exist, so the
            // conversions cannot fail; treat a failure like a torn frame
            // anyway rather than panicking the recovery path.
            let (len_bytes, sum_bytes) = match (
                <[u8; 4]>::try_from(&remaining[..4]),
                <[u8; 8]>::try_from(&remaining[4..FRAME_HEADER]),
            ) {
                (Ok(len_bytes), Ok(sum_bytes)) => (len_bytes, sum_bytes),
                _ => {
                    torn = Some("frame header bytes unavailable".to_string());
                    break;
                }
            };
            let len = u32::from_be_bytes(len_bytes);
            if len > MAX_PAYLOAD {
                torn = Some(format!("implausible payload length {len}"));
                break;
            }
            let expect = u64::from_be_bytes(sum_bytes);
            let Some(payload) = remaining.get(FRAME_HEADER..FRAME_HEADER + len as usize) else {
                torn = Some(format!(
                    "payload cut short ({} of {len} bytes)",
                    remaining.len() - FRAME_HEADER
                ));
                break;
            };
            if fnv1a64(payload) != expect {
                torn = Some("checksum mismatch".to_string());
                break;
            }
            // A checksum-valid frame that does not decode is schema-level
            // corruption, never a torn write: hard error, no truncation.
            let text = std::str::from_utf8(payload).map_err(|e| WalError::Corrupt {
                segment: path.clone(),
                offset: offset as u64,
                detail: format!("payload is not UTF-8: {e}"),
            })?;
            let record: WalRecord = serde_json::from_str(text).map_err(|e| WalError::Corrupt {
                segment: path.clone(),
                offset: offset as u64,
                detail: format!("payload does not decode: {e}"),
            })?;
            let expected_seq = records.last().map(|r: &WalRecord| r.seq + 1).unwrap_or(
                if records.is_empty() && index == 0 {
                    record.seq // the first segment's base is authoritative
                } else {
                    *first_seq
                },
            );
            if record.seq != expected_seq {
                return Err(WalError::Corrupt {
                    segment: path.clone(),
                    offset: offset as u64,
                    detail: format!(
                        "sequence gap: expected {expected_seq}, found {}",
                        record.seq
                    ),
                });
            }
            records.push(record);
            report.records += 1;
            offset += FRAME_HEADER + len as usize;
        }
        if let Some(detail) = torn {
            if index != last_index {
                return Err(WalError::Corrupt {
                    segment: path.clone(),
                    offset: offset as u64,
                    detail: format!("{detail} before the final segment tail"),
                });
            }
            report.truncated_bytes = (data.len() - offset) as u64;
            report.truncated_records = 1;
            if repair_tail {
                OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(offset as u64)?;
            }
        }
    }
    Ok((records, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::test_dir;

    fn sample_request(i: u64) -> EngineRequest {
        EngineRequest::Apply {
            delta: igepa_core::InstanceDelta::UpdateInteractionScore {
                user: igepa_core::UserId::new(i as usize),
                score: 0.5,
            },
        }
    }

    #[test]
    fn appends_roundtrip_in_order() {
        let dir = test_dir("roundtrip");
        let mut writer = WalWriter::open(&dir, DurabilityPolicy::Off, 1).unwrap();
        for i in 0..10 {
            let seq = writer.append(i, 7, &sample_request(i)).unwrap();
            assert_eq!(seq, i + 1);
        }
        let (records, report) = read_wal(&dir, false).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(report.truncated_records, 0);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.seq, i as u64 + 1);
            assert_eq!(record.envelope_id, i as u64);
            assert_eq!(record.epoch, 7);
            assert_eq!(record.request, sample_request(i as u64));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_compaction_keeps_the_tail() {
        let dir = test_dir("rotate");
        let mut writer = WalWriter::open(&dir, DurabilityPolicy::Off, 1).unwrap();
        writer.set_segment_max_bytes(256);
        for i in 0..40 {
            writer.append(i, 0, &sample_request(i)).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 2, "tiny segments must rotate");
        // Checkpoint at seq 20: every record ≤ 20 is covered; the segment
        // containing 21 and everything after must survive.
        writer.compact(20).unwrap();
        let (records, _) = read_wal(&dir, false).unwrap();
        assert_eq!(records.last().unwrap().seq, 40);
        assert!(records.first().unwrap().seq <= 21);
        let kept = list_segments(&dir).unwrap();
        assert!(kept.len() < segments.len(), "compaction removed something");
        // Only the segment containing the first uncovered record (21) may
        // start at or below it; any earlier segment was fully covered.
        assert!(kept.iter().filter(|(first, _)| *first <= 21).count() <= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let dir = test_dir("torn");
        let mut writer = WalWriter::open(&dir, DurabilityPolicy::Always, 1).unwrap();
        for i in 0..5 {
            writer.append(i, 0, &sample_request(i)).unwrap();
        }
        writer.set_fail_after_bytes(Some(9));
        assert!(writer.append(99, 0, &sample_request(99)).is_err());
        drop(writer);
        // Without repair the tail is reported but left on disk.
        let (records, report) = read_wal(&dir, false).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(report.truncated_records, 1);
        assert!(report.truncated_bytes > 0);
        // With repair the file is physically truncated; a second read is
        // clean.
        let (_, report) = read_wal(&dir, true).unwrap();
        assert_eq!(report.truncated_records, 1);
        let (records, report) = read_wal(&dir, false).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(report.truncated_records, 0);
        assert_eq!(report.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_corruption_is_an_error_not_a_truncation() {
        let dir = test_dir("interior");
        let mut writer = WalWriter::open(&dir, DurabilityPolicy::Off, 1).unwrap();
        writer.set_segment_max_bytes(200);
        for i in 0..20 {
            writer.append(i, 0, &sample_request(i)).unwrap();
        }
        drop(writer);
        // Flip a payload byte in the FIRST segment (not the final one).
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 2);
        let victim = &segments[0].1;
        let mut data = std::fs::read(victim).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        std::fs::write(victim, data).unwrap();
        match read_wal(&dir, true) {
            Err(WalError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policies_count_fsyncs() {
        let dir = test_dir("fsync");
        let mut writer = WalWriter::open(&dir, DurabilityPolicy::Always, 1).unwrap();
        for i in 0..4 {
            writer.append(i, 0, &sample_request(i)).unwrap();
        }
        assert_eq!(writer.counters().2, 4);
        drop(writer);
        let mut writer = WalWriter::open(&dir, DurabilityPolicy::EveryN { n: 3 }, 1).unwrap();
        for i in 0..7 {
            writer.append(i, 0, &sample_request(i)).unwrap();
        }
        assert_eq!(writer.counters().2, 2, "7 records / every-3 = 2 fsyncs");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
