//! Versioned, checksummed engine checkpoints.
//!
//! A checkpoint serializes everything [`ShardedEngine::restore_state`]
//! needs beyond the caller-supplied functions: the mirror instance, the
//! catalogue epoch, the owner table, per-shard quota vectors, served
//! arrangements and repair-loop counters, and the per-shard utility sums
//! (stored so restore can *verify*, bit for bit, that the rebuilt
//! trackers reproduce the checkpointed utility).
//!
//! ## File format
//!
//! ```text
//! IGEPA-SNAP <version> <payload-bytes> <fnv1a64-hex>\n
//! <payload JSON>
//! ```
//!
//! Snapshot files are written **directly to their final name** — there is
//! no tmp-file/rename dance — so a crash mid-write leaves exactly the
//! partially written file the loader must already be able to reject (the
//! length or the checksum fails) before falling back to the previous
//! valid snapshot. The schema carries a `version` field with a
//! decode-and-migrate path: version-1 payloads (which predate the
//! coordinator's probe counter and stats) still load, with the missing
//! fields defaulted.
//!
//! [`ShardedEngine::restore_state`]: crate::ShardedEngine::restore_state

use crate::coordinator::{CoordinatorStats, ShardedConfig};
use crate::durability::wal::fnv1a64;
use crate::shard::EngineStats;
use igepa_core::{Arrangement, EventId, InstanceSnapshot};
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Current checkpoint schema version.
pub const STATE_VERSION: u32 = 2;

/// Oldest schema version the migration path still loads.
pub const OLDEST_STATE_VERSION: u32 = 1;

/// The checkpoint-restorable state of one shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRecord {
    /// The shard's capacity quota per event, in event-id order (these are
    /// the capacities of its sub-instance; they sum to the true capacity
    /// across shards).
    pub quotas: Vec<usize>,
    /// The served arrangement, over shard-local user ids.
    pub arrangement: Arrangement,
    /// Repair-loop counters.
    pub stats: EngineStats,
    /// Solver-seed counter.
    pub solve_counter: u64,
    /// Watermark of the last staleness check.
    pub last_staleness_check: u64,
    /// Catalogue epoch the shard had absorbed.
    pub catalog_epoch: u64,
    /// Tracker interest sum at checkpoint time, for restore verification.
    pub interest_sum: f64,
    /// Tracker interaction sum at checkpoint time, for restore
    /// verification.
    pub interaction_sum: f64,
}

/// The full checkpointed engine state (see the module docs).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineSnapshotState {
    /// Schema version ([`STATE_VERSION`] when captured by this build).
    pub version: u32,
    /// WAL sequence number the checkpoint covers: every logged record
    /// with `seq <= wal_seq` is reflected in this state.
    pub wal_seq: u64,
    /// Catalogue epoch at checkpoint time.
    pub catalog_epoch: u64,
    /// The engine's full configuration (restore rebuilds shards with it).
    pub config: ShardedConfig,
    /// The full-capacity mirror instance.
    pub mirror: InstanceSnapshot,
    /// Per global user: `(owning shard, shard-local id)`.
    pub owners: Vec<(u32, u32)>,
    /// Mirror-validation rejections so far.
    pub rejected: u64,
    /// Applied deltas since the last reconciliation pass.
    pub deltas_since_reconcile: u64,
    /// Events the next periodic reconciliation pass will examine.
    pub reconcile_candidates: Vec<EventId>,
    /// Coordinator counters (absent in version-1 payloads; defaulted).
    pub coordinator_stats: CoordinatorStats,
    /// Seed counter of the coordinator's ad-hoc cold-solve probes
    /// (absent in version-1 payloads; defaulted to 0).
    pub probe_counter: u64,
    /// Per-shard `(moved in, moved out)` live-migration counters
    /// (absent in pre-resharding payloads; defaulted to all-zero).
    pub shard_migrations: Vec<(u64, u64)>,
    /// Per-shard state, in shard order.
    pub shards: Vec<ShardRecord>,
}

/// Hand-written so the decode-and-migrate path can accept the version-1
/// schema (no `probe_counter`, no `coordinator_stats`) alongside the
/// current one — the vendored serde derive has no `#[serde(default)]`.
impl serde::Deserialize for EngineSnapshotState {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = serde::expect_object(value, "EngineSnapshotState")?;
        let version: u32 = serde::Deserialize::from_value(serde::object_field(
            entries,
            "version",
            "EngineSnapshotState",
        )?)?;
        if !(OLDEST_STATE_VERSION..=STATE_VERSION).contains(&version) {
            return Err(serde::DeError::msg(format!(
                "unsupported snapshot state version {version} (this build reads {OLDEST_STATE_VERSION}..={STATE_VERSION})"
            )));
        }
        let required = |name: &str| serde::object_field(entries, name, "EngineSnapshotState");
        let optional = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        Ok(EngineSnapshotState {
            version,
            wal_seq: serde::Deserialize::from_value(required("wal_seq")?)?,
            catalog_epoch: serde::Deserialize::from_value(required("catalog_epoch")?)?,
            config: serde::Deserialize::from_value(required("config")?)?,
            mirror: serde::Deserialize::from_value(required("mirror")?)?,
            owners: serde::Deserialize::from_value(required("owners")?)?,
            rejected: serde::Deserialize::from_value(required("rejected")?)?,
            deltas_since_reconcile: serde::Deserialize::from_value(required(
                "deltas_since_reconcile",
            )?)?,
            reconcile_candidates: serde::Deserialize::from_value(required(
                "reconcile_candidates",
            )?)?,
            coordinator_stats: match optional("coordinator_stats") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => CoordinatorStats::default(),
            },
            probe_counter: match optional("probe_counter") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => 0,
            },
            shard_migrations: match optional("shard_migrations") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => Vec::new(),
            },
            shards: serde::Deserialize::from_value(required("shards")?)?,
        })
    }
}

/// Errors raised while loading one snapshot file.
#[derive(Debug)]
pub enum SnapshotReadError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The file is partial, corrupt, or an unsupported version.
    Invalid(String),
}

impl std::fmt::Display for SnapshotReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotReadError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotReadError::Invalid(detail) => write!(f, "invalid snapshot: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotReadError {}

fn snapshot_path(dir: &Path, wal_seq: u64) -> PathBuf {
    dir.join(format!("snap-{wal_seq:020}.snap"))
}

/// Lists snapshot files as `(wal_seq, path)`, ascending.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut snapshots = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(stem) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".snap"))
        {
            if let Ok(seq) = stem.parse::<u64>() {
                snapshots.push((seq, entry.path()));
            }
        }
    }
    snapshots.sort();
    Ok(snapshots)
}

/// Writes a checkpoint to `snap-<wal_seq>.snap` (directly — no rename)
/// and fsyncs it. `fail_after_bytes` is the crash-injection hook: when
/// set, only that prefix of the file is written before the call fails,
/// leaving the partial file a loader must skip.
pub fn write_snapshot(
    dir: &Path,
    state: &EngineSnapshotState,
    fail_after_bytes: Option<u64>,
) -> io::Result<(PathBuf, u64)> {
    fs::create_dir_all(dir)?;
    // Serialization cannot fail for well-formed states; if it ever does,
    // the checkpoint reports an I/O-shaped error (serving continues on
    // the WAL alone) instead of killing the server.
    let payload = serde_json::to_string(state).map_err(io::Error::other)?;
    let header = format!(
        "IGEPA-SNAP {} {} {:016x}\n",
        state.version,
        payload.len(),
        fnv1a64(payload.as_bytes())
    );
    let mut bytes = header.into_bytes();
    bytes.extend_from_slice(payload.as_bytes());
    let path = snapshot_path(dir, state.wal_seq);
    let mut file = File::create(&path)?;
    if let Some(limit) = fail_after_bytes {
        let cut = (limit as usize).min(bytes.len());
        file.write_all(&bytes[..cut])?;
        file.sync_data()?;
        return Err(io::Error::other("injected crash mid-snapshot"));
    }
    file.write_all(&bytes)?;
    file.sync_data()?;
    Ok((path, bytes.len() as u64))
}

/// Reads and fully validates one snapshot file: header, length, checksum,
/// schema (with version migration).
pub fn read_snapshot(path: &Path) -> Result<EngineSnapshotState, SnapshotReadError> {
    let mut data = Vec::new();
    OpenOptions::new()
        .read(true)
        .open(path)
        .and_then(|mut f| f.read_to_end(&mut data))
        .map_err(SnapshotReadError::Io)?;
    let newline = data
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| SnapshotReadError::Invalid("no header line".to_string()))?;
    let header = std::str::from_utf8(&data[..newline])
        .map_err(|_| SnapshotReadError::Invalid("header is not UTF-8".to_string()))?;
    let mut tokens = header.split_whitespace();
    if tokens.next() != Some("IGEPA-SNAP") {
        return Err(SnapshotReadError::Invalid("bad magic".to_string()));
    }
    let version: u32 = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| SnapshotReadError::Invalid("bad header version".to_string()))?;
    let declared_len: usize = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| SnapshotReadError::Invalid("bad header length".to_string()))?;
    let declared_sum = tokens
        .next()
        .and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or_else(|| SnapshotReadError::Invalid("bad header checksum".to_string()))?;
    let payload = &data[newline + 1..];
    if payload.len() != declared_len {
        return Err(SnapshotReadError::Invalid(format!(
            "payload is {} bytes, header declares {declared_len} (partial write?)",
            payload.len()
        )));
    }
    if fnv1a64(payload) != declared_sum {
        return Err(SnapshotReadError::Invalid("checksum mismatch".to_string()));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| SnapshotReadError::Invalid("payload is not UTF-8".to_string()))?;
    let state: EngineSnapshotState = serde_json::from_str(text)
        .map_err(|e| SnapshotReadError::Invalid(format!("payload does not decode: {e}")))?;
    if state.version != version {
        return Err(SnapshotReadError::Invalid(format!(
            "header version {version} disagrees with payload version {}",
            state.version
        )));
    }
    Ok(state)
}

/// Loads the newest snapshot that validates, skipping partial or corrupt
/// files in favor of older ones. Returns the loaded state (if any) and
/// the paths that were skipped.
pub fn load_newest(
    dir: &Path,
) -> io::Result<(Option<(EngineSnapshotState, PathBuf)>, Vec<PathBuf>)> {
    let mut skipped = Vec::new();
    if !dir.exists() {
        return Ok((None, skipped));
    }
    let mut snapshots = list_snapshots(dir)?;
    snapshots.reverse();
    for (_, path) in snapshots {
        match read_snapshot(&path) {
            Ok(state) => return Ok((Some((state, path)), skipped)),
            Err(_) => skipped.push(path),
        }
    }
    Ok((None, skipped))
}

/// Deletes all but the newest `keep` snapshot files. Returns how many
/// were removed.
pub fn prune_snapshots(dir: &Path, keep: usize) -> io::Result<usize> {
    let snapshots = list_snapshots(dir)?;
    let excess = snapshots.len().saturating_sub(keep.max(1));
    for (_, path) in snapshots.into_iter().take(excess) {
        fs::remove_file(path)?;
    }
    Ok(excess)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::test_dir;
    use igepa_core::{AttributeVector, ConstantInterest, Instance, NeverConflict};

    fn tiny_state(wal_seq: u64) -> EngineSnapshotState {
        let mut b = Instance::builder();
        let v = b.add_event(2, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![v]);
        b.interaction_scores(vec![0.5]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        EngineSnapshotState {
            version: STATE_VERSION,
            wal_seq,
            catalog_epoch: 3,
            config: ShardedConfig::default(),
            mirror: InstanceSnapshot::capture(&instance),
            owners: vec![(0, 0)],
            rejected: 2,
            deltas_since_reconcile: 5,
            reconcile_candidates: vec![EventId::new(0)],
            coordinator_stats: CoordinatorStats {
                reconcile_passes: 1,
                quota_moved: 4,
                last_boundary_events: 1,
                ..CoordinatorStats::default()
            },
            probe_counter: 6,
            shard_migrations: Vec::new(),
            shards: Vec::new(),
        }
    }

    #[test]
    fn snapshot_roundtrips_through_disk() {
        let dir = test_dir("snap-roundtrip");
        let state = tiny_state(17);
        let (path, bytes) = write_snapshot(&dir, &state, None).unwrap();
        assert!(bytes > 0);
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back, state);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_snapshots_are_skipped_for_the_previous_valid_one() {
        let dir = test_dir("snap-partial");
        let good = tiny_state(10);
        write_snapshot(&dir, &good, None).unwrap();
        // A later checkpoint dies mid-write; its partial file sits on disk
        // under the newest name.
        let bad = tiny_state(20);
        assert!(write_snapshot(&dir, &bad, Some(40)).is_err());
        let (loaded, skipped) = load_newest(&dir).unwrap();
        let (state, _) = loaded.expect("the older snapshot is still valid");
        assert_eq!(state.wal_seq, 10);
        assert_eq!(skipped.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_payloads_fail_the_checksum() {
        let dir = test_dir("snap-tamper");
        let (path, _) = write_snapshot(&dir, &tiny_state(5), None).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 2;
        data[last] ^= 0x01;
        std::fs::write(&path, data).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapshotReadError::Invalid(detail)) if detail.contains("checksum")
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_1_payloads_migrate_with_defaults() {
        let state = tiny_state(8);
        let json = serde_json::to_string(&state).unwrap();
        // Rewrite the payload as the version-1 schema: bump the version
        // down and drop the fields that did not exist yet.
        let v1 = json
            .replacen("\"version\":2", "\"version\":1", 1)
            .replace("\"probe_counter\":6,", "")
            .replace(
                "\"coordinator_stats\":{\"reconcile_passes\":1,\"quota_moved\":4,\"last_boundary_events\":1},",
                "",
            );
        assert!(v1.len() < json.len(), "fields were actually dropped");
        let migrated: EngineSnapshotState = serde_json::from_str(&v1).unwrap();
        assert_eq!(migrated.version, 1);
        assert_eq!(migrated.probe_counter, 0);
        assert_eq!(migrated.coordinator_stats, CoordinatorStats::default());
        assert_eq!(migrated.wal_seq, state.wal_seq);
        assert_eq!(migrated.mirror, state.mirror);
    }

    #[test]
    fn unsupported_versions_are_rejected() {
        let mut state = tiny_state(8);
        state.version = 99;
        let json = serde_json::to_string(&state).unwrap();
        assert!(serde_json::from_str::<EngineSnapshotState>(&json).is_err());
    }

    #[test]
    fn pruning_keeps_the_newest_files() {
        let dir = test_dir("snap-prune");
        for seq in [1, 2, 3, 4] {
            write_snapshot(&dir, &tiny_state(seq), None).unwrap();
        }
        let removed = prune_snapshots(&dir, 2).unwrap();
        assert_eq!(removed, 2);
        let left = list_snapshots(&dir).unwrap();
        assert_eq!(
            left.iter().map(|&(seq, _)| seq).collect::<Vec<_>>(),
            vec![3, 4]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
