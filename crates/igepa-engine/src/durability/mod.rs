//! The durability subsystem: write-ahead log, versioned checkpoints, and
//! bit-identical crash recovery.
//!
//! Three layers, one invariant:
//!
//! * [`wal`] — a segmented, checksummed log of every mutating request,
//!   appended **before** the request is acknowledged (and before it
//!   executes), with a configurable fsync policy
//!   ([`DurabilityPolicy`](crate::shard::DurabilityPolicy));
//! * [`snapshot`] — periodic consistent checkpoints of the full engine
//!   state, versioned and checksummed, after which covered WAL segments
//!   are compacted away;
//! * [`recovery`] — newest-valid-snapshot restore plus WAL-tail replay,
//!   reproducing the pre-crash engine **bit for bit** (torn WAL tails are
//!   truncated; partial snapshots are skipped for the previous valid
//!   one).
//!
//! The invariant that makes this exact rather than best-effort: the
//! engine is deterministic (seeded solvers, exact utility summation), so
//! `restore(checkpoint) + replay(tail)` *is* the uninterrupted execution
//! of the same request prefix.
//!
//! [`DurabilityController`] packages the three for the serving layer: the
//! transport logs every admitted mutating request through it before the
//! ack, executes `Checkpoint` admin requests against it, and triggers
//! automatic checkpoints every
//! [`DurabilityController::set_snapshot_every`] logged requests.

pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use recovery::{recover, Recovered, RecoveryError, RecoveryReport};
pub use snapshot::{EngineSnapshotState, ShardRecord, SnapshotReadError, STATE_VERSION};
pub use wal::{read_wal, WalError, WalReadReport, WalRecord, WalWriter};

use crate::protocol::EngineRequest;
use crate::shard::DurabilityPolicy;
use std::io;
use std::path::{Path, PathBuf};

/// Logged requests between automatic checkpoints, unless overridden.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 512;

/// Whether a request mutates engine state and therefore must be logged
/// before its acknowledgement. Queries (and `Checkpoint` itself, which is
/// an admin action on the durability layer, not on the arrangement) are
/// not logged.
pub fn is_mutating(request: &EngineRequest) -> bool {
    matches!(
        request,
        EngineRequest::Apply { .. }
            | EngineRequest::ApplyBatch { .. }
            | EngineRequest::Rebalance
            | EngineRequest::Reshard { .. }
    )
}

/// A point-in-time copy of the durability counters, answered to the
/// `DurabilityStats` query.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityStatsView {
    /// Human-readable fsync policy (`"off"`, `"interval(5ms)"`, …).
    pub policy: String,
    /// Records appended to the WAL.
    pub wal_records: u64,
    /// Bytes appended to the WAL (frames, including headers).
    pub wal_bytes: u64,
    /// Fsyncs issued by the policy.
    pub fsyncs: u64,
    /// WAL segment files created.
    pub segments: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// WAL sequence covered by the last checkpoint (0: none yet).
    pub last_checkpoint_seq: u64,
}

/// Renders a [`DurabilityPolicy`] for stats and logs.
pub fn policy_name(policy: DurabilityPolicy) -> String {
    match policy {
        DurabilityPolicy::Off => "off".to_string(),
        DurabilityPolicy::Interval { millis } => format!("interval({millis}ms)"),
        DurabilityPolicy::EveryN { n } => format!("every({n})"),
        DurabilityPolicy::Always => "always".to_string(),
    }
}

/// What one checkpoint produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointOutcome {
    /// The snapshot file written.
    pub path: PathBuf,
    /// Its size in bytes.
    pub bytes: u64,
    /// The WAL sequence it covers.
    pub wal_seq: u64,
    /// WAL segment files compacted away.
    pub compacted_segments: u64,
}

/// The serving layer's handle on the durability subsystem: one WAL
/// writer plus checkpoint management over one directory.
pub struct DurabilityController {
    dir: PathBuf,
    policy: DurabilityPolicy,
    writer: WalWriter,
    snapshot_every: u64,
    since_checkpoint: u64,
    checkpoints: u64,
    last_checkpoint_seq: u64,
    fail_snapshot_after_bytes: Option<u64>,
}

impl DurabilityController {
    /// Opens a controller over a fresh durability directory (first record
    /// takes sequence 1).
    pub fn create(dir: &Path, policy: DurabilityPolicy) -> io::Result<Self> {
        DurabilityController::resume(dir, policy, 1, 0)
    }

    /// Opens a controller that continues an existing log: `next_seq` is
    /// the sequence the next logged request takes (from
    /// [`Recovered::next_seq`]), `last_checkpoint_seq` the coverage of
    /// the newest valid snapshot (from [`Recovered::last_checkpoint_seq`]).
    pub fn resume(
        dir: &Path,
        policy: DurabilityPolicy,
        next_seq: u64,
        last_checkpoint_seq: u64,
    ) -> io::Result<Self> {
        let writer = WalWriter::open(dir, policy, next_seq)?;
        Ok(DurabilityController {
            dir: dir.to_path_buf(),
            policy,
            writer,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            since_checkpoint: 0,
            checkpoints: 0,
            last_checkpoint_seq,
            fail_snapshot_after_bytes: None,
        })
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sets how many logged requests trigger an automatic checkpoint
    /// (0 disables automatic checkpoints; explicit `Checkpoint` requests
    /// always work).
    pub fn set_snapshot_every(&mut self, every: u64) {
        self.snapshot_every = every;
    }

    /// Overrides the WAL segment rotation threshold (tests).
    pub fn set_segment_max_bytes(&mut self, bytes: u64) {
        self.writer.set_segment_max_bytes(bytes);
    }

    /// Crash-injection: the next WAL append writes a partial frame and
    /// fails (see [`WalWriter::set_fail_after_bytes`]).
    pub fn set_fail_wal_after_bytes(&mut self, limit: Option<u64>) {
        self.writer.set_fail_after_bytes(limit);
    }

    /// Crash-injection: the next checkpoint writes a partial snapshot
    /// file and fails.
    pub fn set_fail_snapshot_after_bytes(&mut self, limit: Option<u64>) {
        self.fail_snapshot_after_bytes = limit;
    }

    /// Sequence number of the last logged request (0: none).
    pub fn last_seq(&self) -> u64 {
        self.writer.last_seq()
    }

    /// WAL sequence covered by the newest checkpoint (0: none yet).
    /// Snapshots are written in place under their coverage sequence, so
    /// callers cutting a checkpoint at an already-covered sequence must
    /// skip it — a torn rewrite would destroy the existing valid file.
    pub fn last_checkpoint_seq(&self) -> u64 {
        self.last_checkpoint_seq
    }

    /// Logs one admitted mutating request ahead of its execution and
    /// acknowledgement. Returns the record's sequence number.
    pub fn log(
        &mut self,
        envelope_id: u64,
        epoch: u64,
        request: &EngineRequest,
    ) -> io::Result<u64> {
        debug_assert!(is_mutating(request), "only mutating requests are logged");
        let seq = self.writer.append(envelope_id, epoch, request)?;
        self.since_checkpoint += 1;
        Ok(seq)
    }

    /// Whether enough requests were logged since the last checkpoint for
    /// an automatic one.
    pub fn auto_checkpoint_due(&self) -> bool {
        self.snapshot_every > 0 && self.since_checkpoint >= self.snapshot_every
    }

    /// Writes a checkpoint, prunes old snapshots (the newest two are
    /// kept) and compacts covered WAL segments. `state.wal_seq` must be
    /// [`DurabilityController::last_seq`] captured at a barrier.
    pub fn checkpoint(&mut self, state: &EngineSnapshotState) -> io::Result<CheckpointOutcome> {
        let fail = self.fail_snapshot_after_bytes.take();
        let (path, bytes) = snapshot::write_snapshot(&self.dir, state, fail)?;
        snapshot::prune_snapshots(&self.dir, 2)?;
        let compacted_segments = self.writer.compact(state.wal_seq)?;
        self.checkpoints += 1;
        self.last_checkpoint_seq = state.wal_seq;
        self.since_checkpoint = 0;
        Ok(CheckpointOutcome {
            path,
            bytes,
            wal_seq: state.wal_seq,
            compacted_segments,
        })
    }

    /// Point-in-time durability counters.
    pub fn stats(&self) -> DurabilityStatsView {
        let (wal_records, wal_bytes, fsyncs, segments) = self.writer.counters();
        DurabilityStatsView {
            policy: policy_name(self.policy),
            wal_records,
            wal_bytes,
            fsyncs,
            segments,
            checkpoints: self.checkpoints,
            last_checkpoint_seq: self.last_checkpoint_seq,
        }
    }
}

/// Unique temp-dir helper shared by the durability unit tests.
#[cfg(test)]
pub(crate) fn test_dir(label: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "igepa-durability-{label}-{}-{n}",
        std::process::id()
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
