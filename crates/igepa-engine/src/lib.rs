//! # igepa-engine — incremental arrangement serving
//!
//! Every solver in `igepa-algos` is batch: freeze an
//! [`Instance`](igepa_core::Instance), produce an
//! [`Arrangement`](igepa_core::Arrangement). Real event-based social
//! networks are not batch — users register, events are announced,
//! capacities change, bid sets churn. This crate turns the reproduction
//! into a *serving* system: a long-lived in-memory instance that absorbs a
//! stream of [`InstanceDelta`](igepa_core::InstanceDelta)s and keeps a
//! feasible, near-optimal arrangement available at all times.
//!
//! ## The delta / repair model
//!
//! 1. **Deltas** ([`igepa_core::delta`]) mutate the instance in place with
//!    full validation. The conflict matrix and interest table are patched
//!    incrementally — σ is evaluated only for new event pairs, `SI` only
//!    for new bid pairs — never rebuilt.
//! 2. **Dirty tracking**: each applied delta reports the users and events
//!    whose constraints or candidate sets changed; the engine folds them
//!    into a [`igepa_core::DirtySet`].
//! 3. **Warm-start repair** ([`Engine::apply`]): for small dirty sets the
//!    engine runs a *greedy patch* — prune assignments made infeasible,
//!    evict overflow at dirty events, then greedily re-admit the heaviest
//!    feasible candidate pairs touching the dirty set. When the dirty set
//!    exceeds [`EngineConfig::escalation_fraction`] of the user base, it
//!    escalates to a full re-solve through the [`igepa_algos::WarmStart`]
//!    trait (seeded by the previous arrangement).
//! 4. **Staleness control**: greedy patching drifts away from what a cold
//!    solve would produce. Every
//!    [`EngineConfig::staleness_check_interval`] deltas the engine runs a
//!    cold solve on the current instance and adopts it when the served
//!    utility has drifted below `1 − max_staleness` of it. Utility drift
//!    is therefore *bounded by configuration*, and the cold solve doubles
//!    as the drift measurement.
//!
//! The engine is fully deterministic: solver invocations draw seeds from a
//! counter, so replaying the same request log from the same initial state
//! reproduces every intermediate arrangement bit-for-bit.
//!
//! ## O(1) utility tracking
//!
//! Scoring never touches the apply hot path. Each shard maintains a
//! [`igepa_core::UtilityTracker`]: every assign/unassign of the served
//! arrangement (greedy patch, eviction, quota repair) updates the
//! Definition-7 `interest_sum`/`interaction_sum` incrementally, instance-
//! side score changes are folded in via the
//! [`DeltaEffect`](igepa_core::DeltaEffect) notifications, and wholesale
//! arrangement replacements (cold/warm solves) rebuild the tracker inside
//! the already-O(instance) solve. [`Shard::utility`], apply outcomes and
//! the transport's query cache therefore read the breakdown in O(1).
//! Determinism survives because both the tracker and the from-scratch
//! [`Arrangement::utility`](igepa_core::Arrangement::utility) sum through
//! [`igepa_core::ExactSum`] — the correctly rounded *exact* sum, which is
//! order- and history-independent — so the incremental value is
//! bit-identical to a recompute (the shard `debug_assert`s exactly that
//! after every repair). The arrangement's reverse attendee index makes
//! `users_of` an O(1) slice borrow, which also removed the
//! `dirty.events × |U|` term from the greedy patch and from
//! [`BatchPolicy::cost_model`]'s unit basis.
//!
//! ## The O(changed) apply path
//!
//! Two mechanisms keep per-apply work proportional to what the apply
//! *changed*, not to the size of the shard:
//!
//! * **Diff-shipped cache views.** The transport's query cache used to
//!   be refreshed by an O(shard pairs) `clone_from` of the arrangement
//!   on every apply completion. Repair already knows exactly which
//!   pairs it touched, so each worker now records them in an
//!   [`ArrangementDiff`](igepa_core::ArrangementDiff) and ships a
//!   compact *view delta* — the net pair edits plus O(1) replacement
//!   metadata — that the cache replays onto its installed snapshot in
//!   place. Deltas are chained by epoch; whenever the worker cannot
//!   vouch for the chain (first apply after a barrier resume, full
//!   re-solves, batch solves) it falls back to shipping a full
//!   snapshot, so the installed view is bit-identical to a fresh clone
//!   either way. `BENCH_engine.json`'s `view_diff/*` rows pin the win:
//!   diff installs are two orders of magnitude cheaper than
//!   `clone_from` at 100k users.
//!
//! * **Component-parallel intra-shard repair.** A dirty set usually
//!   decomposes: two dirty users whose bid sets share no event (and
//!   collide with no common attendee) cannot influence each other's
//!   repair. [`Shard`] builds the *repair-interference graph* over the
//!   dirty entities (dirty user → its bids and current events; dirty
//!   event → its bidders and attendees; attendees → their bids), splits
//!   it into connected components with `igepa-graph`'s epoch-stamped
//!   `DenseInterner` + `DenseDisjointSets` (O(changed) with no
//!   per-repair allocation churn), and patches each component in its
//!   own sandbox ([`igepa_algos::ComponentState`] over a shared
//!   [`igepa_algos::ComponentSlots`] slot table) on the vendored
//!   `scoped-pool` fork-join helper. Sandboxed ops replay onto the real
//!   arrangement in component order, and because every utility read
//!   sums through [`igepa_core::ExactSum`] — order-independent by
//!   construction — the result is **bit-identical for any thread
//!   count** (proptested at 1/2/4 threads in CI).
//!
//! The knob is [`EngineConfig::repair_threads`]. It defaults to `1`,
//! which keeps the original serial `patch_region` path and lets legacy
//! configs (which predate the field) deserialize into identical
//! behaviour. Any value `> 1` enables the component split; actual
//! spawns are clamped to the host's available parallelism, so
//! oversubscribed settings cost nothing but still exercise the same
//! deterministic code path.
//!
//! The last solver-side gap is closed in `igepa-lp`: the exact simplex
//! backend accepts a crash *basis* from a previous solve
//! (`SimplexSolver::solve_warm`), so escalated re-solves pay only the
//! pivots the change requires — see that crate's docs.
//!
//! ## Sharded serving
//!
//! One repair loop caps how many users a process can serve. The crate
//! therefore splits into three layers:
//!
//! * [`Shard`] ([`shard`]) — the reusable solve/repair core over one
//!   slice of the users (all events, quota'd capacities);
//! * [`Engine`] ([`engine`]) — the monolithic façade: exactly one shard
//!   over the full instance, original API and behaviour;
//! * [`ShardedEngine`] ([`coordinator`]) — N shards behind a routing
//!   coordinator. Users are placed by a pluggable
//!   [`Partitioner`](igepa_core::Partitioner); each event's capacity is
//!   split into per-shard *quotas* that always sum to the true capacity,
//!   which makes the merged arrangement feasible by construction. The
//!   bounded quota-exchange protocol of [`reconcile`] moves slack quota
//!   toward unmet demand at boundary events. `num_shards == 1`
//!   reproduces the monolithic engine's responses bit for bit.
//!
//! ## The shared event catalogue
//!
//! User-side state partitions across shards; event-side state (the event
//! list, true capacities, and the O(|V|²) conflict matrix) must be
//! visible everywhere. The [`EventCatalog`] ([`catalog`]) keeps it
//! **once**: immutable, epoch-versioned [`CatalogSnapshot`]s whose
//! conflict matrix every shard and the coordinator mirror share by
//! `Arc` handle — resident conflict memory is O(|V|²) regardless of
//! shard count. An `AddEvent` broadcast is one coordinator-side publish
//! (σ evaluated exactly once, into a double-buffered copy-on-write
//! matrix) plus an epoch bump each shard absorbs in O(1) by adopting the
//! new snapshot ([`Shard::apply_announcement`]); event-capacity edits
//! republish only a flat capacity vector. Stragglers still holding an
//! old epoch cost one transient matrix copy, never correctness.
//!
//! ## Requests as data
//!
//! [`EngineRequest`] / [`EngineResponse`] form a serde-backed JSON-lines
//! protocol ([`protocol`]); [`replay`] drives an engine from a recorded
//! request log and reports per-delta latency plus the utility achieved.
//! Traces are reproducible artifacts: `igepa-datagen`'s `trace` module
//! generates Meetup-style arrival-process workloads to feed it.
//!
//! ## Service layer and TCP transport
//!
//! Protocol *semantics* live in one place: [`EngineService`] interprets
//! requests against anything implementing [`EngineBackend`] (both engines
//! do), so the monolithic and sharded paths can never drift. On the wire,
//! requests travel as versioned [`RequestEnvelope`]s and come back as
//! [`ResponseEnvelope`]s whose `result` carries a typed [`EngineError`]
//! on failure — while bare pre-envelope request lines still decode (and
//! replay bit for bit) through the legacy dialect.
//!
//! [`transport`] puts the envelopes on TCP: line- or length-prefix-framed
//! JSONL, a blocking [`EngineClient`] (which also *pipelines*: send-ahead
//! with correlation-id matching on receipt, removing the RTT-per-request
//! floor), a serial [`EngineServer::serve`] for any backend, and
//! [`EngineServer::serve_sharded`], which runs one worker thread per
//! shard — user-scoped deltas are validated on the coordinator and
//! repaired concurrently on the owning shard's worker; broadcasts,
//! batches and `Rebalance` barrier.
//!
//! The **read path is barrier-free**: each worker reports an epoch-tagged
//! read-state view with every apply completion (shipped as an
//! O(changed) diff against the previous view whenever the epoch chain
//! is unbroken — see *The O(changed) apply path* above), and the
//! aggregate queries
//! (`Utility`, `Stats`, `ShardStats`) are answered from that cache in the
//! connection threads — they never enter the dispatch queue, let alone
//! stop the worker pool. The view for an apply is installed *before* its
//! ack is sent, so a client that has seen an ack can never read the
//! pre-apply epoch (and a synchronous client still observes exactly the
//! serial service's responses, bit for bit). Per-entity reads
//! (`AssignmentsOf`, `EventLoad`) come from the same cache, and even
//! `MergedSnapshot` is rebuilt connection-side — cached per-shard views
//! give the pairs, absorbing the per-shard utility trackers gives the
//! exact merged utility — whenever every owner-table row resolves
//! against its shard's view; the dispatch-queue barrier remains only as
//! the fallback for the brief window where a view lags the owner table.
//!
//! ## Durability and recovery
//!
//! The [`durability`] module family makes serving crash-safe without
//! giving up bit-for-bit determinism:
//!
//! * **Write-ahead log** ([`durability::wal`]) — every admitted mutating
//!   request (`Apply`, `ApplyBatch`, `Rebalance` — rejected ones
//!   included, since rejections replay deterministically too) is
//!   appended to a segmented, FNV-checksummed log *before* its
//!   acknowledgement. [`EngineServer::serve_sharded_durable`] wires a
//!   [`DurabilityController`] into the dispatcher; a failed append
//!   refuses the request — what is not logged must not execute.
//! * **Checkpoints** ([`durability::snapshot`]) — explicit `Checkpoint`
//!   requests and automatic every-N-records checkpoints serialize the
//!   full engine state ([`ShardedEngine::snapshot_state`]) at a dispatch
//!   barrier into versioned, checksummed snapshot files, then compact
//!   the WAL segments they cover. Version-1 payloads still load through
//!   the decode-and-migrate path.
//! * **Recovery** ([`recover`]) — newest valid snapshot
//!   ([`ShardedEngine::restore_state`], which *verifies* the rebuilt
//!   utility trackers bit for bit) plus WAL-tail replay reproduces the
//!   pre-crash merged arrangement and utility breakdown exactly. Torn
//!   WAL tails are truncated; partial snapshots are skipped for the
//!   previous valid one. The `DurabilityStats` query reports the live
//!   counters.
//!
//! The fsync policy ([`DurabilityPolicy`], `EngineConfig::durability`)
//! trades apply latency against the window of acknowledged requests a
//! host crash can lose (a *process* crash loses nothing — the OS page
//! cache survives it):
//!
//! | Policy | fsync cadence | Lost on host crash | Apply overhead |
//! |---|---|---|---|
//! | `Off` | never (OS flushes) | up to the whole OS write-back window | cheapest — frame encode + buffered write |
//! | `Interval { millis }` | at most once per interval | ≤ one interval of acks | near `Off` between syncs |
//! | `EveryN { n }` | every `n` records | ≤ `n − 1` acked requests | amortised sync cost |
//! | `Always` | every record | nothing | one fsync per mutating request |
//!
//! `BENCH_engine.json`'s `durability/apply/*` scenarios track the real
//! cost of each policy, and `durability/recover_tail/*` the recovery
//! time as the un-checkpointed tail grows.
//!
//! ## Overload and degradation
//!
//! Overload is a scenario, not an accident: the engine must *degrade*,
//! never collapse. Three mechanisms, all opt-in through configuration
//! and all preserving the pre-overload behaviour when unset:
//!
//! * **Bounded admission** ([`AdmissionPolicy`],
//!   `EngineConfig::admission`) — with a `Bounded { max_queue, .. }`
//!   policy, connection threads check-and-increment the shared queue
//!   depth *before* enqueueing a mutation; at the cap (or in read-only
//!   degraded mode) the mutation is refused immediately with
//!   [`EngineError::Overloaded`] — typed, instant, nothing enqueued.
//!   Cache-answered reads never touch admission, so reads keep flowing
//!   at full speed while mutations shed. The default
//!   [`AdmissionPolicy::Unbounded`] reproduces the pre-admission
//!   server exactly, and legacy configs without the field deserialize
//!   to it bit-identically.
//! * **Per-request deadlines** (`RequestEnvelope::deadline_ms`) — an
//!   optional millisecond budget counted from arrival at the server; a
//!   request whose budget expired while it queued is dropped at
//!   dequeue with [`EngineError::DeadlineExceeded`], before the WAL or
//!   any shard sees it. Envelopes without the field are byte-identical
//!   to the pre-deadline wire format.
//! * **Read-only degraded mode** — a WAL append failure refuses the
//!   failing request *and latches the server read-only*: every
//!   subsequent mutation sheds with `Overloaded` while cached reads
//!   keep answering. A log that failed once cannot vouch for the next
//!   append; only a restart over a repaired durability directory
//!   clears the latch.
//!
//! The [`OverloadStats`] query reports the live counters (depth,
//! high-water, shed, deadline-expired, read-only) straight from the
//! connection thread — observing overload neither queues nor barriers.
//! Client-side, [`EngineClient::call_with_retry`] and
//! [`EngineClient::query_resilient`] honor `retry_after_ms` with
//! deterministic seeded backoff ([`RetryPolicy`]), and resilient reads
//! reconnect-and-replay (reads are idempotent; mutations never replay).
//!
//! The full refusal taxonomy, by where it is decided:
//!
//! | Error | Decided | Meaning | State changed? | Retry? |
//! |---|---|---|---|---|
//! | [`EngineError::Overloaded`] | connection thread (admission) / dispatcher (read-only re-check) | queue at cap, or read-only degraded mode | no | yes, after `retry_after_ms` |
//! | [`EngineError::DeadlineExceeded`] | dispatcher, at dequeue | budget expired while queued | no | caller's choice (budget semantics) |
//! | [`EngineError::Rejected`] | validation / durability | invalid delta, or WAL/checkpoint failure | no | not without changing the request |
//! | [`EngineError::NotFound`] | query execution | unknown user/event | no | no |
//! | [`EngineError::Unsupported`] | version gate | unknown protocol dialect | no | no |
//! | [`EngineError::Malformed`] | decode | undecodable line | no | no |
//! | [`EngineError::Internal`] | dispatch | infrastructure failure | no | against a recovered server |
//!
//! Legacy (bare-line) clients receive the same refusals as
//! `Rejected { reason }` strings carrying the typed error's Display
//! text — a shed is *always* a response, never a silent drop.
//!
//! The [`faults`] module closes the loop: a seeded
//! [`FaultPlan`](faults::FaultPlan) injects slow shards, dropped worker
//! view shipments and WAL stalls/failures into
//! [`EngineServer::serve_sharded_faulted`], and the `overload` proptest
//! suite proves the invariants under any plan — every accepted request
//! gets exactly one typed response, the server neither panics nor
//! deadlocks, and the merged arrangement stays feasible.
//!
//! ## Elastic resharding
//!
//! [`EngineRequest::Reshard`]` { num_shards }` grows or shrinks the
//! shard set of a live server. Migration is **pure re-partitioning**:
//! every user is re-placed through the engine's
//! [`Partitioner`](igepa_core::Partitioner) at the new shard count and
//! moved — bid sub-state, interest columns, per-event quota share and
//! [`UtilityTracker`](igepa_core::UtilityTracker) contributions
//! together, pair for pair with exact-sum bits preserved — so served
//! utility is bit-identical across the move and the merged arrangement
//! stays feasible throughout (the new quota split floors at per-shard
//! load: zero evictions by construction). The answer is
//! [`EngineResponse::Resharded`] carrying a [`MigrationRecord`].
//!
//! On a durable server the migration is a transaction on the
//! durability seam, ordered against catalogue broadcasts by the WAL's
//! epoch tagging:
//!
//! 1. the dispatcher barriers (in-flight work drains; incoming
//!    requests *park* in the backlog rather than being refused);
//! 2. a pre-migration checkpoint is cut at S-1 — skipped when S-1 is
//!    already covered, because snapshots rewrite in place and tearing
//!    a redundant rewrite would clobber the valid file;
//! 3. the `Reshard` was already WAL-logged at S (before the ack, like
//!    every mutation), tagged with the catalogue epoch it executed
//!    under — so replay re-runs the migration at exactly the same
//!    point in the broadcast order;
//! 4. the owner table and quota vectors are rewritten, shard
//!    sub-instances extracted/absorbed, per-slot stats and migration
//!    counters carried over;
//! 5. a post-migration checkpoint is cut at S, the query cache's view
//!    vector is rebuilt and swapped in one write-lock hold (readers
//!    never observe a torn owner table), parked requests replay
//!    against the new owners, and the worker pool is resized.
//!
//! Crash recovery replays `Reshard` records like any other mutation,
//! so a kill on *either* side of the owner rewrite recovers bit-exact
//! (`tests/crash_recovery.rs` drives torn-record, torn-checkpoint and
//! both owner-rewrite kill points). The reconcile loop surfaces
//! skew-triggered migration proposals
//! ([`ShardedEngine::migration_proposal`]) which an operator executes
//! by pinning the moves in an
//! [`OverridePartitioner`](igepa_core::OverridePartitioner) and
//! resharding at the current count; proposals are never auto-executed.
//! `ShardStats` reports per-shard `moved_in`/`moved_out` counters, and
//! `BENCH_engine.json`'s `reshard/*` rows price the migration pause
//! and the per-user move cost.
//!
//! ### Client/server quickstart
//!
//! ```
//! use igepa_core::{AttributeVector, ConstantInterest, EventId, Instance,
//!                  HashPartitioner, InstanceDelta, NeverConflict};
//! use igepa_algos::GreedyArrangement;
//! use igepa_engine::{EngineClient, EngineQuery, EngineResponse, EngineServer,
//!                    Framing, ShardedConfig, ShardedEngine};
//! use std::net::TcpListener;
//!
//! // Server: a 2-shard engine behind per-shard workers on an ephemeral port.
//! let mut b = Instance::builder();
//! let v = b.add_event(4, AttributeVector::empty());
//! for _ in 0..3 { b.add_user(1, AttributeVector::empty(), vec![v]); }
//! b.interaction_scores(vec![0.5; 3]);
//! let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
//! let engine = ShardedEngine::new(
//!     instance,
//!     Box::new(NeverConflict),
//!     Box::new(ConstantInterest(0.5)),
//!     Box::new(GreedyArrangement),
//!     Box::new(HashPartitioner),
//!     ShardedConfig::with_shards(2),
//! );
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let server = EngineServer::serve_sharded(listener, engine, Framing::Lines).unwrap();
//!
//! // Client: blocking calls, versioned envelopes, typed errors.
//! let mut client = EngineClient::connect(server.local_addr(), Framing::Lines).unwrap();
//! let applied = client.apply(InstanceDelta::AddUser {
//!     capacity: 1,
//!     attrs: AttributeVector::empty(),
//!     bids: vec![EventId::new(0)],
//!     interaction: 0.9,
//! }).unwrap();
//! assert!(matches!(applied, EngineResponse::Applied { .. }));
//! assert!(matches!(
//!     client.query(EngineQuery::Utility).unwrap(),
//!     EngineResponse::Utility { .. }
//! ));
//!
//! // Clean shutdown hands the engine back for inspection.
//! drop(client);
//! let engine = server.shutdown().unwrap();
//! assert!(engine.merged_arrangement().is_feasible(engine.instance()));
//! ```
//!
//! ```
//! use igepa_core::{AttributeVector, EventId, InstanceDelta, Instance,
//!                  ConstantInterest, NeverConflict};
//! use igepa_engine::{Engine, EngineConfig};
//! use igepa_algos::GreedyArrangement;
//!
//! let mut b = Instance::builder();
//! let v = b.add_event(2, AttributeVector::empty());
//! b.add_user(1, AttributeVector::empty(), vec![v]);
//! b.interaction_scores(vec![0.4]);
//! let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
//!
//! let mut engine = Engine::new(
//!     instance,
//!     Box::new(NeverConflict),
//!     Box::new(ConstantInterest(0.5)),
//!     Box::new(GreedyArrangement),
//!     EngineConfig::default(),
//! );
//! let outcome = engine.apply(&InstanceDelta::AddUser {
//!     capacity: 1,
//!     attrs: AttributeVector::empty(),
//!     bids: vec![EventId::new(0)],
//!     interaction: 0.9,
//! }).unwrap();
//! assert!(engine.arrangement().is_feasible(engine.instance()));
//! assert!(outcome.utility > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod coordinator;
pub mod durability;
pub mod engine;
pub mod error;
pub mod faults;
pub mod protocol;
pub mod reconcile;
pub mod replay;
pub mod service;
pub mod shard;
pub mod transport;

pub use catalog::{CatalogSnapshot, EventCatalog};
pub use coordinator::{CoordinatorStats, ShardStatsEntry, ShardedConfig, ShardedEngine};
pub use durability::{
    recover, DurabilityController, EngineSnapshotState, Recovered, RecoveryError, RecoveryReport,
    WalRecord, STATE_VERSION,
};
pub use engine::{ApplyOutcome, Engine, EngineConfig, EngineStats, RepairKind};
pub use error::{EngineError, EntityRef, RejectReason};
pub use faults::{FaultCounts, FaultInjector, FaultPlan};
pub use protocol::{
    decode_request, decode_request_envelope, decode_response, decode_response_envelope,
    encode_request, encode_request_envelope, encode_response, encode_response_envelope,
    requests_from_jsonl, requests_to_jsonl, EngineQuery, EngineRequest, EngineResponse,
    MigrationRecord, OverloadStats, ProtocolError, RequestEnvelope, ResponseEnvelope,
    LEGACY_VERSION, PROTOCOL_VERSION,
};
pub use reconcile::ReconcileReport;
pub use replay::{replay, replay_jsonl, LatencySummary, ReplayOutcome, ReplayReport};
pub use service::{EngineBackend, EngineService};
pub use shard::{AdmissionPolicy, BatchPolicy, DurabilityPolicy, Shard, ShardOp};
pub use transport::{ClientError, EngineClient, EngineServer, Framing, RetryPolicy, ServerHandle};
