//! The shard: delta application, dirty tracking and the warm-start repair
//! loop over one slice of the user population.
//!
//! A [`Shard`] is the reusable solve/repair core extracted from the
//! original monolithic engine. The single-instance [`crate::Engine`] wraps
//! exactly one shard over the full instance; the sharded
//! [`crate::ShardedEngine`] owns several, each serving a sub-instance that
//! contains **all events** (with per-shard capacity *quotas*) but only the
//! shard's users. Because bid, user-capacity and conflict constraints are
//! per user, a shard's repair loop is self-contained; the only cross-shard
//! coupling — event capacity — is handled by the coordinator moving quota
//! between shards (see [`crate::reconcile`]).

use crate::catalog::CatalogSnapshot;
use igepa_algos::{patch_region, ComponentSlots, ComponentState, PatchOps, WarmStart};
use igepa_core::{
    Arrangement, ArrangementDiff, CapacityTarget, ConflictFn, CoreError, DeltaEffect, DirtySet,
    EventId, Instance, InstanceDelta, InterestFn, UserId, UtilityBreakdown, UtilityTracker,
};
use igepa_graph::{DenseDisjointSets, DenseInterner};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Shared, thread-safe conflict-function handle. Shards are owned by
/// per-shard worker threads under the TCP transport, so the functions a
/// shard consults must be `Send + Sync` (every implementation in the
/// workspace is a plain data struct, so this costs callers nothing).
pub type SharedConflict = Arc<dyn ConflictFn + Send + Sync>;

/// Shared, thread-safe interest-function handle.
pub type SharedInterest = Arc<dyn InterestFn + Send + Sync>;

/// Shared, thread-safe warm-start solver handle.
pub type SharedSolver = Arc<dyn WarmStart + Send + Sync>;

/// How a shard repairs after absorbing a *burst* of deltas in one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// Always run the incremental path: greedy patch, escalating to a full
    /// warm-start re-solve when the dirty-user count exceeds
    /// [`EngineConfig::escalation_fraction`]. This is the original engine
    /// behaviour and the default.
    #[default]
    Escalation,
    /// Per-burst cost model: estimate the greedy patch's work (candidate
    /// pairs around the dirty set plus the per-dirty-event attendee scans)
    /// against one cold solve of the whole instance, and run whichever is
    /// predicted cheaper. Large bursts dirty most of the instance, where
    /// `benches/engine.rs` shows a single cold greedy solve beats
    /// patch-plus-escalation.
    CostModel {
        /// Estimated cost per candidate pair examined by the greedy patch.
        patch_cost_per_candidate: f64,
        /// Estimated cost per bid pair examined by a cold solve.
        solve_cost_per_bid: f64,
    },
}

impl BatchPolicy {
    /// A cost model with calibrated constants: the per-unit costs were
    /// measured by `benches/engine.rs` (the `cost_model/*` scenarios of
    /// `BENCH_engine.json`, via the engine's own online calibration) on
    /// the bench workload — ~175 ns per candidate pair examined by the
    /// greedy patch (candidate-set assembly, weight lookup, conflict
    /// scan, admission bookkeeping) vs ~115 ns per bid pair of a cold
    /// greedy solve (sort share plus admission). The constants were
    /// re-derived when the reverse attendee index removed the
    /// `dirty.events × |U|` attendee-scan term from the patch basis
    /// (`Shard::patch_units` now counts candidate pairs only, so the
    /// per-unit cost absorbs the patch's fixed per-repair overhead
    /// honestly instead of amortising it over a fictitious full-user
    /// scan). Only the *ratio* steers the patch-vs-solve decision, so
    /// these defaults transfer across machines far better than absolute
    /// timings; enable [`EngineConfig::online_cost_calibration`] to
    /// track a specific deployment's observed ratio with a per-shard
    /// EWMA.
    pub fn cost_model() -> Self {
        BatchPolicy::CostModel {
            patch_cost_per_candidate: 175.0,
            solve_cost_per_bid: 115.0,
        }
    }
}

/// When the write-ahead log is flushed to stable storage (fsync'd).
///
/// Every policy *writes* each record to the operating system before the
/// request is acknowledged, so an engine crash never loses acknowledged
/// work; the policies differ in when the data is forced past the OS page
/// cache onto the device, i.e. what a whole-machine crash can lose:
///
/// | policy     | fsync cadence              | machine crash can lose    |
/// |------------|----------------------------|---------------------------|
/// | `Off`      | never                      | everything in page cache  |
/// | `Interval` | at most every `millis` ms  | the last interval         |
/// | `EveryN`   | every `n` appended records | the last `n − 1` records  |
/// | `Always`   | every appended record      | nothing acknowledged      |
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum DurabilityPolicy {
    /// Never fsync: records reach the OS on every append, stable storage
    /// whenever the OS flushes. Survives engine crashes, not power loss.
    /// The default (durability costs are strictly opt-in).
    #[default]
    Off,
    /// Fsync when at least `millis` milliseconds passed since the last
    /// one (checked on append).
    Interval {
        /// Minimum milliseconds between fsyncs.
        millis: u64,
    },
    /// Fsync every `n` appended records.
    EveryN {
        /// Records between fsyncs (`0` behaves like `Always`).
        n: u64,
    },
    /// Fsync after every appended record before acknowledging it.
    Always,
}

/// Admission control for the serving dispatch queue.
///
/// The TCP transport's dispatch channel is unbounded; without a cap a
/// traffic burst queues without limit instead of shedding. A bounded
/// policy makes overload a *scenario*: at the cap the connection thread
/// refuses new work immediately with a typed
/// [`EngineError::Overloaded`](crate::EngineError::Overloaded) instead
/// of enqueueing, while reads keep answering from the barrier-free
/// query cache. The default is [`AdmissionPolicy::Unbounded`] — the
/// pre-admission behaviour — so configs serialized before the knob
/// existed deserialize and behave identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// No cap: every decoded request is enqueued (the legacy
    /// behaviour, and the default).
    #[default]
    Unbounded,
    /// At most `max_queue` admitted-but-undispatched requests; beyond
    /// it mutations shed with `Overloaded { retry_after_ms }` while
    /// cached reads keep flowing.
    Bounded {
        /// Maximum queued (admitted but not yet dispatched) requests.
        max_queue: usize,
        /// Back-off hint handed to shedding clients, in milliseconds.
        retry_after_ms: u64,
    },
}

impl AdmissionPolicy {
    /// The queue cap, or `None` when unbounded.
    pub fn max_queue(&self) -> Option<usize> {
        match self {
            AdmissionPolicy::Unbounded => None,
            AdmissionPolicy::Bounded { max_queue, .. } => Some(*max_queue),
        }
    }

    /// The back-off hint for shed requests, in milliseconds.
    /// Unbounded servers only shed in read-only degraded mode; they
    /// hint a fixed small back-off.
    pub fn retry_after_ms(&self) -> u64 {
        match self {
            AdmissionPolicy::Unbounded => 50,
            AdmissionPolicy::Bounded { retry_after_ms, .. } => *retry_after_ms,
        }
    }

    /// A bounded policy with the default back-off hint.
    pub fn bounded(max_queue: usize) -> Self {
        AdmissionPolicy::Bounded {
            max_queue,
            retry_after_ms: 50,
        }
    }

    /// Human-readable rendering for stats surfaces (`"unbounded"`,
    /// `"bounded(64)"`).
    pub fn describe(&self) -> String {
        match self {
            AdmissionPolicy::Unbounded => "unbounded".to_string(),
            AdmissionPolicy::Bounded { max_queue, .. } => format!("bounded({max_queue})"),
        }
    }
}

/// Tuning knobs of the repair loop.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineConfig {
    /// Base seed for every solver invocation; solves draw `seed`,
    /// `seed + 1`, … so runs are reproducible.
    pub seed: u64,
    /// When the dirty-user count exceeds this fraction of all users, the
    /// greedy patch escalates to a full warm-start re-solve.
    pub escalation_fraction: f64,
    /// Run a cold solve and compare utilities every this many deltas
    /// (0 disables staleness checking).
    pub staleness_check_interval: u64,
    /// Adopt the cold solution when the served utility falls below
    /// `(1 − max_staleness) ×` the cold utility.
    pub max_staleness: f64,
    /// How batched bursts are repaired (see [`BatchPolicy`]).
    pub batch_policy: BatchPolicy,
    /// Refine [`BatchPolicy::CostModel`]'s per-unit costs online: each
    /// shard keeps an EWMA of its *measured* greedy-patch and cold-solve
    /// timings (normalised per candidate / per bid) and prefers those
    /// over the configured constants once observed. Off by default —
    /// wall-clock-driven decisions make repair choices (not results)
    /// machine-dependent, which bit-for-bit replay comparisons must
    /// opt into knowingly.
    pub online_cost_calibration: bool,
    /// Fsync policy of the write-ahead log when the engine is served with
    /// durability enabled (ignored otherwise). See [`DurabilityPolicy`]
    /// for the loss window each point of the spectrum accepts.
    pub durability: DurabilityPolicy,
    /// Worker threads for intra-shard repair: when greater than 1 and the
    /// dirty set splits into several independent components of the
    /// repair-interference graph, components are repaired concurrently on
    /// a scoped pool of up to this many threads (spawns are further
    /// clamped to the host's available parallelism; on a single-core
    /// host the split still runs but components repair inline, so set 1
    /// to skip the split entirely). Exact summation makes the result
    /// bit-identical to the serial pass regardless of thread count.
    /// Default 1 (serial), so configs serialized before the knob existed
    /// deserialize and behave identically.
    pub repair_threads: usize,
    /// Admission control of the serving dispatch queue (see
    /// [`AdmissionPolicy`]). Ignored by in-process engines; the TCP
    /// transport enforces it at the connection threads. Default
    /// unbounded, so configs serialized before the knob existed
    /// deserialize and behave identically.
    pub admission: AdmissionPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0,
            escalation_fraction: 0.25,
            staleness_check_interval: 256,
            max_staleness: 0.05,
            batch_policy: BatchPolicy::Escalation,
            online_cost_calibration: false,
            durability: DurabilityPolicy::Off,
            repair_threads: 1,
            admission: AdmissionPolicy::Unbounded,
        }
    }
}

/// Hand-written so configs serialized before `batch_policy` existed keep
/// deserializing (the vendored serde derive has no `#[serde(default)]`):
/// a missing field falls back to [`BatchPolicy::default`].
impl serde::Deserialize for EngineConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = serde::expect_object(value, "EngineConfig")?;
        Ok(EngineConfig {
            seed: serde::Deserialize::from_value(serde::object_field(
                entries,
                "seed",
                "EngineConfig",
            )?)?,
            escalation_fraction: serde::Deserialize::from_value(serde::object_field(
                entries,
                "escalation_fraction",
                "EngineConfig",
            )?)?,
            staleness_check_interval: serde::Deserialize::from_value(serde::object_field(
                entries,
                "staleness_check_interval",
                "EngineConfig",
            )?)?,
            max_staleness: serde::Deserialize::from_value(serde::object_field(
                entries,
                "max_staleness",
                "EngineConfig",
            )?)?,
            batch_policy: match entries.iter().find(|(name, _)| name == "batch_policy") {
                Some((_, policy)) => serde::Deserialize::from_value(policy)?,
                None => BatchPolicy::default(),
            },
            online_cost_calibration: match entries
                .iter()
                .find(|(name, _)| name == "online_cost_calibration")
            {
                Some((_, flag)) => serde::Deserialize::from_value(flag)?,
                None => false,
            },
            durability: match entries.iter().find(|(name, _)| name == "durability") {
                Some((_, policy)) => serde::Deserialize::from_value(policy)?,
                None => DurabilityPolicy::default(),
            },
            repair_threads: match entries.iter().find(|(name, _)| name == "repair_threads") {
                Some((_, threads)) => serde::Deserialize::from_value(threads)?,
                None => 1,
            },
            admission: match entries.iter().find(|(name, _)| name == "admission") {
                Some((_, policy)) => serde::Deserialize::from_value(policy)?,
                None => AdmissionPolicy::default(),
            },
        })
    }
}

/// Counters describing the shard's activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Deltas applied successfully.
    pub deltas_applied: u64,
    /// Deltas rejected by validation.
    pub deltas_rejected: u64,
    /// Repairs handled by the greedy patch.
    pub greedy_patches: u64,
    /// Repairs escalated to a full warm-start re-solve.
    pub full_resolves: u64,
    /// Bursts repaired by a single cold solve under
    /// [`BatchPolicy::CostModel`].
    pub batch_solves: u64,
    /// Cold solves adopted by the staleness check.
    pub staleness_resolves: u64,
    /// Cold solves run by the staleness check (adopted or not).
    pub staleness_checks: u64,
    /// Quota updates absorbed from the cross-shard reconciler.
    pub quota_updates: u64,
    /// Utility drift `1 − served/cold` observed at the last staleness
    /// check (negative when the served arrangement was better).
    pub last_observed_drift: f64,
}

impl EngineStats {
    /// Element-wise sum of two counter sets; `last_observed_drift` takes
    /// the larger (worse) drift. Used to aggregate shard stats into one
    /// engine-level view.
    pub fn merged(&self, other: &EngineStats) -> EngineStats {
        EngineStats {
            deltas_applied: self.deltas_applied + other.deltas_applied,
            deltas_rejected: self.deltas_rejected + other.deltas_rejected,
            greedy_patches: self.greedy_patches + other.greedy_patches,
            full_resolves: self.full_resolves + other.full_resolves,
            batch_solves: self.batch_solves + other.batch_solves,
            staleness_resolves: self.staleness_resolves + other.staleness_resolves,
            staleness_checks: self.staleness_checks + other.staleness_checks,
            quota_updates: self.quota_updates + other.quota_updates,
            last_observed_drift: self.last_observed_drift.max(other.last_observed_drift),
        }
    }
}

/// How [`Shard::apply`] restored the arrangement after a delta.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepairKind {
    /// The delta left the arrangement feasible and no candidates improved
    /// it (nothing changed).
    Untouched,
    /// Local prune / evict / re-admit around the dirty set.
    GreedyPatch {
        /// Pairs removed while restoring feasibility.
        pruned: usize,
        /// Pairs added back by greedy re-admission.
        added: usize,
    },
    /// Full warm-start re-solve (dirty set exceeded the escalation
    /// threshold).
    FullResolve,
    /// One cold solve replaced the burst's incremental repair
    /// ([`BatchPolicy::CostModel`] predicted it cheaper).
    BatchSolve,
    /// A staleness check replaced the served arrangement with a fresh cold
    /// solve (possibly after one of the other repairs ran first).
    StalenessResolve,
}

impl RepairKind {
    /// Coarse severity ordering used when several shards repaired in one
    /// coordinator step and a single kind must summarise them.
    pub fn severity(&self) -> u8 {
        match self {
            RepairKind::Untouched => 0,
            RepairKind::GreedyPatch { .. } => 1,
            RepairKind::FullResolve => 2,
            RepairKind::BatchSolve => 3,
            RepairKind::StalenessResolve => 4,
        }
    }
}

/// One shard-local operation of a routed burst: either an ordinary
/// (mirror-validated, id-rewritten) delta or a catalogue-published event
/// announcement the shard absorbs in O(1) by adopting the snapshot's
/// shared conflict matrix. Ordering within a burst is preserved, so a
/// user delta referencing a just-announced event applies cleanly.
#[derive(Debug, Clone)]
pub enum ShardOp {
    /// A shard-local instance delta.
    Delta(InstanceDelta),
    /// An event announcement: adopt `snapshot`'s matrix and append its
    /// newest event with this shard's capacity quota.
    Announce {
        /// The catalogue snapshot published for the announcement.
        snapshot: Arc<CatalogSnapshot>,
        /// This shard's capacity quota for the new event.
        quota: usize,
    },
}

/// Result of one successful [`Shard::apply`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplyOutcome {
    /// What kind of delta was applied.
    pub kind: String,
    /// How the arrangement was repaired.
    pub repair: RepairKind,
    /// Utility of the served arrangement after repair.
    pub utility: f64,
    /// Number of (event, user) pairs served after repair.
    pub num_pairs: usize,
}

/// The checkpoint-restorable slice of a shard's state: everything
/// [`Shard::restore`] needs beyond the caller-supplied functions and
/// config. The utility tracker is deliberately absent — it is rebuilt
/// from the arrangement (bit-identical by the exact-sum property) and
/// verified against the checkpointed sums by the durability layer. The
/// online-calibration EWMAs are not carried either: they are wall-clock
/// observations, explicitly outside the determinism contract, and
/// restart empty like any fresh shard.
pub(crate) struct ShardResume {
    /// The shard's sub-instance, rebuilt from the checkpointed mirror
    /// and quota vector.
    pub instance: Instance,
    /// The served arrangement (shard-local user ids).
    pub arrangement: Arrangement,
    /// Repair-loop counters as of the checkpoint.
    pub stats: EngineStats,
    /// Solver-seed counter (`seed + solve_counter` is the next draw).
    pub solve_counter: u64,
    /// `stats.deltas_applied` watermark of the last staleness check.
    pub last_staleness_check: u64,
    /// Epoch of the last catalogue snapshot absorbed.
    pub catalog_epoch: u64,
}

/// One long-lived solve/repair unit over a (sub-)instance. See the module
/// docs; the public API mirrors the original monolithic engine.
pub struct Shard {
    instance: Instance,
    arrangement: Arrangement,
    /// Incrementally maintained Definition-7 sums of `arrangement`. Every
    /// mutation path — delta absorption, greedy patching, evictions,
    /// quota repairs — updates it in O(changed pairs), and wholesale
    /// arrangement replacements (cold/warm solves) rebuild it, so
    /// [`Shard::utility`] and [`Shard::utility_breakdown`] are O(1) reads
    /// that stay bit-for-bit equal to a from-scratch
    /// [`Arrangement::utility`] (periodically `debug_assert`ed).
    tracker: UtilityTracker,
    dirty: DirtySet,
    sigma: SharedConflict,
    interest: SharedInterest,
    solver: SharedSolver,
    config: EngineConfig,
    stats: EngineStats,
    solve_counter: u64,
    /// `stats.deltas_applied` at the last staleness check.
    last_staleness_check: u64,
    /// Epoch of the last catalogue snapshot absorbed (0 = none yet).
    catalog_epoch: u64,
    /// EWMA of measured greedy-patch cost per candidate unit (ns), fed by
    /// [`EngineConfig::online_cost_calibration`].
    ewma_patch_ns: Option<f64>,
    /// EWMA of measured cold-solve cost per bid unit (ns).
    ewma_solve_ns: Option<f64>,
    /// Net arrangement edits since the last [`Shard::take_view_diff`]:
    /// `Some` while every mutation since then was recorded pair by pair
    /// (so a consumer's stale copy can be patched in O(changed)), `None`
    /// after a wholesale replacement (full re-solve, batch solve,
    /// staleness adoption) forced a full resync — or when no consumer
    /// ever armed the recorder (the monolithic engine), which keeps the
    /// recording free off the serving path.
    view_ops: Option<ArrangementDiff>,
    /// Users admitted by the most recent greedy patch (`None` after a
    /// full re-solve, where the admitted set is unknown). Consumed by
    /// [`Shard::apply_quotas`] so the reconciler can restrict its next
    /// round to events those users bid on.
    last_repair_admitted: Option<Vec<UserId>>,
    /// Reusable scratch of the component-parallel repair path: interns
    /// interference-graph node keys to dense union-find ids. Epoch-reset
    /// per repair, so the split stays O(changed) per round.
    node_interner: DenseInterner,
    /// Reusable scratch of the component-parallel repair path: dense
    /// slot tables giving every [`ComponentState`] sandbox O(1) global
    /// id → local row lookups on the repair hot path.
    component_slots: ComponentSlots,
}

/// EWMA smoothing factor of the online cost estimates: heavy enough to
/// converge within a handful of repairs, light enough to ride out one
/// noisy measurement.
const COST_EWMA_ALPHA: f64 = 0.25;

impl Shard {
    /// Creates a shard serving `instance`, running an initial cold solve.
    ///
    /// `sigma` and `interest` are consulted only for *new* event pairs and
    /// bid pairs introduced by future deltas; existing cached values are
    /// kept as-is.
    pub fn new(
        instance: Instance,
        sigma: SharedConflict,
        interest: SharedInterest,
        solver: SharedSolver,
        config: EngineConfig,
    ) -> Self {
        let mut shard = Shard {
            arrangement: Arrangement::empty_for(&instance),
            instance,
            tracker: UtilityTracker::new(),
            dirty: DirtySet::new(),
            sigma,
            interest,
            solver,
            config,
            stats: EngineStats::default(),
            solve_counter: 0,
            last_staleness_check: 0,
            catalog_epoch: 0,
            ewma_patch_ns: None,
            ewma_solve_ns: None,
            view_ops: None,
            last_repair_admitted: None,
            node_interner: DenseInterner::default(),
            component_slots: ComponentSlots::default(),
        };
        shard.arrangement = shard.next_solve(None);
        shard.tracker = UtilityTracker::rebuild(&shard.instance, &shard.arrangement);
        shard
    }

    /// Reconstructs a shard from checkpointed state without running the
    /// initial cold solve of [`Shard::new`]: the arrangement, counters
    /// and solver-seed position come from `resume`, so the restored
    /// shard's future behaviour — seed draws, staleness cadence, repair
    /// decisions — is bit-identical to the shard that was checkpointed.
    /// The utility tracker is rebuilt from the arrangement, which the
    /// exact-sum property makes bit-identical to the tracker that was
    /// live at checkpoint time.
    pub(crate) fn restore(
        resume: ShardResume,
        sigma: SharedConflict,
        interest: SharedInterest,
        solver: SharedSolver,
        config: EngineConfig,
    ) -> Self {
        let tracker = UtilityTracker::rebuild(&resume.instance, &resume.arrangement);
        Shard {
            instance: resume.instance,
            arrangement: resume.arrangement,
            tracker,
            dirty: DirtySet::new(),
            sigma,
            interest,
            solver,
            config,
            stats: resume.stats,
            solve_counter: resume.solve_counter,
            last_staleness_check: resume.last_staleness_check,
            catalog_epoch: resume.catalog_epoch,
            ewma_patch_ns: None,
            ewma_solve_ns: None,
            view_ops: None,
            last_repair_admitted: None,
            node_interner: DenseInterner::default(),
            component_slots: ComponentSlots::default(),
        }
    }

    /// Hands out the net arrangement edits recorded since the previous
    /// call and re-arms the recorder at the current state.
    ///
    /// `None` means a wholesale arrangement replacement happened (or the
    /// recorder was never armed): the caller must resync with a full
    /// snapshot — which, combined with the re-arming here, makes the next
    /// call's diff valid against that snapshot. This is the hook the
    /// transport's per-shard workers use to ship O(changed) view diffs to
    /// the coordinator's query cache instead of O(pairs) snapshots; it is
    /// public so external read-view maintainers (and the benchmarks) can
    /// drive the same protocol.
    pub fn take_view_diff(&mut self) -> Option<ArrangementDiff> {
        let taken = self.view_ops.take();
        self.view_ops = Some(ArrangementDiff::new(
            self.instance.num_events(),
            self.instance.num_users(),
        ));
        taken
    }

    /// The incrementally maintained utility tracker. The transport's
    /// query cache snapshots it per apply so merged utility reads can be
    /// served exactly (tracker merges) without a barrier; the durability
    /// layer checkpoints its sums for restore-time bit verification.
    pub(crate) fn tracker(&self) -> &UtilityTracker {
        &self.tracker
    }

    /// Solver-seed counter (checkpointed so restored shards keep drawing
    /// the same seed sequence).
    pub(crate) fn solve_counter(&self) -> u64 {
        self.solve_counter
    }

    /// Watermark of the last staleness check (checkpointed so the
    /// restored shard's check cadence stays aligned).
    pub(crate) fn last_staleness_check(&self) -> u64 {
        self.last_staleness_check
    }

    /// Whether the shard has no pending repair work. Checkpoints are
    /// taken at barriers, where every apply has fully repaired, so this
    /// must hold whenever state is captured (the dirty set is therefore
    /// not part of the checkpoint schema).
    pub(crate) fn is_quiescent(&self) -> bool {
        self.dirty.is_empty()
    }

    /// The (sub-)instance currently served.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The arrangement currently served (always feasible for
    /// [`Shard::instance`]).
    pub fn arrangement(&self) -> &Arrangement {
        &self.arrangement
    }

    /// Utility of the served arrangement — an O(1) read of the
    /// incrementally maintained tracker (no pair iteration).
    pub fn utility(&self) -> f64 {
        self.utility_breakdown().total
    }

    /// Utility breakdown of the served arrangement — O(1), from the
    /// tracker; bit-identical to
    /// `self.arrangement().utility(self.instance())`.
    pub fn utility_breakdown(&self) -> UtilityBreakdown {
        self.tracker.breakdown(self.instance.beta())
    }

    /// Activity counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The shard's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current capacity quota of an event in this shard's sub-instance.
    pub fn quota_of(&self, event: EventId) -> usize {
        self.instance.event(event).capacity
    }

    /// Attendees this shard currently seats at `event`.
    pub fn load_of(&self, event: EventId) -> usize {
        self.arrangement.load_of(event)
    }

    /// Bidders of `event` who could be seated if the quota allowed:
    /// unassigned, with spare user capacity and no conflict against their
    /// current assignments. This is the per-event demand signal the
    /// cross-shard reconciler balances quota against.
    pub fn unmet_demand(&self, event: EventId) -> usize {
        let bidders = &self.instance.event(event).bidders;
        bidders
            .iter()
            .filter(|&&u| {
                !self.arrangement.contains(event, u)
                    && self.arrangement.events_of(u).len() < self.instance.user(u).capacity
                    && !self
                        .arrangement
                        .events_of(u)
                        .iter()
                        .any(|&w| self.instance.conflicts().conflicts(w, event))
            })
            .count()
    }

    /// Applies a batch of quota changes handed down by the reconciler,
    /// then runs one repair pass over the dirtied events. Unlike
    /// [`Shard::apply`] this does not count as external deltas — quota
    /// movement is internal bookkeeping of the sharded engine.
    ///
    /// Besides the repair kind, reports the users the repair admitted —
    /// `Some(users)` (possibly empty) after an incremental patch, `None`
    /// after a full re-solve where the admitted set is unknown. The
    /// reconciler uses this to rescan only the events whose demand could
    /// have changed.
    pub fn apply_quotas(
        &mut self,
        changes: &[(EventId, usize)],
    ) -> (RepairKind, Option<Vec<UserId>>) {
        for &(event, quota) in changes {
            self.instance
                .apply_delta(
                    &InstanceDelta::UpdateCapacity {
                        target: CapacityTarget::Event(event),
                        capacity: quota,
                    },
                    self.sigma.as_ref(),
                    self.interest.as_ref(),
                )
                // lint:allow(no-panic-in-server-paths): quota changes come from the coordinator's reconciler, which only names catalogued events; a failure means the shard's event set diverged from the catalogue — unrecoverable state, no request to refuse
                .expect("reconciler only names events that exist");
            self.dirty.mark_event(event);
            self.stats.quota_updates += 1;
        }
        let repair = self.repair();
        self.debug_check_tracker();
        let admitted = self.last_repair_admitted.take();
        (repair, admitted)
    }

    /// Applies one delta and repairs the served arrangement.
    ///
    /// On validation errors the instance, arrangement and counters (except
    /// `deltas_rejected`) are unchanged.
    pub fn apply(&mut self, delta: &InstanceDelta) -> Result<ApplyOutcome, CoreError> {
        self.apply_measured(delta).map(|(outcome, _)| outcome)
    }

    /// Like [`Shard::apply`], but also returns the utility breakdown of
    /// the post-repair arrangement — an O(1) tracker read (`total` is
    /// bit-identical to [`Shard::utility`]). The transport's per-shard
    /// workers use this to refresh the coordinator's query cache; no pair
    /// iteration happens anywhere on this path.
    pub fn apply_measured(
        &mut self,
        delta: &InstanceDelta,
    ) -> Result<(ApplyOutcome, UtilityBreakdown), CoreError> {
        self.absorb_delta(delta)?;
        let mut repair = self.repair();
        if self.maybe_check_staleness() {
            repair = RepairKind::StalenessResolve;
        }
        self.debug_check_tracker();

        let breakdown = self.utility_breakdown();
        Ok((
            ApplyOutcome {
                kind: delta.kind().to_string(),
                repair,
                utility: breakdown.total,
                num_pairs: self.arrangement.len(),
            },
            breakdown,
        ))
    }

    /// Absorbs a catalogue-published event announcement and repairs: the
    /// shard-side half of an event broadcast. Instead of re-evaluating σ
    /// against every existing event (the pre-catalogue cost, paid once
    /// per shard), the shard adopts the snapshot's shared conflict matrix
    /// and appends its newest event with this shard's capacity `quota` —
    /// amortised O(1) work before the repair. Bookkeeping matches
    /// [`Shard::apply`] of an `AddEvent` delta exactly, so a one-shard
    /// engine stays bit-for-bit equal to the monolithic path.
    pub fn apply_announcement(
        &mut self,
        snapshot: &Arc<CatalogSnapshot>,
        quota: usize,
    ) -> ApplyOutcome {
        self.absorb_announcement(snapshot, quota);
        let mut repair = self.repair();
        if self.maybe_check_staleness() {
            repair = RepairKind::StalenessResolve;
        }
        self.debug_check_tracker();
        ApplyOutcome {
            kind: "add_event".to_string(),
            repair,
            utility: self.utility(),
            num_pairs: self.arrangement.len(),
        }
    }

    /// Applies a batch of deltas with a single repair pass at the end —
    /// cheaper than per-delta repair when deltas arrive in bursts. Returns
    /// one outcome describing the batch. Fails on the first invalid delta;
    /// previously applied deltas of the batch stay applied and the
    /// arrangement is repaired before returning the error.
    pub fn apply_batch(&mut self, deltas: &[InstanceDelta]) -> Result<ApplyOutcome, CoreError> {
        let mut first_error = None;
        for delta in deltas {
            if let Err(e) = self.absorb_delta(delta) {
                first_error = Some(e);
                break;
            }
        }
        self.finish_burst(first_error)
    }

    /// Applies a routed burst of shard operations (deltas interleaved
    /// with catalogue announcements, in arrival order) with one repair
    /// pass at the end. Error semantics match [`Shard::apply_batch`].
    pub fn apply_ops(&mut self, ops: &[ShardOp]) -> Result<ApplyOutcome, CoreError> {
        let mut first_error = None;
        for op in ops {
            match op {
                ShardOp::Delta(delta) => {
                    if let Err(e) = self.absorb_delta(delta) {
                        first_error = Some(e);
                        break;
                    }
                }
                ShardOp::Announce { snapshot, quota } => {
                    self.absorb_announcement(snapshot, *quota);
                }
            }
        }
        self.finish_burst(first_error)
    }

    /// Applies one delta to the instance and folds its effect into the
    /// dirty set and the utility tracker, without repairing.
    fn absorb_delta(&mut self, delta: &InstanceDelta) -> Result<(), CoreError> {
        match self
            .instance
            .apply_delta(delta, self.sigma.as_ref(), self.interest.as_ref())
        {
            Ok(effect) => {
                self.arrangement
                    .grow(self.instance.num_events(), self.instance.num_users());
                if let Some(diff) = self.view_ops.as_mut() {
                    diff.grow(self.instance.num_events(), self.instance.num_users());
                }
                self.absorb_score_changes(&effect);
                self.dirty.absorb(&effect);
                self.stats.deltas_applied += 1;
                Ok(())
            }
            Err(e) => {
                self.stats.deltas_rejected += 1;
                Err(e)
            }
        }
    }

    /// Folds instance-side score changes into the utility tracker for the
    /// pairs the served arrangement currently holds. This keeps the
    /// tracker exact *between* absorption and repair, so the invariant
    /// "subtraction sees the value addition saw" holds on every
    /// subsequent unassign.
    fn absorb_score_changes(&mut self, effect: &DeltaEffect) {
        if let Some((user, old, new)) = effect.interaction_change {
            let assigned = self.arrangement.events_of(user).len();
            if assigned > 0 && old.to_bits() != new.to_bits() {
                self.tracker.on_interaction_change(old, new, assigned);
            }
        }
        for &(event, user, old, new) in &effect.interest_changes {
            if self.arrangement.contains(event, user) {
                self.tracker.on_interest_change(old, new);
            }
        }
    }

    /// Debug-build checkpoint: the incrementally maintained tracker must
    /// equal a from-scratch exact recompute, bit for bit. Compiled out of
    /// release builds.
    #[inline]
    fn debug_check_tracker(&self) {
        #[cfg(debug_assertions)]
        {
            let tracked = self.utility_breakdown();
            let fresh = self.arrangement.utility(&self.instance);
            debug_assert_eq!(
                tracked.interest_sum.to_bits(),
                fresh.interest_sum.to_bits(),
                "tracker interest_sum drifted: {} vs {}",
                tracked.interest_sum,
                fresh.interest_sum
            );
            debug_assert_eq!(
                tracked.interaction_sum.to_bits(),
                fresh.interaction_sum.to_bits(),
                "tracker interaction_sum drifted: {} vs {}",
                tracked.interaction_sum,
                fresh.interaction_sum
            );
        }
    }

    /// Adopts a catalogue snapshot's shared matrix and appends its newest
    /// event at `quota` capacity, without repairing.
    fn absorb_announcement(&mut self, snapshot: &Arc<CatalogSnapshot>, quota: usize) {
        let newest = snapshot
            .newest()
            // lint:allow(no-panic-in-server-paths): absorb_announcement only runs for a snapshot the catalogue just published, which by construction contains the announced event
            .expect("published snapshots are non-empty");
        let effect = self
            .instance
            .apply_add_event_shared(quota, newest.attrs.clone(), snapshot.conflicts_handle())
            // lint:allow(no-panic-in-server-paths): the snapshot's shared matrix covers its own newest event; a failure means shard/catalogue desync, which no per-request refusal can repair
            .expect("catalogue snapshots cover the announced event");
        self.arrangement
            .grow(self.instance.num_events(), self.instance.num_users());
        if let Some(diff) = self.view_ops.as_mut() {
            diff.grow(self.instance.num_events(), self.instance.num_users());
        }
        self.dirty.absorb(&effect);
        self.stats.deltas_applied += 1;
        self.catalog_epoch = snapshot.epoch();
    }

    /// Shared tail of the burst paths: one batch repair, the staleness
    /// check, and the first error (if any).
    fn finish_burst(&mut self, first_error: Option<CoreError>) -> Result<ApplyOutcome, CoreError> {
        let mut repair = self.repair_batch();
        if self.maybe_check_staleness() {
            repair = RepairKind::StalenessResolve;
        }
        self.debug_check_tracker();
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(ApplyOutcome {
            kind: "batch".to_string(),
            repair,
            utility: self.utility(),
            num_pairs: self.arrangement.len(),
        })
    }

    /// Epoch of the last catalogue snapshot this shard absorbed (0 when
    /// no announcement has been published yet).
    pub fn catalog_epoch(&self) -> u64 {
        self.catalog_epoch
    }

    /// The online cost estimates `(patch ns/candidate, solve ns/bid)`
    /// observed so far (`None` until the first measured repair of that
    /// kind; always `None` with calibration off).
    pub fn online_cost_estimates(&self) -> (Option<f64>, Option<f64>) {
        (self.ewma_patch_ns, self.ewma_solve_ns)
    }

    /// Forces a cold solve of the current instance and reports the served
    /// utility relative to it (`served / cold`, 1.0 when the cold solve is
    /// empty). Does not modify the served arrangement.
    pub fn cold_solve_ratio(&mut self) -> f64 {
        let cold = self.next_solve(None);
        let cold_utility = cold.utility_value(&self.instance);
        if cold_utility <= 0.0 {
            return 1.0;
        }
        self.utility() / cold_utility
    }

    /// Runs the solver; with `Some(previous)` it warm-starts from it.
    fn next_solve(&mut self, previous: Option<&Arrangement>) -> Arrangement {
        let seed = self.config.seed.wrapping_add(self.solve_counter);
        self.solve_counter += 1;
        match previous {
            Some(prev) => self.solver.resolve_seeded(&self.instance, prev, seed),
            None => self.solver.run_seeded(&self.instance, seed),
        }
    }

    /// Repair path of a batched burst: consult the batch policy first,
    /// then fall through to the incremental repair.
    fn repair_batch(&mut self) -> RepairKind {
        if self.dirty.is_empty() {
            return RepairKind::Untouched;
        }
        if let BatchPolicy::CostModel {
            patch_cost_per_candidate,
            solve_cost_per_bid,
        } = self.config.batch_policy
        {
            // Per-unit costs: the configured (bench-calibrated) constants,
            // or this shard's own observed EWMA once online calibration
            // has measured at least one repair of each kind.
            let (patch_unit, solve_unit) = if self.config.online_cost_calibration {
                (
                    self.ewma_patch_ns.unwrap_or(patch_cost_per_candidate),
                    self.ewma_solve_ns.unwrap_or(solve_cost_per_bid),
                )
            } else {
                (patch_cost_per_candidate, solve_cost_per_bid)
            };
            // Cold-solve work: one greedy pass over every bid pair (plus
            // fixed per-event bookkeeping).
            let solve_units = (self.instance.num_bids() + self.instance.num_events()) as f64;
            let solve_cost = solve_unit * solve_units;
            let threshold =
                (self.config.escalation_fraction * self.instance.num_users() as f64).max(1.0);
            let incremental_cost = if self.dirty.users.len() as f64 > threshold {
                // The incremental path would escalate to a warm-start
                // re-solve: carry over the previous pairs, then run the
                // full greedy pass anyway — roughly two cold solves.
                2.0 * solve_cost
            } else {
                // Greedy-patch work: candidate pairs around the dirty set
                // plus the full-user attendee scan per dirty event.
                patch_unit * self.patch_units() as f64
            };
            if incremental_cost > solve_cost {
                let started = self
                    .config
                    .online_cost_calibration
                    .then(std::time::Instant::now);
                self.arrangement = self.next_solve(None);
                self.tracker = UtilityTracker::rebuild(&self.instance, &self.arrangement);
                self.view_ops = None;
                self.last_repair_admitted = None;
                if let Some(started) = started {
                    observe_cost(&mut self.ewma_solve_ns, started.elapsed(), solve_units);
                }
                self.dirty.clear();
                self.stats.batch_solves += 1;
                return RepairKind::BatchSolve;
            }
        }
        self.repair()
    }

    /// The cost model's unit count for a greedy patch over the current
    /// dirty set: the candidate pairs around the dirty set. Shared by the
    /// predictor and the online calibration so observed timings normalise
    /// against the same basis the decision multiplies.
    ///
    /// Historically this carried an extra `dirty.events × |U|` term for
    /// the per-dirty-event attendee scan; the arrangement's reverse
    /// attendee index made that listing an O(load) slice borrow (bounded
    /// by the event's bidder count, already counted below), so the term —
    /// and its distortion of the patch-vs-solve decision on large user
    /// populations — is gone. The per-unit constants in
    /// [`BatchPolicy::cost_model`] are calibrated against this basis.
    fn patch_units(&self) -> usize {
        let mut candidates = 0usize;
        for &u in &self.dirty.users {
            candidates += self.instance.user(u).num_bids();
        }
        for &v in &self.dirty.events {
            candidates += self.instance.event(v).num_bidders();
        }
        candidates
    }

    fn repair(&mut self) -> RepairKind {
        if self.dirty.is_empty() {
            self.last_repair_admitted = Some(Vec::new());
            return RepairKind::Untouched;
        }
        let threshold =
            (self.config.escalation_fraction * self.instance.num_users() as f64).max(1.0);
        let repair = if self.dirty.users.len() as f64 > threshold {
            let previous = std::mem::replace(
                &mut self.arrangement,
                Arrangement::empty_for(&self.instance),
            );
            self.arrangement = self.next_solve(Some(&previous));
            self.tracker = UtilityTracker::rebuild(&self.instance, &self.arrangement);
            self.stats.full_resolves += 1;
            self.view_ops = None;
            self.last_repair_admitted = None;
            RepairKind::FullResolve
        } else if self.config.online_cost_calibration {
            let units = self.patch_units();
            let started = std::time::Instant::now();
            let repair = self.greedy_patch();
            observe_cost(&mut self.ewma_patch_ns, started.elapsed(), units as f64);
            repair
        } else {
            self.greedy_patch()
        };
        self.dirty.clear();
        repair
    }

    /// Local repair: prune dirty users' assignments, evict overflow at
    /// dirty events, then greedily re-admit the heaviest feasible
    /// candidate pairs around the dirty set — the shared
    /// [`patch_region`] kernel, run serially on the arrangement or
    /// split into independent components repaired concurrently (see
    /// [`Shard::patch_components`]). The recorded ops then drive the
    /// utility tracker and the view-diff recorder; exact summation makes
    /// the post-hoc tracker replay bit-identical to inline tracking, so
    /// scoring stays O(changed pairs) and no post-repair re-scan is ever
    /// needed.
    fn greedy_patch(&mut self) -> RepairKind {
        let dirty_users: Vec<UserId> = self.dirty.users.iter().copied().collect();
        let dirty_events: Vec<EventId> = self.dirty.events.iter().copied().collect();
        let ops = if self.config.repair_threads > 1 {
            self.patch_components(&dirty_users, &dirty_events)
        } else {
            patch_region(
                &self.instance,
                &mut self.arrangement,
                &dirty_users,
                &dirty_events,
            )
        };

        for &(v, u) in &ops.removed {
            self.tracker.on_unassign(&self.instance, v, u);
        }
        for &(v, u) in &ops.added {
            self.tracker.on_assign(&self.instance, v, u);
        }
        if let Some(diff) = self.view_ops.as_mut() {
            for &(v, u) in &ops.removed {
                diff.record_unassign(v, u);
            }
            for &(v, u) in &ops.added {
                diff.record_assign(v, u);
            }
        }
        let mut admitted: Vec<UserId> = ops.added.iter().map(|&(_, u)| u).collect();
        admitted.sort_unstable();
        admitted.dedup();
        self.last_repair_admitted = Some(admitted);

        if ops.is_empty() {
            RepairKind::Untouched
        } else {
            self.stats.greedy_patches += 1;
            RepairKind::GreedyPatch {
                pruned: ops.removed.len(),
                added: ops.added.len(),
            }
        }
    }

    /// Splits the dirty set into independent connected components of the
    /// repair-interference graph and repairs them concurrently, each in
    /// an extracted [`ComponentState`] sandbox, replaying the merged ops
    /// onto the real arrangement.
    ///
    /// Two entities interfere when one repair step can touch both: a
    /// dirty user with their bids and current events, a dirty event with
    /// its bidders and attendees, and each attendee of a dirty event
    /// with their own bids (eviction may re-seat them anywhere they
    /// bid). Components of this graph read and write disjoint rows, so
    /// per-component repair reproduces the serial pass exactly — the
    /// serial candidate ordering restricted to a component preserves
    /// relative order, and cross-component candidates share no
    /// feasibility state. Components are merged in ascending order of
    /// their smallest member, keeping the recorded op list deterministic.
    fn patch_components(&mut self, dirty_users: &[UserId], dirty_events: &[EventId]) -> PatchOps {
        // Node keys: users as 2k, events as 2k + 1. Keys are interned to
        // dense union-find ids as the graph is traversed, so the split
        // never pays a per-edge key lookup.
        fn user_key(u: UserId) -> usize {
            u.index() << 1
        }
        fn event_key(v: EventId) -> usize {
            (v.index() << 1) | 1
        }
        fn intern(interner: &mut DenseInterner, keys: &mut Vec<usize>, key: usize) -> u32 {
            let before = interner.len();
            let id = interner.intern(key);
            if interner.len() != before {
                keys.push(key);
            }
            id
        }

        let instance = &self.instance;
        let arrangement = &self.arrangement;
        let interner = &mut self.node_interner;
        interner.begin(2 * instance.num_users().max(instance.num_events()));
        // Original key per dense id, in discovery order.
        let mut keys: Vec<usize> = Vec::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for &u in dirty_users {
            let a = intern(interner, &mut keys, user_key(u));
            for &v in &instance.user(u).bids {
                edges.push((a, intern(interner, &mut keys, event_key(v))));
            }
            for &v in arrangement.events_of(u) {
                edges.push((a, intern(interner, &mut keys, event_key(v))));
            }
        }
        for &v in dirty_events {
            let a = intern(interner, &mut keys, event_key(v));
            for &u in &instance.event(v).bidders {
                edges.push((a, intern(interner, &mut keys, user_key(u))));
            }
            for &u in arrangement.users_of(v) {
                let b = intern(interner, &mut keys, user_key(u));
                edges.push((a, b));
                for &w in &instance.user(u).bids {
                    edges.push((b, intern(interner, &mut keys, event_key(w))));
                }
            }
        }
        let mut sets = DenseDisjointSets::new(keys.len());
        for &(a, b) in &edges {
            sets.union(a, b);
        }
        let dense_components = sets.components();
        if dense_components.len() < 2 {
            return patch_region(
                &self.instance,
                &mut self.arrangement,
                dirty_users,
                dirty_events,
            );
        }

        // Map dense ids back to keys and restore the deterministic
        // ordering contract: members ascending, components by smallest
        // member.
        let mut components: Vec<Vec<usize>> = dense_components
            .into_iter()
            .map(|c| {
                let mut members: Vec<usize> = c.into_iter().map(|i| keys[i as usize]).collect();
                members.sort_unstable();
                members
            })
            .collect();
        components.sort_unstable_by_key(|c| c[0]);

        let dirty_user_set: BTreeSet<UserId> = dirty_users.iter().copied().collect();
        let dirty_event_set: BTreeSet<EventId> = dirty_events.iter().copied().collect();
        let slots = &mut self.component_slots;
        slots.begin(instance.num_events(), instance.num_users());
        // (users, events, dirty users, dirty events) per component; row
        // extraction happens inside the parallel jobs, which only borrow
        // the arrangement and the slot tables.
        let mut regions: Vec<(Vec<UserId>, Vec<EventId>, Vec<UserId>, Vec<EventId>)> =
            Vec::with_capacity(components.len());
        for component in &components {
            let mut users: Vec<UserId> = Vec::new();
            let mut events: Vec<EventId> = Vec::new();
            for &key in component {
                if key & 1 == 0 {
                    users.push(UserId::new(key >> 1));
                } else {
                    events.push(EventId::new(key >> 1));
                }
            }
            let component_users: Vec<UserId> = users
                .iter()
                .copied()
                .filter(|u| dirty_user_set.contains(u))
                .collect();
            let component_events: Vec<EventId> = events
                .iter()
                .copied()
                .filter(|v| dirty_event_set.contains(v))
                .collect();
            if component_users.is_empty() && component_events.is_empty() {
                continue;
            }
            for &u in &users {
                slots.push_user(u);
            }
            for &v in &events {
                slots.push_event(v);
            }
            regions.push((users, events, component_users, component_events));
        }
        let slots = &self.component_slots;
        let jobs: Vec<_> = regions
            .into_iter()
            .map(|(users, events, component_users, component_events)| {
                move || {
                    let mut state = ComponentState::extract(
                        arrangement,
                        slots,
                        &users,
                        &events,
                        &component_events,
                    );
                    patch_region(instance, &mut state, &component_users, &component_events)
                }
            })
            .collect();
        let mut ops = PatchOps::default();
        for component_ops in scoped_pool::run_scoped(self.config.repair_threads, jobs) {
            ops.extend(component_ops);
        }
        for &(v, u) in &ops.removed {
            let was_present = self.arrangement.unassign(v, u);
            debug_assert!(was_present, "component removed a pair the shard lacks");
        }
        for &(v, u) in &ops.added {
            let was_absent = self.arrangement.assign(v, u);
            debug_assert!(was_absent, "component added a pair the shard already holds");
        }
        ops
    }

    /// Runs the staleness check when at least
    /// `staleness_check_interval` deltas accumulated since the last one.
    /// Tracking the last-check watermark (rather than exact interval
    /// multiples) means batches that jump over a multiple still trigger
    /// the check, so the configured drift bound holds on every apply
    /// path.
    fn maybe_check_staleness(&mut self) -> bool {
        let interval = self.config.staleness_check_interval;
        if interval == 0 || self.stats.deltas_applied - self.last_staleness_check < interval {
            return false;
        }
        self.last_staleness_check = self.stats.deltas_applied;
        self.check_staleness()
    }

    /// Cold-solves the current instance and adopts the result when the
    /// served utility drifted too far. Returns whether it was adopted.
    /// Under online calibration the cold solve doubles as a solve-cost
    /// observation, so the EWMA converges even on patch-only workloads.
    fn check_staleness(&mut self) -> bool {
        let started = self
            .config
            .online_cost_calibration
            .then(std::time::Instant::now);
        let cold = self.next_solve(None);
        if let Some(started) = started {
            let units = (self.instance.num_bids() + self.instance.num_events()) as f64;
            observe_cost(&mut self.ewma_solve_ns, started.elapsed(), units);
        }
        self.stats.staleness_checks += 1;
        let cold_utility = cold.utility_value(&self.instance);
        let served_utility = self.utility();
        self.stats.last_observed_drift = if cold_utility > 0.0 {
            1.0 - served_utility / cold_utility
        } else {
            0.0
        };
        if served_utility < (1.0 - self.config.max_staleness) * cold_utility {
            self.arrangement = cold;
            self.tracker = UtilityTracker::rebuild(&self.instance, &self.arrangement);
            self.view_ops = None;
            self.stats.staleness_resolves += 1;
            true
        } else {
            false
        }
    }
}

/// Folds one normalised timing observation into an EWMA slot.
fn observe_cost(slot: &mut Option<f64>, elapsed: std::time::Duration, units: f64) {
    if units <= 0.0 {
        return;
    }
    let observed = elapsed.as_nanos() as f64 / units;
    *slot = Some(match *slot {
        Some(previous) => COST_EWMA_ALPHA * observed + (1.0 - COST_EWMA_ALPHA) * previous,
        None => observed,
    });
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("num_events", &self.instance.num_events())
            .field("num_users", &self.instance.num_users())
            .field("num_pairs", &self.arrangement.len())
            .field("dirty", &self.dirty.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_algos::GreedyArrangement;
    use igepa_core::{AttributeVector, ConstantInterest, NeverConflict};

    fn shard_for(num_events: usize, num_users: usize, config: EngineConfig) -> Shard {
        let mut b = Instance::builder();
        let events: Vec<EventId> = (0..num_events)
            .map(|_| b.add_event(2, AttributeVector::empty()))
            .collect();
        for _ in 0..num_users {
            b.add_user(2, AttributeVector::empty(), events.clone());
        }
        b.interaction_scores(vec![0.5; num_users]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        Shard::new(
            instance,
            Arc::new(NeverConflict),
            Arc::new(ConstantInterest(0.5)),
            Arc::new(GreedyArrangement),
            config,
        )
    }

    #[test]
    fn quota_and_demand_reflect_the_sub_instance() {
        let mut shard = shard_for(1, 3, EngineConfig::default());
        // Event capacity 2, three bidders with capacity 2 each: two seated.
        assert_eq!(shard.quota_of(EventId::new(0)), 2);
        assert_eq!(shard.load_of(EventId::new(0)), 2);
        assert_eq!(shard.unmet_demand(EventId::new(0)), 1);
        // Raising the quota seats the remaining bidder.
        let (repair, admitted) = shard.apply_quotas(&[(EventId::new(0), 3)]);
        assert!(matches!(repair, RepairKind::GreedyPatch { added: 1, .. }));
        assert_eq!(admitted.as_deref().map(<[UserId]>::len), Some(1));
        assert_eq!(shard.load_of(EventId::new(0)), 3);
        assert_eq!(shard.unmet_demand(EventId::new(0)), 0);
        assert_eq!(shard.stats().quota_updates, 1);
        // Quota updates do not count as external deltas.
        assert_eq!(shard.stats().deltas_applied, 0);
        assert!(shard.arrangement().is_feasible(shard.instance()));
    }

    #[test]
    fn shrinking_quota_evicts_overflow() {
        let mut shard = shard_for(1, 2, EngineConfig::default());
        assert_eq!(shard.load_of(EventId::new(0)), 2);
        shard.apply_quotas(&[(EventId::new(0), 1)]);
        assert_eq!(shard.load_of(EventId::new(0)), 1);
        assert!(shard.arrangement().is_feasible(shard.instance()));
    }

    #[test]
    fn cost_model_runs_one_cold_solve_on_large_bursts() {
        let mut shard = shard_for(
            3,
            8,
            EngineConfig {
                batch_policy: BatchPolicy::cost_model(),
                ..EngineConfig::default()
            },
        );
        // Touch every user: the patch would scan far more than a solve.
        let deltas: Vec<InstanceDelta> = (0..8)
            .map(|u| InstanceDelta::UpdateInteractionScore {
                user: UserId::new(u),
                score: 0.9,
            })
            .collect();
        let outcome = shard.apply_batch(&deltas).unwrap();
        assert_eq!(outcome.repair, RepairKind::BatchSolve);
        assert_eq!(shard.stats().batch_solves, 1);
        assert_eq!(shard.stats().full_resolves, 0);
        assert!(shard.arrangement().is_feasible(shard.instance()));
    }

    #[test]
    fn cost_model_keeps_patching_small_bursts() {
        let mut a = shard_for(
            2,
            40,
            EngineConfig {
                batch_policy: BatchPolicy::cost_model(),
                ..EngineConfig::default()
            },
        );
        let mut b = shard_for(2, 40, EngineConfig::default());
        let delta = InstanceDelta::UpdateInteractionScore {
            user: UserId::new(0),
            score: 0.9,
        };
        let oa = a.apply_batch(std::slice::from_ref(&delta)).unwrap();
        let ob = b.apply_batch(std::slice::from_ref(&delta)).unwrap();
        // A one-delta burst dirtying one user is cheap to patch; the cost
        // model must agree with the escalation policy here.
        assert_eq!(oa.repair, ob.repair);
        assert_eq!(oa.utility.to_bits(), ob.utility.to_bits());
        assert_eq!(a.stats().batch_solves, 0);
    }

    #[test]
    fn pre_batch_policy_configs_still_deserialize() {
        // A config serialized before `batch_policy` existed: the missing
        // field defaults instead of failing.
        let legacy = "{\"seed\":7,\"escalation_fraction\":0.25,\
                      \"staleness_check_interval\":256,\"max_staleness\":0.05}";
        let config: EngineConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(config.seed, 7);
        assert_eq!(config.batch_policy, BatchPolicy::Escalation);
        assert!(!config.online_cost_calibration);
        assert_eq!(config.durability, DurabilityPolicy::Off);
        // Configs from before the repair-threads knob behave serially.
        assert_eq!(config.repair_threads, 1);
        // Configs from before admission control behave unbounded.
        assert_eq!(config.admission, AdmissionPolicy::Unbounded);
        // And the current format round-trips.
        let current = EngineConfig {
            batch_policy: BatchPolicy::cost_model(),
            durability: DurabilityPolicy::EveryN { n: 16 },
            repair_threads: 4,
            admission: AdmissionPolicy::bounded(128),
            ..EngineConfig::default()
        };
        let json = serde_json::to_string(&current).unwrap();
        let back: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, current);
    }

    #[test]
    fn legacy_config_without_admission_is_bit_identical_to_default() {
        // Regression pin for the admission rollout: a config serialized
        // by a pre-admission build (every field up to `repair_threads`,
        // no `admission` key) must decode to a config whose behaviour —
        // and whose re-serialization — is bit-identical to constructing
        // the same config today with the default (unbounded) admission.
        let pre_admission = "{\"seed\":3,\"escalation_fraction\":0.25,\
                             \"staleness_check_interval\":256,\"max_staleness\":0.05,\
                             \"batch_policy\":\"Escalation\",\
                             \"online_cost_calibration\":false,\
                             \"durability\":\"Off\",\"repair_threads\":2}";
        let decoded: EngineConfig = serde_json::from_str(pre_admission).unwrap();
        let expected = EngineConfig {
            seed: 3,
            repair_threads: 2,
            ..EngineConfig::default()
        };
        assert_eq!(decoded, expected);
        assert_eq!(decoded.admission, AdmissionPolicy::Unbounded);
        assert_eq!(
            serde_json::to_string(&decoded).unwrap(),
            serde_json::to_string(&expected).unwrap()
        );
    }

    #[test]
    fn online_calibration_converges_on_observed_costs() {
        let mut shard = shard_for(
            3,
            8,
            EngineConfig {
                batch_policy: BatchPolicy::cost_model(),
                online_cost_calibration: true,
                staleness_check_interval: 0,
                ..EngineConfig::default()
            },
        );
        assert_eq!(shard.online_cost_estimates(), (None, None));
        // A one-user touch runs the greedy patch → a patch observation.
        shard
            .apply(&InstanceDelta::UpdateInteractionScore {
                user: UserId::new(0),
                score: 0.9,
            })
            .unwrap();
        let (patch, _) = shard.online_cost_estimates();
        assert!(patch.is_some_and(|ns| ns > 0.0));
        // A burst touching every user runs one cold batch solve → a
        // solve observation feeding the next decision's per-unit cost.
        let deltas: Vec<InstanceDelta> = (0..8)
            .map(|u| InstanceDelta::UpdateInteractionScore {
                user: UserId::new(u),
                score: 0.8,
            })
            .collect();
        let outcome = shard.apply_batch(&deltas).unwrap();
        assert_eq!(outcome.repair, RepairKind::BatchSolve);
        let (_, solve) = shard.online_cost_estimates();
        assert!(solve.is_some_and(|ns| ns > 0.0));
        assert!(shard.arrangement().is_feasible(shard.instance()));
    }

    #[test]
    fn calibration_off_records_nothing() {
        let mut shard = shard_for(
            2,
            4,
            EngineConfig {
                batch_policy: BatchPolicy::cost_model(),
                ..EngineConfig::default()
            },
        );
        shard
            .apply(&InstanceDelta::UpdateInteractionScore {
                user: UserId::new(0),
                score: 0.9,
            })
            .unwrap();
        assert_eq!(shard.online_cost_estimates(), (None, None));
    }

    #[test]
    fn batch_policy_severity_ordering_is_total() {
        let kinds = [
            RepairKind::Untouched,
            RepairKind::GreedyPatch {
                pruned: 0,
                added: 1,
            },
            RepairKind::FullResolve,
            RepairKind::BatchSolve,
            RepairKind::StalenessResolve,
        ];
        for w in kinds.windows(2) {
            assert!(w[0].severity() < w[1].severity());
        }
    }

    #[test]
    fn merged_stats_sum_counters_and_keep_worst_drift() {
        let a = EngineStats {
            deltas_applied: 3,
            greedy_patches: 2,
            last_observed_drift: 0.01,
            ..EngineStats::default()
        };
        let b = EngineStats {
            deltas_applied: 4,
            full_resolves: 1,
            last_observed_drift: 0.04,
            ..EngineStats::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.deltas_applied, 7);
        assert_eq!(m.greedy_patches, 2);
        assert_eq!(m.full_resolves, 1);
        assert_eq!(m.last_observed_drift, 0.04);
    }
}
