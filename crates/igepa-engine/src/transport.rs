//! TCP transport: framed envelope JSONL, a blocking client, and servers.
//!
//! The protocol was designed as data ([`crate::protocol`]); this module
//! puts it on a wire. Three pieces:
//!
//! * **Framing** — [`Framing::Lines`] sends one JSON document per
//!   `\n`-terminated line (telnet-debuggable, the JSONL logs verbatim);
//!   [`Framing::LengthPrefixed`] sends a `u32` big-endian byte length
//!   followed by the JSON payload (binary-safe, no scan for delimiters).
//!   Both carry exactly the envelope codecs of [`crate::protocol`].
//! * **[`EngineClient`]** — a blocking request/response client: every
//!   call sends one [`RequestEnvelope`] at [`PROTOCOL_VERSION`] and waits
//!   for the matching [`ResponseEnvelope`].
//! * **[`EngineServer`]** — [`EngineServer::serve`] runs any
//!   [`EngineBackend`] behind a single dispatch thread;
//!   [`EngineServer::serve_sharded`] additionally detaches a
//!   [`ShardedEngine`]'s shards into **per-shard worker threads**. Shards
//!   are independent between reconcile passes, so user-scoped `Apply`
//!   requests are validated on the coordinator and executed concurrently
//!   on the owning shard's worker, while event broadcasts, batches,
//!   queries and `Rebalance` run a barrier (drain in-flight applies,
//!   collect the shards, execute on the attached engine, redistribute).
//!
//! A client driving requests synchronously observes exactly the serial
//! [`EngineService`](crate::EngineService) responses — the worker pool
//! changes *where* repairs run, never what they produce. Concurrent
//! clients interleave at request granularity in coordinator arrival
//! order; the merged arrangement stays feasible because every delta still
//! passes the coordinator's mirror validation and quota accounting.

use crate::coordinator::ShardedEngine;
use crate::error::EngineError;
use crate::protocol::{
    decode_request_envelope, decode_response_envelope, encode_request_envelope,
    encode_response_envelope, EngineQuery, EngineRequest, EngineResponse, ProtocolError,
    RequestEnvelope, ResponseEnvelope, LEGACY_VERSION, PROTOCOL_VERSION,
};
use crate::service::{applied_response, dispatch_envelope, EngineBackend, EngineService};
use crate::shard::{ApplyOutcome, Shard};
use igepa_core::{CapacityTarget, InstanceDelta};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// How JSON documents are delimited on the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Framing {
    /// One document per `\n`-terminated line (blank lines are skipped).
    #[default]
    Lines,
    /// `u32` big-endian payload length, then the payload bytes.
    LengthPrefixed,
}

/// Upper bound on a length-prefixed frame. The length word is
/// attacker-controlled bytes off a socket; allocating whatever it says
/// (up to 4 GiB) before reading the payload would let a handful of
/// connections exhaust memory. 64 MiB comfortably fits any batch this
/// protocol produces.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Writes one framed payload.
pub fn write_frame(writer: &mut impl Write, framing: Framing, payload: &str) -> io::Result<()> {
    match framing {
        Framing::Lines => {
            writer.write_all(payload.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        Framing::LengthPrefixed => {
            let len = u32::try_from(payload.len())
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32"))?;
            writer.write_all(&len.to_be_bytes())?;
            writer.write_all(payload.as_bytes())?;
        }
    }
    writer.flush()
}

/// Reads one framed payload; `Ok(None)` signals a clean end of stream.
pub fn read_frame(reader: &mut impl BufRead, framing: Framing) -> io::Result<Option<String>> {
    match framing {
        Framing::Lines => loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Ok(Some(trimmed.to_string()));
            }
        },
        Framing::LengthPrefixed => {
            let mut len_bytes = [0u8; 4];
            match reader.read_exact(&mut len_bytes) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
                Err(e) => return Err(e),
            }
            let len = u32::from_be_bytes(len_bytes) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
                ));
            }
            let mut payload = vec![0u8; len];
            reader.read_exact(&mut payload)?;
            String::from_utf8(payload)
                .map(Some)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
        }
    }
}

// ----------------------------------------------------------------- client

/// Everything a blocking call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's reply did not decode.
    Protocol(ProtocolError),
    /// The server answered with a typed engine error.
    Engine(EngineError),
    /// The server closed the stream mid-call.
    Disconnected,
    /// The reply's correlation id did not match the request.
    IdMismatch {
        /// Id the client sent.
        expected: u64,
        /// Id the server echoed.
        got: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "undecodable reply: {e}"),
            ClientError::Engine(e) => write!(f, "{e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::IdMismatch { expected, got } => {
                write!(f, "response id {got} does not match request id {expected}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking request/response client speaking [`PROTOCOL_VERSION`].
pub struct EngineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    framing: Framing,
    next_id: u64,
}

impl EngineClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs, framing: Framing) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(EngineClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            framing,
            next_id: 1,
        })
    }

    /// Sends one request and waits for its response. Typed failures the
    /// server reports ([`EngineError`]) come back as
    /// [`ClientError::Engine`].
    pub fn call(&mut self, body: EngineRequest) -> Result<EngineResponse, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = RequestEnvelope {
            id,
            version: PROTOCOL_VERSION,
            body,
        };
        write_frame(
            &mut self.writer,
            self.framing,
            &encode_request_envelope(&envelope),
        )?;
        let line = read_frame(&mut self.reader, self.framing)?.ok_or(ClientError::Disconnected)?;
        let response: ResponseEnvelope =
            decode_response_envelope(&line).map_err(ClientError::Protocol)?;
        if response.id != id {
            return Err(ClientError::IdMismatch {
                expected: id,
                got: response.id,
            });
        }
        response.result.map_err(ClientError::Engine)
    }

    /// Applies one delta.
    pub fn apply(&mut self, delta: InstanceDelta) -> Result<EngineResponse, ClientError> {
        self.call(EngineRequest::Apply { delta })
    }

    /// Answers one read-only query.
    pub fn query(&mut self, query: EngineQuery) -> Result<EngineResponse, ClientError> {
        self.call(EngineRequest::Query { query })
    }
}

// ----------------------------------------------------------------- server

/// Messages flowing into a server's dispatch thread.
enum ServerMsg {
    /// One decoded-later wire line plus the channel its response goes to.
    Request { line: String, reply: Sender<String> },
    /// A per-shard worker finished an apply.
    Completion {
        shard: usize,
        outcome: ApplyOutcome,
        envelope_id: u64,
        reply: Sender<String>,
    },
    /// Stop dispatching and return the backend.
    Shutdown,
}

/// Messages a per-shard worker consumes.
enum WorkerMsg {
    /// Apply a shard-local, mirror-validated delta.
    Apply {
        delta: InstanceDelta,
        envelope_id: u64,
        reply: Sender<String>,
    },
    /// Hand the shard back to the coordinator (barrier).
    Surrender,
    /// Receive the shard back after a barrier (boxed: a `Shard` is a few
    /// hundred bytes and barriers are rare, so keep the common `Apply`
    /// variant small).
    Resume(Box<Shard>),
    /// Exit the worker loop (the shard was already surrendered).
    Shutdown,
}

/// A running server: the bound address plus the handles needed to stop it
/// and recover the backend.
pub struct ServerHandle<B> {
    addr: SocketAddr,
    queue: Sender<ServerMsg>,
    shutdown: Arc<AtomicBool>,
    accept_handle: JoinHandle<()>,
    dispatch_handle: JoinHandle<B>,
}

impl<B> ServerHandle<B> {
    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight work, joins every thread and
    /// returns the backend (with all shards re-attached, for the sharded
    /// server) so callers can inspect the final served state.
    pub fn shutdown(self) -> io::Result<B> {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.queue.send(ServerMsg::Shutdown);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.accept_handle
            .join()
            .map_err(|_| io::Error::other("accept thread panicked"))?;
        self.dispatch_handle
            .join()
            .map_err(|_| io::Error::other("dispatch thread panicked"))
    }
}

/// Entry points for serving an engine over TCP.
pub struct EngineServer;

impl EngineServer {
    /// Serves any backend behind one dispatch thread: requests from all
    /// connections are executed serially against the wrapped
    /// [`EngineService`], in arrival order.
    pub fn serve<B: EngineBackend + Send + 'static>(
        listener: TcpListener,
        service: EngineService<B>,
        framing: Framing,
    ) -> io::Result<ServerHandle<B>> {
        spawn_server(listener, framing, move |queue_rx, _queue_tx| {
            serial_dispatch(service, queue_rx)
        })
    }

    /// Serves a [`ShardedEngine`] with one worker thread per shard:
    /// user-scoped `Apply` requests run concurrently on the owning
    /// shard's worker; everything else barriers (see the module docs).
    pub fn serve_sharded(
        listener: TcpListener,
        engine: ShardedEngine,
        framing: Framing,
    ) -> io::Result<ServerHandle<ShardedEngine>> {
        spawn_server(listener, framing, move |queue_rx, queue_tx| {
            ShardDispatcher::new(engine, queue_tx).run(queue_rx)
        })
    }
}

/// Spawns the accept loop and the dispatch thread shared by both server
/// flavours. `dispatch` consumes the queue until shutdown and returns the
/// backend; it also receives a sender so worker threads can feed
/// completions into the same queue.
fn spawn_server<B, F>(
    listener: TcpListener,
    framing: Framing,
    dispatch: F,
) -> io::Result<ServerHandle<B>>
where
    B: Send + 'static,
    F: FnOnce(Receiver<ServerMsg>, Sender<ServerMsg>) -> B + Send + 'static,
{
    let addr = listener.local_addr()?;
    let (queue_tx, queue_rx) = mpsc::channel::<ServerMsg>();
    let shutdown = Arc::new(AtomicBool::new(false));

    let dispatch_queue_tx = queue_tx.clone();
    let dispatch_handle = thread::spawn(move || dispatch(queue_rx, dispatch_queue_tx));

    let accept_queue = queue_tx.clone();
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_handle = thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let queue = accept_queue.clone();
            thread::spawn(move || connection_loop(stream, queue, framing));
        }
    });

    Ok(ServerHandle {
        addr,
        queue: queue_tx,
        shutdown,
        accept_handle,
        dispatch_handle,
    })
}

/// Per-connection read/dispatch/write loop. Requests from one connection
/// are answered in order; the loop ends on client disconnect, a dead
/// dispatcher, or a write failure.
fn connection_loop(stream: TcpStream, queue: Sender<ServerMsg>, framing: Framing) {
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    while let Ok(Some(line)) = read_frame(&mut reader, framing) {
        let (reply_tx, reply_rx) = mpsc::channel();
        if queue
            .send(ServerMsg::Request {
                line,
                reply: reply_tx,
            })
            .is_err()
        {
            break;
        }
        let Ok(response) = reply_rx.recv() else {
            break;
        };
        if write_frame(&mut writer, framing, &response).is_err() {
            break;
        }
    }
}

/// The serial dispatcher: one service, strict arrival order.
fn serial_dispatch<B: EngineBackend>(
    mut service: EngineService<B>,
    queue: Receiver<ServerMsg>,
) -> B {
    let mut fallback_seq = 0u64;
    while let Ok(msg) = queue.recv() {
        match msg {
            ServerMsg::Request { line, reply } => {
                fallback_seq += 1;
                let envelope = service.handle_line(&line, fallback_seq);
                let _ = reply.send(encode_response_envelope(&envelope));
            }
            ServerMsg::Completion { .. } => {
                unreachable!("the serial server spawns no workers")
            }
            ServerMsg::Shutdown => break,
        }
    }
    service.into_backend()
}

/// Whether a delta routes to a single owning shard (the worker fast
/// path). Event-scoped deltas broadcast and must barrier.
fn is_user_scoped(delta: &InstanceDelta) -> bool {
    !matches!(
        delta,
        InstanceDelta::AddEvent { .. }
            | InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(_),
                ..
            }
    )
}

struct WorkerHandle {
    tx: Sender<WorkerMsg>,
    join: JoinHandle<()>,
}

/// The per-shard worker dispatcher. Owns the coordinator (mirror, quota
/// tables, routing) while the shards live on worker threads; see the
/// module docs for the fast-path/barrier split.
struct ShardDispatcher {
    engine: ShardedEngine,
    workers: Vec<WorkerHandle>,
    /// Shards handed back by workers during a barrier.
    shard_return_rx: Receiver<(usize, Shard)>,
    /// Worker applies in flight (fast-path requests not yet completed).
    pending: usize,
    /// Whether the shards currently live in `engine` (true) or on the
    /// workers (false).
    attached: bool,
    /// Requests buffered while a barrier drained completions.
    backlog: VecDeque<ServerMsg>,
    fallback_seq: u64,
}

impl ShardDispatcher {
    fn new(mut engine: ShardedEngine, completion_tx: Sender<ServerMsg>) -> Self {
        let (shard_return_tx, shard_return_rx) = mpsc::channel();
        let shards = engine.detach_shards();
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(k, shard)| {
                spawn_worker(k, shard, completion_tx.clone(), shard_return_tx.clone())
            })
            .collect();
        ShardDispatcher {
            engine,
            workers,
            shard_return_rx,
            pending: 0,
            attached: false,
            backlog: VecDeque::new(),
            fallback_seq: 0,
        }
    }

    fn run(mut self, queue: Receiver<ServerMsg>) -> ShardedEngine {
        loop {
            // Barrier leftovers first, then the shared queue (requests
            // and worker completions interleave there in arrival order).
            let msg = match self.backlog.pop_front() {
                Some(msg) => msg,
                None => match queue.recv() {
                    Ok(msg) => msg,
                    Err(_) => break,
                },
            };
            match msg {
                ServerMsg::Request { line, reply } => self.on_request(line, reply, &queue),
                ServerMsg::Completion {
                    shard,
                    outcome,
                    envelope_id,
                    reply,
                } => self.on_completion(shard, outcome, envelope_id, reply, &queue),
                ServerMsg::Shutdown => break,
            }
        }
        // Drain in-flight applies and bring every shard home before
        // handing the engine back.
        self.barrier(&queue);
        for worker in &self.workers {
            let _ = worker.tx.send(WorkerMsg::Shutdown);
        }
        for worker in self.workers {
            let _ = worker.join.join();
        }
        self.engine
    }

    fn on_request(&mut self, line: String, reply: Sender<String>, queue: &Receiver<ServerMsg>) {
        self.fallback_seq += 1;
        let envelope = match decode_request_envelope(&line, self.fallback_seq) {
            Ok(envelope) => envelope,
            Err(e) => {
                respond(
                    &reply,
                    ResponseEnvelope {
                        id: self.fallback_seq,
                        result: Err(EngineError::Malformed { detail: e.message }),
                    },
                );
                return;
            }
        };
        // Version-gate BEFORE routing, mirroring `dispatch_envelope`: an
        // unsupported dialect must never reach the fast path and mutate
        // state (the serial server answers `Unsupported` and so must we).
        let strict = envelope.version == PROTOCOL_VERSION;
        if !strict && envelope.version != LEGACY_VERSION {
            respond(
                &reply,
                ResponseEnvelope {
                    id: envelope.id,
                    result: Err(EngineError::Unsupported {
                        version: envelope.version,
                    }),
                },
            );
            return;
        }
        match &envelope.body {
            // Fast path: a user-scoped delta validated on the mirror runs
            // on the owning shard's worker, concurrently with other
            // shards' applies.
            EngineRequest::Apply { delta } if !self.attached && is_user_scoped(delta) => {
                match self.engine.plan_user_delta(delta) {
                    Ok((k, local)) => {
                        self.pending += 1;
                        self.workers[k]
                            .tx
                            .send(WorkerMsg::Apply {
                                delta: local,
                                envelope_id: envelope.id,
                                reply,
                            })
                            .expect("worker alive until shutdown");
                    }
                    Err(e) => {
                        let result = if strict {
                            Err(EngineError::from(&e))
                        } else {
                            Ok(EngineResponse::Rejected {
                                reason: e.to_string(),
                            })
                        };
                        respond(
                            &reply,
                            ResponseEnvelope {
                                id: envelope.id,
                                result,
                            },
                        );
                    }
                }
            }
            // Everything else executes on the fully attached engine
            // through the one service implementation.
            _ => {
                self.barrier(queue);
                let response = dispatch_envelope(&mut self.engine, &envelope);
                respond(&reply, response);
                self.redistribute();
            }
        }
    }

    /// Completion bookkeeping shared by the main loop and the barrier
    /// drain: account the shard outcome, answer the waiting client with
    /// merged totals (exactly the serial coordinator's `ApplyOutcome`,
    /// pre-reconcile), and count the delta toward the reconcile interval.
    /// The periodic reconcile itself is the caller's decision — the main
    /// loop barriers for it, the barrier drain runs it once attached.
    fn complete_apply(
        &mut self,
        shard: usize,
        outcome: ApplyOutcome,
        envelope_id: u64,
        reply: &Sender<String>,
    ) {
        self.pending -= 1;
        self.engine.note_outcome(shard, &outcome);
        let merged = ApplyOutcome {
            kind: outcome.kind,
            repair: outcome.repair,
            utility: self.engine.utility(),
            num_pairs: self.engine.num_pairs(),
        };
        respond(
            reply,
            ResponseEnvelope {
                id: envelope_id,
                result: Ok(applied_response(merged)),
            },
        );
        self.engine.note_applied(1);
    }

    fn on_completion(
        &mut self,
        shard: usize,
        outcome: ApplyOutcome,
        envelope_id: u64,
        reply: Sender<String>,
        queue: &Receiver<ServerMsg>,
    ) {
        self.complete_apply(shard, outcome, envelope_id, &reply);
        if self.engine.periodic_reconcile_pending() {
            self.barrier(queue);
            self.redistribute();
        }
    }

    /// Drains in-flight applies, collects every shard from its worker and
    /// re-attaches them to the engine (running any due periodic reconcile
    /// while everything is home). No-op when already attached.
    fn barrier(&mut self, queue: &Receiver<ServerMsg>) {
        if self.attached {
            return;
        }
        while self.pending > 0 {
            match queue.recv().expect("workers hold a queue sender") {
                ServerMsg::Completion {
                    shard,
                    outcome,
                    envelope_id,
                    reply,
                } => self.complete_apply(shard, outcome, envelope_id, &reply),
                msg => self.backlog.push_back(msg),
            }
        }
        for worker in &self.workers {
            worker
                .tx
                .send(WorkerMsg::Surrender)
                .expect("worker alive until shutdown");
        }
        let mut collected: Vec<Option<Shard>> = (0..self.workers.len()).map(|_| None).collect();
        for _ in 0..self.workers.len() {
            let (k, shard) = self
                .shard_return_rx
                .recv()
                .expect("every worker surrenders its shard");
            collected[k] = Some(shard);
        }
        self.engine.attach_shards(
            collected
                .into_iter()
                .map(|s| s.expect("each worker returned one shard"))
                .collect(),
        );
        self.attached = true;
        if self.engine.periodic_reconcile_pending() {
            self.engine.run_pending_reconcile();
        }
    }

    /// Sends the shards back to their workers after a barrier.
    fn redistribute(&mut self) {
        if !self.attached {
            return;
        }
        let shards = self.engine.detach_shards();
        for (k, shard) in shards.into_iter().enumerate() {
            self.workers[k]
                .tx
                .send(WorkerMsg::Resume(Box::new(shard)))
                .expect("worker alive until shutdown");
        }
        self.attached = false;
    }
}

fn respond(reply: &Sender<String>, envelope: ResponseEnvelope) {
    // A dead connection is not the dispatcher's problem.
    let _ = reply.send(encode_response_envelope(&envelope));
}

fn spawn_worker(
    k: usize,
    shard: Shard,
    completion_tx: Sender<ServerMsg>,
    shard_return_tx: Sender<(usize, Shard)>,
) -> WorkerHandle {
    let (tx, rx) = mpsc::channel::<WorkerMsg>();
    let join = thread::spawn(move || {
        let mut slot = Some(shard);
        while let Ok(msg) = rx.recv() {
            match msg {
                WorkerMsg::Apply {
                    delta,
                    envelope_id,
                    reply,
                } => {
                    let shard = slot.as_mut().expect("apply while surrendered");
                    let outcome = shard.apply(&delta).unwrap_or_else(|e| {
                        panic!(
                            "shard {k} rejected a mirror-validated delta ({e}); \
                             ShardedEngine requires attribute-based (id-independent) \
                             conflict and interest functions"
                        )
                    });
                    if completion_tx
                        .send(ServerMsg::Completion {
                            shard: k,
                            outcome,
                            envelope_id,
                            reply,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                WorkerMsg::Surrender => {
                    let shard = slot.take().expect("surrender while surrendered");
                    if shard_return_tx.send((k, shard)).is_err() {
                        break;
                    }
                }
                WorkerMsg::Resume(shard) => slot = Some(*shard),
                WorkerMsg::Shutdown => break,
            }
        }
    });
    WorkerHandle { tx, join }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::ShardedConfig;
    use crate::engine::{Engine, EngineConfig};
    use igepa_algos::GreedyArrangement;
    use igepa_core::{
        AttributeVector, ConstantInterest, EventId, HashPartitioner, Instance, NeverConflict,
        UserId,
    };
    use std::io::Cursor;

    fn base_instance(num_events: usize, num_users: usize) -> Instance {
        let mut b = Instance::builder();
        let events: Vec<EventId> = (0..num_events)
            .map(|_| b.add_event(2, AttributeVector::empty()))
            .collect();
        for _ in 0..num_users {
            b.add_user(2, AttributeVector::empty(), events.clone());
        }
        b.interaction_scores(vec![0.5; num_users]);
        b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap()
    }

    fn sharded_for(num_events: usize, num_users: usize, num_shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            base_instance(num_events, num_users),
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            Box::new(HashPartitioner),
            ShardedConfig::with_shards(num_shards),
        )
    }

    fn add_user_request(event: usize) -> EngineRequest {
        EngineRequest::Apply {
            delta: InstanceDelta::AddUser {
                capacity: 1,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(event)],
                interaction: 0.5,
            },
        }
    }

    #[test]
    fn frames_roundtrip_in_both_framings() {
        for framing in [Framing::Lines, Framing::LengthPrefixed] {
            let mut buffer = Vec::new();
            write_frame(&mut buffer, framing, "{\"a\":1}").unwrap();
            write_frame(&mut buffer, framing, "second payload").unwrap();
            let mut reader = Cursor::new(buffer);
            assert_eq!(
                read_frame(&mut reader, framing).unwrap().as_deref(),
                Some("{\"a\":1}")
            );
            assert_eq!(
                read_frame(&mut reader, framing).unwrap().as_deref(),
                Some("second payload")
            );
            assert_eq!(read_frame(&mut reader, framing).unwrap(), None);
        }
    }

    #[test]
    fn line_framing_skips_blank_lines() {
        let mut reader = Cursor::new(b"\n\n{\"x\":2}\n\n".to_vec());
        assert_eq!(
            read_frame(&mut reader, Framing::Lines).unwrap().as_deref(),
            Some("{\"x\":2}")
        );
        assert_eq!(read_frame(&mut reader, Framing::Lines).unwrap(), None);
    }

    #[test]
    fn serial_server_round_trips_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let engine = Engine::new(
            base_instance(2, 3),
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            EngineConfig::default(),
        );
        let handle =
            EngineServer::serve(listener, EngineService::new(engine), Framing::Lines).unwrap();
        let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();

        let applied = client.apply(InstanceDelta::AddUser {
            capacity: 1,
            attrs: AttributeVector::empty(),
            bids: vec![EventId::new(0)],
            interaction: 0.9,
        });
        assert!(matches!(applied, Ok(EngineResponse::Applied { .. })));

        // Typed errors surface client-side.
        let missing = client.query(EngineQuery::AssignmentsOf {
            user: UserId::new(99),
        });
        assert!(matches!(
            missing,
            Err(ClientError::Engine(EngineError::NotFound { .. }))
        ));

        let utility = client.query(EngineQuery::Utility).unwrap();
        assert!(matches!(utility, EngineResponse::Utility { total, .. } if total > 0.0));

        drop(client);
        let engine = handle.shutdown().unwrap();
        assert_eq!(engine.instance().num_users(), 4);
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn sharded_server_matches_in_process_responses() {
        // A synchronous client must observe exactly the serial service's
        // responses: the worker pool changes where repairs run, not what
        // they produce.
        let requests: Vec<EngineRequest> = (0..40)
            .map(|i| match i % 7 {
                6 => EngineRequest::Query {
                    query: EngineQuery::Utility,
                },
                3 => EngineRequest::Query {
                    query: EngineQuery::EventLoad {
                        event: EventId::new(i % 3),
                    },
                },
                5 => EngineRequest::Apply {
                    delta: InstanceDelta::AddEvent {
                        capacity: 3,
                        attrs: AttributeVector::empty(),
                    },
                },
                _ => add_user_request(i % 3),
            })
            .collect();

        let mut serial = EngineService::new(sharded_for(3, 8, 2));
        let expected: Vec<Result<EngineResponse, EngineError>> =
            requests.iter().map(|r| serial.try_handle(r)).collect();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(3, 8, 2), Framing::LengthPrefixed)
                .unwrap();
        let mut client =
            EngineClient::connect(handle.local_addr(), Framing::LengthPrefixed).unwrap();
        let got: Vec<Result<EngineResponse, EngineError>> = requests
            .iter()
            .map(|r| match client.call(r.clone()) {
                Ok(response) => Ok(response),
                Err(ClientError::Engine(e)) => Err(e),
                Err(other) => panic!("transport failure: {other}"),
            })
            .collect();
        assert_eq!(got, expected);

        drop(client);
        let engine = handle.shutdown().unwrap();
        let serial_engine = serial.into_backend();
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
        assert_eq!(
            engine.merged_utility().total.to_bits(),
            serial_engine.merged_utility().total.to_bits()
        );
    }

    #[test]
    fn sharded_server_survives_concurrent_clients() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(4, 8, 4), Framing::Lines).unwrap();
        let addr = handle.local_addr();

        let clients: Vec<_> = (0..4)
            .map(|c| {
                thread::spawn(move || {
                    let mut client = EngineClient::connect(addr, Framing::Lines).unwrap();
                    for i in 0..25 {
                        client.call(add_user_request((c + i) % 4)).unwrap();
                    }
                    client.query(EngineQuery::MergedSnapshot).unwrap()
                })
            })
            .collect();
        for c in clients {
            assert!(matches!(c.join().unwrap(), EngineResponse::Snapshot { .. }));
        }

        let engine = handle.shutdown().unwrap();
        assert_eq!(engine.instance().num_users(), 8 + 4 * 25);
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn length_prefixed_frames_are_size_capped() {
        let mut reader = Cursor::new(0xFFFF_FFFFu32.to_be_bytes().to_vec());
        let err = read_frame(&mut reader, Framing::LengthPrefixed).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn sharded_fast_path_version_gates_like_the_serial_server() {
        // An unsupported protocol version must answer Unsupported and
        // leave the engine untouched — even on the worker fast path.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(2, 4, 2), Framing::Lines).unwrap();

        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let envelope = RequestEnvelope {
            id: 7,
            version: 42,
            body: add_user_request(0),
        };
        write_frame(
            &mut writer,
            Framing::Lines,
            &crate::protocol::encode_request_envelope(&envelope),
        )
        .unwrap();
        let line = read_frame(&mut reader, Framing::Lines).unwrap().unwrap();
        let response = decode_response_envelope(&line).unwrap();
        assert_eq!(response.id, 7);
        assert_eq!(
            response.result,
            Err(EngineError::Unsupported { version: 42 })
        );

        drop(writer);
        let engine = handle.shutdown().unwrap();
        assert_eq!(
            engine.instance().num_users(),
            4,
            "unsupported-version Apply must not mutate the engine"
        );
    }

    #[test]
    fn legacy_bare_requests_work_over_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(2, 4, 2), Framing::Lines).unwrap();

        // A hand-rolled legacy client: bare pre-envelope request lines.
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(
            &mut writer,
            Framing::Lines,
            "{\"Query\":{\"query\":{\"AssignmentsOf\":{\"user\":99}}}}",
        )
        .unwrap();
        let line = read_frame(&mut reader, Framing::Lines).unwrap().unwrap();
        let envelope = decode_response_envelope(&line).unwrap();
        // Legacy dialect: silent empty answer instead of NotFound.
        assert_eq!(
            envelope.result,
            Ok(EngineResponse::Assignments {
                user: UserId::new(99),
                events: Vec::new(),
            })
        );

        drop(writer);
        handle.shutdown().unwrap();
    }
}
