//! TCP transport: framed envelope JSONL, a blocking client, and servers.
//!
//! The protocol was designed as data ([`crate::protocol`]); this module
//! puts it on a wire. Three pieces:
//!
//! * **Framing** — [`Framing::Lines`] sends one JSON document per
//!   `\n`-terminated line (telnet-debuggable, the JSONL logs verbatim);
//!   [`Framing::LengthPrefixed`] sends a `u32` big-endian byte length
//!   followed by the JSON payload (binary-safe, no scan for delimiters).
//!   Both carry exactly the envelope codecs of [`crate::protocol`].
//! * **[`EngineClient`]** — a blocking request/response client: every
//!   call sends one [`RequestEnvelope`] at [`PROTOCOL_VERSION`] and waits
//!   for the matching [`ResponseEnvelope`]. It also **pipelines**
//!   ([`EngineClient::send`] / [`EngineClient::recv`] /
//!   [`EngineClient::pipeline`]): a whole burst goes on the wire before
//!   the first response is read, with responses matched to outstanding
//!   correlation ids on receipt — removing the RTT-per-request floor.
//! * **[`EngineServer`]** — [`EngineServer::serve`] runs any
//!   [`EngineBackend`] behind a single dispatch thread;
//!   [`EngineServer::serve_sharded`] additionally detaches a
//!   [`ShardedEngine`]'s shards into **per-shard worker threads**. Shards
//!   are independent between reconcile passes, so user-scoped `Apply`
//!   requests are validated on the coordinator and executed concurrently
//!   on the owning shard's worker, while event broadcasts, batches,
//!   `Checkpoint` and `Rebalance` run a barrier (drain in-flight
//!   applies, collect the shards, execute on the attached engine,
//!   redistribute). [`EngineServer::serve_sharded_durable`] is the same
//!   server with a [`DurabilityController`] in front of the dispatcher:
//!   every admitted mutating request is appended to the write-ahead log
//!   *before* it is dispatched (and so before its ack — a failed append
//!   refuses the request), `Checkpoint` requests and automatic every-N
//!   checkpoints serialize the engine at a barrier, and the
//!   `DurabilityStats` query reads the live counters.
//!
//! **Barrier-free reads**: every read query — the aggregates `Utility` /
//! `Stats` / `ShardStats`, the per-entity reads `AssignmentsOf` /
//! `EventLoad`, *and* `MergedSnapshot` — is answered without stopping
//! the worker pool. Every worker ships an epoch-tagged read-state view
//! (utility breakdown, utility tracker, counters, and a snapshot of its
//! assignment slices) with each apply completion; the dispatcher
//! installs it in a shared `QueryCache` — together with the
//! coordinator's user→shard owner table — *before* acking the apply, and
//! connection threads answer straight from that cache (`EventLoad`
//! merges the per-shard loads right there; `MergedSnapshot` rebuilds the
//! global pair list through the owner table and absorbs the per-shard
//! trackers for an *exact* merged utility, falling back to the
//! dispatch-queue barrier only when an owner row is newer than its
//! shard's view). A reader therefore cannot stall the repair path, and a
//! client that has seen an apply ack can never be served the pre-apply
//! epoch.
//!
//! A client driving requests synchronously observes exactly the serial
//! [`EngineService`](crate::EngineService) responses — the worker pool
//! and the query cache change *where* work runs, never what it produces.
//! Concurrent clients interleave at request granularity in coordinator
//! arrival order; the merged arrangement stays feasible because every
//! delta still passes the coordinator's mirror validation and quota
//! accounting.

use crate::coordinator::{ShardStatsEntry, ShardedEngine};
use crate::durability::{is_mutating, DurabilityController};
use crate::error::EngineError;
use crate::faults::{splitmix64, FaultInjector};
use crate::protocol::{
    decode_request_envelope, decode_response_envelope, encode_request_envelope,
    encode_response_envelope, EngineQuery, EngineRequest, EngineResponse, OverloadStats,
    ProtocolError, RequestEnvelope, ResponseEnvelope, LEGACY_VERSION, PROTOCOL_VERSION,
};
use crate::service::{applied_response, dispatch_envelope, EngineBackend, EngineService};
use crate::shard::{AdmissionPolicy, ApplyOutcome, EngineStats, Shard};
use igepa_core::{
    ArrangementDiff, CapacityTarget, InstanceDelta, UserId, UtilityBreakdown, UtilityTracker,
};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How JSON documents are delimited on the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Framing {
    /// One document per `\n`-terminated line (blank lines are skipped).
    #[default]
    Lines,
    /// `u32` big-endian payload length, then the payload bytes.
    LengthPrefixed,
}

/// Upper bound on a length-prefixed frame. The length word is
/// attacker-controlled bytes off a socket; allocating whatever it says
/// (up to 4 GiB) before reading the payload would let a handful of
/// connections exhaust memory. 64 MiB comfortably fits any batch this
/// protocol produces.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Writes one framed payload.
pub fn write_frame(writer: &mut impl Write, framing: Framing, payload: &str) -> io::Result<()> {
    match framing {
        Framing::Lines => {
            writer.write_all(payload.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        Framing::LengthPrefixed => {
            let len = u32::try_from(payload.len())
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32"))?;
            writer.write_all(&len.to_be_bytes())?;
            writer.write_all(payload.as_bytes())?;
        }
    }
    writer.flush()
}

/// Reads one framed payload; `Ok(None)` signals a clean end of stream.
pub fn read_frame(reader: &mut impl BufRead, framing: Framing) -> io::Result<Option<String>> {
    match framing {
        Framing::Lines => loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Ok(Some(trimmed.to_string()));
            }
        },
        Framing::LengthPrefixed => {
            let mut len_bytes = [0u8; 4];
            match reader.read_exact(&mut len_bytes) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
                Err(e) => return Err(e),
            }
            let len = u32::from_be_bytes(len_bytes) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
                ));
            }
            let mut payload = vec![0u8; len];
            reader.read_exact(&mut payload)?;
            String::from_utf8(payload)
                .map(Some)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
        }
    }
}

// ----------------------------------------------------------------- client

/// Everything a blocking call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's reply did not decode.
    Protocol(ProtocolError),
    /// The server answered with a typed engine error.
    Engine(EngineError),
    /// The server closed the stream mid-call.
    Disconnected,
    /// The reply's correlation id did not match the request.
    IdMismatch {
        /// Id the client sent.
        expected: u64,
        /// Id the server echoed.
        got: u64,
    },
    /// [`EngineClient::recv`] was asked for an id this client never sent
    /// (or whose response was already consumed) — a local API misuse,
    /// unlike [`ClientError::IdMismatch`], which is a server protocol
    /// violation.
    UnknownId {
        /// The id that was never outstanding.
        id: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "undecodable reply: {e}"),
            ClientError::Engine(e) => write!(f, "{e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::IdMismatch { expected, got } => {
                write!(f, "response id {got} does not match request id {expected}")
            }
            ClientError::UnknownId { id } => {
                write!(
                    f,
                    "request id {id} was never sent (or its response was already consumed)"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking request/response client speaking [`PROTOCOL_VERSION`].
///
/// Besides the one-at-a-time [`EngineClient::call`], the client
/// **pipelines**: [`EngineClient::send`] puts a request on the wire
/// without waiting and [`EngineClient::recv`] matches responses to
/// outstanding correlation ids on receipt (buffering any that arrive for
/// a different id). [`EngineClient::pipeline`] drives a whole burst this
/// way — every request is in flight before the first response is read —
/// which removes the RTT-per-request floor the serial call pattern pays:
/// throughput becomes server-bound instead of round-trip-bound, and the
/// responses are byte-identical to the serial pattern's (pinned by test).
pub struct EngineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    framing: Framing,
    next_id: u64,
    /// The peer actually connected to, kept for
    /// [`EngineClient::reconnect`].
    addr: SocketAddr,
    /// Send-ahead bound for [`EngineClient::pipeline`]; defaults to
    /// [`EngineClient::PIPELINE_WINDOW`].
    pipeline_window: usize,
    /// Ids sent but not yet handed to the caller.
    outstanding: std::collections::BTreeSet<u64>,
    /// Responses that arrived while waiting for a different id.
    received: std::collections::BTreeMap<u64, Result<EngineResponse, EngineError>>,
}

impl EngineClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs, framing: Framing) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(EngineClient {
            reader: BufReader::new(stream.try_clone()?),
            addr: stream.peer_addr()?,
            writer: stream,
            framing,
            next_id: 1,
            pipeline_window: Self::PIPELINE_WINDOW,
            outstanding: std::collections::BTreeSet::new(),
            received: std::collections::BTreeMap::new(),
        })
    }

    /// Tears the socket down and dials the same server again. All
    /// outstanding pipelined ids are forgotten — their responses died
    /// with the old connection — which is exactly why only idempotent
    /// reads ([`EngineClient::query_resilient`]) replay across a
    /// reconnect: a mutation whose ack was lost may or may not have
    /// applied.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        self.outstanding.clear();
        self.received.clear();
        Ok(())
    }

    /// Sends one request without waiting for its response; returns the
    /// correlation id to later [`EngineClient::recv`] with. The send-side
    /// half of pipelining.
    pub fn send(&mut self, body: EngineRequest) -> Result<u64, ClientError> {
        self.send_with_deadline(body, None)
    }

    /// [`EngineClient::send`] with a per-request budget: the server
    /// drops the request with [`EngineError::DeadlineExceeded`] if
    /// `deadline_ms` milliseconds (counted from arrival at the server)
    /// have already elapsed when the dispatcher dequeues it. The check
    /// uses `elapsed >= deadline`, so `deadline_ms = 0` expires
    /// deterministically — a zero-budget probe that measures queue
    /// pressure without ever doing work.
    pub fn send_with_deadline(
        &mut self,
        body: EngineRequest,
        deadline_ms: Option<u64>,
    ) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut envelope = RequestEnvelope::new(id, PROTOCOL_VERSION, body);
        envelope.deadline_ms = deadline_ms;
        write_frame(
            &mut self.writer,
            self.framing,
            &encode_request_envelope(&envelope),
        )?;
        self.outstanding.insert(id);
        Ok(id)
    }

    /// Receives the response for a previously [`EngineClient::send`]-sent
    /// id, buffering responses that arrive for other outstanding ids. A
    /// response for an id this client never sent is a protocol violation
    /// ([`ClientError::IdMismatch`]).
    pub fn recv(&mut self, id: u64) -> Result<EngineResponse, ClientError> {
        if !self.outstanding.remove(&id) && !self.received.contains_key(&id) {
            return Err(ClientError::UnknownId { id });
        }
        if let Some(result) = self.received.remove(&id) {
            return result.map_err(ClientError::Engine);
        }
        loop {
            let line =
                read_frame(&mut self.reader, self.framing)?.ok_or(ClientError::Disconnected)?;
            let response: ResponseEnvelope =
                decode_response_envelope(&line).map_err(ClientError::Protocol)?;
            if response.id == id {
                return response.result.map_err(ClientError::Engine);
            }
            if !self.outstanding.remove(&response.id) {
                return Err(ClientError::IdMismatch {
                    expected: id,
                    got: response.id,
                });
            }
            self.received.insert(response.id, response.result);
        }
    }

    /// Sends one request and waits for its response. Typed failures the
    /// server reports ([`EngineError`]) come back as
    /// [`ClientError::Engine`].
    pub fn call(&mut self, body: EngineRequest) -> Result<EngineResponse, ClientError> {
        let id = self.send(body)?;
        self.recv(id)
    }

    /// Pipelines a burst: requests are sent ahead without waiting, and
    /// responses are matched by correlation id in request order.
    /// Engine-level failures come back per request; only transport
    /// failures abort the whole burst.
    ///
    /// In-flight requests are capped at the configured
    /// [`EngineClient::pipeline_window`] — a fully unbounded send-ahead
    /// would deadlock once a burst outgrows the TCP socket buffers (the
    /// server stops reading while its response writes block, the client
    /// stops reading while its sends block). The window keeps the RTT
    /// floor amortised away while bounding buffered bytes.
    pub fn pipeline(
        &mut self,
        bodies: Vec<EngineRequest>,
    ) -> Result<Vec<Result<EngineResponse, EngineError>>, ClientError> {
        let mut results = Vec::with_capacity(bodies.len());
        let mut in_flight: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        let mut bodies = bodies.into_iter();
        loop {
            while in_flight.len() < self.pipeline_window {
                match bodies.next() {
                    Some(body) => in_flight.push_back(self.send(body)?),
                    None => break,
                }
            }
            let Some(id) = in_flight.pop_front() else {
                break;
            };
            results.push(match self.recv(id) {
                Ok(response) => Ok(Ok(response)),
                Err(ClientError::Engine(e)) => Ok(Err(e)),
                Err(other) => Err(other),
            }?);
        }
        Ok(results)
    }

    /// Default for [`EngineClient::pipeline_window`]. At typical
    /// envelope sizes this stays far below loopback socket buffers;
    /// bursts of larger responses (e.g. `MergedSnapshot` of a big
    /// instance) should be driven at a window sized to the expected
    /// response volume ([`EngineClient::set_pipeline_window`], or
    /// `send`/`recv` directly).
    pub const PIPELINE_WINDOW: usize = 32;

    /// The current pipelining send-ahead window.
    pub fn pipeline_window(&self) -> usize {
        self.pipeline_window
    }

    /// Reconfigures the pipelining send-ahead window, clamped to at
    /// least 1 (a window of 1 degenerates to the serial call pattern —
    /// same responses, RTT floor back in force). Large windows trade
    /// buffered bytes for throughput; see the deadlock note on
    /// [`EngineClient::pipeline`] before exceeding socket-buffer scale.
    pub fn set_pipeline_window(&mut self, window: usize) {
        self.pipeline_window = window.max(1);
    }

    /// Applies one delta.
    pub fn apply(&mut self, delta: InstanceDelta) -> Result<EngineResponse, ClientError> {
        self.call(EngineRequest::Apply { delta })
    }

    /// Answers one read-only query.
    pub fn query(&mut self, query: EngineQuery) -> Result<EngineResponse, ClientError> {
        self.call(EngineRequest::Query { query })
    }

    /// [`EngineClient::call`] with deterministic seeded backoff:
    /// an [`EngineError::Overloaded`] refusal sleeps (honouring the
    /// server's `retry_after_ms` hint as a floor) and resends, up to
    /// `policy.max_retries` times. `Overloaded` guarantees nothing was
    /// enqueued or applied, so resending is safe for mutations too.
    /// Every other outcome — success, other typed errors, transport
    /// failures — returns immediately.
    pub fn call_with_retry(
        &mut self,
        body: EngineRequest,
        policy: &RetryPolicy,
    ) -> Result<EngineResponse, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.call(body.clone()) {
                Err(ClientError::Engine(EngineError::Overloaded { retry_after_ms, .. }))
                    if attempt < policy.max_retries =>
                {
                    thread::sleep(Duration::from_millis(
                        policy.backoff_ms(attempt, retry_after_ms),
                    ));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// A read-only query that additionally survives transport
    /// failures: reads are idempotent, so a broken connection
    /// reconnects to the same server and replays the query (mutations
    /// must never do this — see [`EngineClient::reconnect`]).
    /// `Overloaded` refusals back off exactly like
    /// [`EngineClient::call_with_retry`]; both recovery kinds share
    /// the `policy.max_retries` budget.
    pub fn query_resilient(
        &mut self,
        query: EngineQuery,
        policy: &RetryPolicy,
    ) -> Result<EngineResponse, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.call(EngineRequest::Query { query }) {
                Err(ClientError::Engine(EngineError::Overloaded { retry_after_ms, .. }))
                    if attempt < policy.max_retries =>
                {
                    thread::sleep(Duration::from_millis(
                        policy.backoff_ms(attempt, retry_after_ms),
                    ));
                    attempt += 1;
                }
                Err(ClientError::Io(_)) | Err(ClientError::Disconnected)
                    if attempt < policy.max_retries =>
                {
                    thread::sleep(Duration::from_millis(policy.backoff_ms(attempt, 0)));
                    attempt += 1;
                    // A failed redial leaves the old (dead) socket in
                    // place; the next iteration's call fails fast and
                    // spends another retry redialing.
                    let _ = self.reconnect();
                }
                other => return other,
            }
        }
    }
}

/// Deterministic retry schedule for [`EngineClient::call_with_retry`]
/// and [`EngineClient::query_resilient`]: exponential backoff whose
/// jitter comes from a seeded hash, so a given `(seed, attempt)` always
/// sleeps the same amount — reproducible in tests, yet two clients
/// seeded differently fan out instead of retrying in lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff scale before the first retry; doubles per attempt.
    pub base_ms: u64,
    /// Cap on any single backoff.
    pub cap_ms: u64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_ms: 10,
            cap_ms: 1_000,
            seed: 0x1ce_b00da,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (0-based): half the capped
    /// exponential step is kept, half is jittered by the seeded hash,
    /// and the server's `retry_after_ms` hint acts as a floor. A pure
    /// function of `(self, attempt, retry_after_ms)`.
    pub fn backoff_ms(&self, attempt: u32, retry_after_ms: u64) -> u64 {
        let step = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap_ms);
        let jitter = splitmix64(self.seed ^ u64::from(attempt)) % (step / 2 + 1);
        (step - step / 2 + jitter).max(retry_after_ms)
    }
}

// ----------------------------------------------------------------- server

/// One shard's read-side state, computed by its worker after every apply
/// and cached coordinator-side, tagged with the count of applies the
/// shard has absorbed (its *repair epoch*). The dispatcher answers
/// `Utility` / `Stats` / `ShardStats` **and the per-entity reads**
/// (`AssignmentsOf`, `EventLoad`) from these views without barriering
/// the worker pool; the view is installed **before** the corresponding
/// apply is acked, so a reader that has seen an ack can never be served
/// the pre-apply epoch.
#[derive(Debug, Clone)]
struct ShardView {
    /// Applies absorbed by the shard when this view was taken.
    epoch: u64,
    /// Users owned by the shard (including retired ones).
    users: usize,
    /// Pairs the shard currently serves.
    pairs: usize,
    /// Utility breakdown of the shard's slice of the arrangement.
    breakdown: UtilityBreakdown,
    /// The shard's exact-sum utility accumulators. Absorbing every view's
    /// tracker into a fresh one reproduces the merged arrangement's
    /// utility bit for bit ([`UtilityTracker::absorb`] is exact and
    /// partition-independent), which lets `MergedSnapshot` be served
    /// from the cache without a barrier.
    tracker: UtilityTracker,
    /// The shard's repair-loop counters.
    stats: EngineStats,
    /// Snapshot of the shard's arrangement (shard-local user ids), taken
    /// on the worker after the repair. Backs the cached per-entity reads:
    /// `AssignmentsOf` borrows the owning shard's `events_of` slice and
    /// `EventLoad` merges `load_of` across shards — both in the
    /// connection thread. The snapshot is an O(shard pairs) clone per
    /// apply, taken off the dispatch thread.
    assignments: Arc<igepa_core::Arrangement>,
}

impl ShardView {
    fn of(shard: &Shard) -> Self {
        let stats = *shard.stats();
        ShardView {
            epoch: stats.deltas_applied,
            users: shard.instance().num_users(),
            pairs: shard.arrangement().len(),
            breakdown: shard.utility_breakdown(),
            tracker: shard.tracker().clone(),
            stats,
            assignments: Arc::new(shard.arrangement().clone()),
        }
    }
}

/// A [`ShardView`] shipped as a **diff** against the view the cache
/// already holds: full replacement metadata (all O(1) to produce) plus
/// the net pair edits of the repair ([`ArrangementDiff`]), instead of an
/// O(shard pairs) arrangement clone. The worker records the edits as the
/// repair makes them, so producing the delta is O(changed); the cache
/// replays them onto its installed snapshot in place. `parent_epoch`
/// names the view the diff applies on top of — the chain is unbroken by
/// construction (single dispatcher writer, worker resync on every
/// barrier resume), and a full [`ShardView`] remains the fallback
/// whenever the worker cannot vouch for the chain (first apply after a
/// resume with a discarded recorder, full re-solves, batch solves).
struct ViewDelta {
    /// Epoch of the installed view this diff extends.
    parent_epoch: u64,
    /// Epoch of the view after applying this diff.
    epoch: u64,
    /// Users owned by the shard (replacement value).
    users: usize,
    /// Pairs the shard serves after the apply (replacement value).
    pairs: usize,
    /// Post-apply utility breakdown (replacement value).
    breakdown: UtilityBreakdown,
    /// Post-apply exact-sum accumulators (replacement value).
    tracker: UtilityTracker,
    /// Post-apply repair-loop counters (replacement value).
    stats: EngineStats,
    /// Net pair edits since the parent view.
    diff: ArrangementDiff,
}

/// How a worker ships its post-apply read-state to the query cache:
/// a full snapshot or a diff against the previously shipped view.
enum ViewUpdate {
    /// Replace the installed view wholesale (resync fallback).
    Full(Box<ShardView>),
    /// Patch the installed view in place (the O(changed) hot path).
    Diff(Box<ViewDelta>),
    /// The shipment was lost (fault injection: a dropped worker
    /// reply). The apply itself executed; the dispatcher recovers the
    /// never-stale-after-ack guarantee by refreshing the cache from
    /// the authoritative shards at a barrier *before* releasing the
    /// ack.
    Lost,
}

/// The coordinator-side query cache: per-shard views plus the mirror's
/// rejection count, shared between the dispatcher (sole writer) and
/// every connection thread (readers). Aggregate queries are answered
/// straight from here **in the connection thread** — they never enter
/// the dispatch queue, so readers cannot stall the repair path, let
/// alone barrier it.
struct QueryCache {
    inner: RwLock<CacheInner>,
}

struct CacheInner {
    views: Vec<ShardView>,
    /// Mirror-validation rejections, attributed exactly as the serial
    /// backend attributes them (aggregate stats and shard 0's entry).
    rejected: u64,
    /// Global-user → `(shard, shard-local id)`, mirroring the
    /// coordinator's table. Append-only between barriers (`AddUser`
    /// completions extend it); routes cached `AssignmentsOf` reads.
    owners: Vec<(usize, UserId)>,
    /// True event capacities from the mirror. Event-side state only
    /// changes on barrier-executed broadcasts, which refresh the whole
    /// cache, so fast-path installs never need to touch this.
    capacities: Vec<usize>,
    /// Per-shard `(moved_in, moved_out)` migration counters, mirroring
    /// the coordinator's. They only change at barrier-executed reshards,
    /// which refresh the whole cache, so fast-path installs never need
    /// to touch this.
    migrations: Vec<(u64, u64)>,
}

impl QueryCache {
    /// Read-locks the cache, recovering a poisoned guard. A poisoned
    /// cache means some thread panicked while holding the lock — the
    /// server is already failing loudly elsewhere; the last installed
    /// views are still structurally valid (every writer below keeps
    /// `CacheInner` consistent between lock acquisitions), so draining
    /// readers keep serving them instead of cascading the panic into
    /// every connection thread.
    fn read_inner(&self) -> RwLockReadGuard<'_, CacheInner> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write-locks the cache, recovering a poisoned guard (see
    /// [`QueryCache::read_inner`] for why recovery beats cascading).
    fn write_inner(&self) -> RwLockWriteGuard<'_, CacheInner> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn from_engine(engine: &ShardedEngine) -> Arc<Self> {
        Arc::new(QueryCache {
            inner: RwLock::new(CacheInner {
                views: (0..engine.num_shards())
                    .map(|k| ShardView::of(engine.shard(k)))
                    .collect(),
                rejected: engine.rejected_count(),
                owners: engine.owners().to_vec(),
                capacities: engine
                    .instance()
                    .events()
                    .iter()
                    .map(|e| e.capacity)
                    .collect(),
                migrations: engine.shard_migrations().to_vec(),
            }),
        })
    }

    /// Installs one shard's post-apply view (the per-completion hot
    /// path), extending the owner table by any users registered since
    /// the last install (`owners` is the coordinator's current table).
    ///
    /// A [`ViewUpdate::Diff`] patches the installed view in place —
    /// replacement metadata plus an [`ArrangementDiff`] replay onto the
    /// cached snapshot — so the write-lock hold is O(changed), not
    /// O(shard pairs). The snapshot `Arc` is mutated through
    /// [`Arc::make_mut`]: unique in steady state (in-place patch), and a
    /// reader still holding the old buffer mid-answer just forces one
    /// fresh clone, exactly like the old double-buffer scheme.
    fn install(&self, shard: usize, update: ViewUpdate, rejected: u64, owners: &[(usize, UserId)]) {
        let mut inner = self.write_inner();
        match update {
            ViewUpdate::Full(view) => {
                debug_assert!(
                    view.epoch >= inner.views[shard].epoch,
                    "views are monotonic"
                );
                inner.views[shard] = *view;
            }
            ViewUpdate::Diff(delta) => {
                let view = &mut inner.views[shard];
                debug_assert_eq!(
                    view.epoch, delta.parent_epoch,
                    "a view diff must extend the installed view (shard {shard})"
                );
                if view.epoch == delta.parent_epoch {
                    Arc::make_mut(&mut view.assignments).apply_diff(&delta.diff);
                }
                view.epoch = delta.epoch;
                view.users = delta.users;
                view.pairs = delta.pairs;
                view.breakdown = delta.breakdown;
                view.tracker = delta.tracker;
                view.stats = delta.stats;
            }
            // Never installed: the dispatcher treats a lost shipment
            // as a cache-dirty event and refreshes wholesale at the
            // recovery barrier instead.
            ViewUpdate::Lost => return,
        }
        inner.rejected = rejected;
        if owners.len() > inner.owners.len() {
            let from = inner.owners.len();
            inner.owners.extend_from_slice(&owners[from..]);
        }
    }

    /// Re-reads every shard plus the entity tables (after
    /// barrier-executed operations — the only place event-side state can
    /// change). Rebuilds the view vector from scratch rather than
    /// patching it in place so a reshard that changed the shard count
    /// installs a complete, torn-free replacement in one write-lock
    /// hold: readers see either the old owner table with the old views
    /// or the new with the new, never a mix.
    fn refresh_all(&self, engine: &ShardedEngine) {
        let views = (0..engine.num_shards())
            .map(|k| ShardView::of(engine.shard(k)))
            .collect();
        let mut inner = self.write_inner();
        inner.views = views;
        inner.rejected = engine.rejected_count();
        inner.owners.clear();
        inner.owners.extend_from_slice(engine.owners());
        inner.capacities.clear();
        inner
            .capacities
            .extend(engine.instance().events().iter().map(|e| e.capacity));
        inner.migrations.clear();
        inner
            .migrations
            .extend_from_slice(engine.shard_migrations());
    }

    /// Records a mirror-validation rejection (fast-path apply refused).
    fn note_rejected(&self, rejected: u64) {
        self.write_inner().rejected = rejected;
    }

    /// Answers one cacheable query, reproducing the serial service's
    /// semantics bit for bit: same shard order, same float summation,
    /// same rejected-delta attribution for the aggregates, and the same
    /// dialect split for the per-entity reads (`strict` selects typed
    /// `NotFound` over the legacy silent `[]` / `(0, 0)` answers).
    ///
    /// Returns `None` for the queries the cache cannot serve
    /// (`MergedSnapshot` consistency is checked separately by
    /// [`QueryCache::merged_snapshot`]; `DurabilityStats` lives with
    /// the dispatcher) — the caller falls through to the dispatch
    /// queue.
    fn answer(
        &self,
        query: EngineQuery,
        strict: bool,
    ) -> Option<Result<EngineResponse, EngineError>> {
        let inner = self.read_inner();
        match query {
            EngineQuery::Utility => {
                let mut total = 0.0;
                let mut interest_sum = 0.0;
                let mut interaction_sum = 0.0;
                for view in &inner.views {
                    // lint:allow(no-raw-float-accum): reproduces the serial backend's shard-order plain summation bit for bit
                    total += view.breakdown.total;
                    // lint:allow(no-raw-float-accum): same serial-semantics pin as the total above
                    interest_sum += view.breakdown.interest_sum;
                    // lint:allow(no-raw-float-accum): same serial-semantics pin as the total above
                    interaction_sum += view.breakdown.interaction_sum;
                }
                Some(Ok(EngineResponse::Utility {
                    total,
                    interest_sum,
                    interaction_sum,
                }))
            }
            EngineQuery::Stats => {
                // `reduce` seeds the fold from the first shard — not
                // `Default` — so a single shard's counters (including a
                // *negative* observed drift, which `merged`'s max would
                // clobber with 0.0) pass through unchanged. An engine
                // always has at least one shard; the empty-cache default
                // is unreachable but panic-free.
                let mut merged = inner
                    .views
                    .iter()
                    .map(|view| view.stats)
                    .reduce(|a, b| a.merged(&b))
                    .unwrap_or_default();
                merged.deltas_rejected += inner.rejected;
                Some(Ok(EngineResponse::Stats { stats: merged }))
            }
            EngineQuery::ShardStats => {
                let shards = inner
                    .views
                    .iter()
                    .enumerate()
                    .map(|(k, view)| {
                        let mut stats = view.stats;
                        if k == 0 {
                            stats.deltas_rejected += inner.rejected;
                        }
                        let moved = inner.migrations.get(k).copied().unwrap_or((0, 0));
                        ShardStatsEntry {
                            shard: k,
                            users: view.users,
                            pairs: view.pairs,
                            utility: view.breakdown.total,
                            stats,
                            moved_in: moved.0,
                            moved_out: moved.1,
                        }
                    })
                    .collect();
                Some(Ok(EngineResponse::ShardStats { shards }))
            }
            EngineQuery::AssignmentsOf { user } => {
                let Some(&(shard, local)) = inner.owners.get(user.index()) else {
                    if strict {
                        return Some(Err(EngineError::NotFound {
                            entity: crate::error::EntityRef::User { user },
                        }));
                    }
                    return Some(Ok(EngineResponse::Assignments {
                        user,
                        events: Vec::new(),
                    }));
                };
                // A just-registered user whose creating apply has not yet
                // installed its shard view (only possible concurrently
                // with that apply, never after its ack) reads as having
                // no assignments yet.
                let view = &inner.views[shard].assignments;
                let events = if local.index() < view.num_users() {
                    view.events_of(local).to_vec()
                } else {
                    Vec::new()
                };
                Some(Ok(EngineResponse::Assignments { user, events }))
            }
            EngineQuery::EventLoad { event } => {
                let Some(&capacity) = inner.capacities.get(event.index()) else {
                    if strict {
                        return Some(Err(EngineError::NotFound {
                            entity: crate::error::EntityRef::Event { event },
                        }));
                    }
                    return Some(Ok(EngineResponse::EventLoad {
                        event,
                        load: 0,
                        capacity: 0,
                    }));
                };
                // Merge the per-shard loads in the connection thread —
                // the read never touches the dispatch queue, exactly
                // like the aggregate queries. (Event-side growth always
                // barriers and refreshes every view, so the bound check
                // only matters mid-barrier.)
                let load = inner
                    .views
                    .iter()
                    .map(|view| {
                        if event.index() < view.assignments.num_events() {
                            view.assignments.load_of(event)
                        } else {
                            0
                        }
                    })
                    .sum();
                Some(Ok(EngineResponse::EventLoad {
                    event,
                    load,
                    capacity,
                }))
            }
            // `MergedSnapshot` consistency is checked separately by
            // `merged_snapshot`; `DurabilityStats` lives with the
            // dispatcher; `OverloadStats` is answered even earlier, in
            // the connection loop, straight from the shared counters.
            EngineQuery::MergedSnapshot
            | EngineQuery::DurabilityStats
            | EngineQuery::OverloadStats => None,
        }
    }

    /// Serves `MergedSnapshot` from the cached per-shard views when they
    /// form a *consistent checkpoint* — every user in the owner table
    /// resolves inside its shard's assignment snapshot. Returns `None`
    /// (→ barrier fallback) while a user-creating apply is still in
    /// flight, i.e. its view has not been installed yet.
    ///
    /// Bit-exactness: pairs are re-emitted per global user in ascending
    /// id order — exactly [`igepa_core::Arrangement::pairs`]'s order on
    /// the merged arrangement — and the utility is read from a fresh
    /// [`UtilityTracker`] absorbing every view's tracker, which by
    /// exact-sum partition independence equals the serial backend's
    /// from-scratch `merged.utility_value(instance)` bit for bit.
    fn merged_snapshot(&self) -> Option<EngineResponse> {
        let inner = self.read_inner();
        let mut pairs = Vec::new();
        for (u, &(shard, local)) in inner.owners.iter().enumerate() {
            let view = &inner.views[shard].assignments;
            if local.index() >= view.num_users() {
                return None;
            }
            let user = UserId::new(u);
            pairs.extend(view.events_of(local).iter().map(|&v| (v, user)));
        }
        let mut tracker = UtilityTracker::new();
        for view in &inner.views {
            tracker.absorb(&view.tracker);
        }
        let beta = inner.views[0].breakdown.beta;
        Some(EngineResponse::Snapshot {
            num_events: inner.capacities.len(),
            num_users: inner.owners.len(),
            utility: tracker.breakdown(beta).total,
            pairs,
        })
    }
}

/// Shared overload-control state: the admission policy plus the live
/// counters behind the `OverloadStats` query. Connection threads are
/// the admission side (check-and-increment before enqueueing, shed
/// accounting); the dispatcher is the drain side (decrement at
/// dequeue, deadline-expiry accounting, the read-only latch). Worker
/// completions never touch the depth — admission bounds *requests*,
/// not internal bookkeeping traffic.
struct OverloadState {
    policy: AdmissionPolicy,
    /// Requests admitted to the dispatch queue (or a barrier backlog)
    /// and not yet picked up for execution.
    queue_depth: AtomicUsize,
    /// High-water mark of `queue_depth` since the server started.
    high_water: AtomicUsize,
    /// Mutations refused with [`EngineError::Overloaded`].
    shed: AtomicU64,
    /// Requests dropped with [`EngineError::DeadlineExceeded`].
    deadline_expired: AtomicU64,
    /// Read-only degraded mode: latched when the write-ahead log
    /// reports an append failure. Mutations shed from then on; cached
    /// reads keep answering. Only a restart (with a repaired WAL)
    /// clears it — a log that failed once cannot be trusted to have
    /// appended the next record either.
    read_only: AtomicBool,
}

impl OverloadState {
    fn shared(policy: AdmissionPolicy) -> Arc<Self> {
        Arc::new(OverloadState {
            policy,
            queue_depth: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            read_only: AtomicBool::new(false),
        })
    }

    /// Admission check-and-enqueue for one mutating request, called
    /// from a connection thread. On refusal nothing was enqueued and
    /// the caller answers immediately — refusal is *typed and
    /// instant*, never a silent drop or an unbounded wait.
    fn try_enqueue_mutation(&self) -> Result<(), EngineError> {
        let refuse = |depth: usize| {
            self.shed.fetch_add(1, Ordering::SeqCst);
            EngineError::Overloaded {
                queue_depth: depth,
                retry_after_ms: self.policy.retry_after_ms(),
            }
        };
        if self.read_only.load(Ordering::SeqCst) {
            return Err(refuse(self.queue_depth.load(Ordering::SeqCst)));
        }
        match self.policy.max_queue() {
            None => {
                self.note_enqueued();
                Ok(())
            }
            Some(cap) => {
                // One CAS covers check + increment, so concurrent
                // connections cannot stampede past the cap.
                let admitted =
                    self.queue_depth
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |depth| {
                            if depth < cap {
                                Some(depth + 1)
                            } else {
                                None
                            }
                        });
                match admitted {
                    Ok(prev) => {
                        self.high_water.fetch_max(prev + 1, Ordering::SeqCst);
                        Ok(())
                    }
                    Err(depth) => Err(refuse(depth)),
                }
            }
        }
    }

    /// One non-mutating (or serial-path) message entered the queue.
    /// Reads are always admitted: each connection keeps at most one
    /// request in the queue, so read depth is bounded by the
    /// connection count, and shedding them would defeat the "reads
    /// keep flowing" degradation contract.
    fn note_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.high_water.fetch_max(depth, Ordering::SeqCst);
    }

    /// One counted message was picked up for execution. Saturating:
    /// wiring-bug messages were never counted in.
    fn note_dequeued(&self) {
        let _ = self
            .queue_depth
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |d| d.checked_sub(1));
    }

    fn note_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::SeqCst);
    }

    /// Builds (and accounts) a shed refusal outside the enqueue CAS —
    /// the dispatcher's re-check of the read-only latch.
    fn shed_now(&self) -> EngineError {
        self.shed.fetch_add(1, Ordering::SeqCst);
        EngineError::Overloaded {
            queue_depth: self.queue_depth.load(Ordering::SeqCst),
            retry_after_ms: self.policy.retry_after_ms(),
        }
    }

    fn enter_read_only(&self) {
        self.read_only.store(true, Ordering::SeqCst);
    }

    fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::SeqCst)
    }

    fn stats(&self) -> OverloadStats {
        OverloadStats {
            policy: self.policy.describe(),
            queue_depth: self.queue_depth.load(Ordering::SeqCst) as u64,
            high_water: self.high_water.load(Ordering::SeqCst) as u64,
            shed: self.shed.load(Ordering::SeqCst),
            deadline_expired: self.deadline_expired.load(Ordering::SeqCst),
            read_only: self.read_only.load(Ordering::SeqCst),
        }
    }
}

/// Messages flowing into a server's dispatch thread.
enum ServerMsg {
    /// One decoded-later wire line plus the channel its response goes to
    /// (the serial server's path; connections decode nothing).
    Request { line: String, reply: Sender<String> },
    /// One envelope already decoded by the connection thread (the
    /// sharded server's path; cacheable queries were answered before
    /// ever reaching this queue).
    Envelope {
        envelope: RequestEnvelope,
        /// When the connection thread admitted the envelope; the
        /// dispatcher checks the envelope's `deadline_ms` budget
        /// against this at dequeue.
        received_at: Instant,
        reply: Sender<String>,
    },
    /// A per-shard worker finished an apply.
    Completion {
        shard: usize,
        outcome: ApplyOutcome,
        /// The shard's post-apply read-state, for the query cache —
        /// usually a diff against the previously shipped view.
        view: ViewUpdate,
        envelope_id: u64,
        reply: Sender<String>,
    },
    /// Stop dispatching and return the backend.
    Shutdown,
}

/// Messages a per-shard worker consumes.
enum WorkerMsg {
    /// Apply a shard-local, mirror-validated delta.
    Apply {
        delta: InstanceDelta,
        envelope_id: u64,
        reply: Sender<String>,
    },
    /// Hand the shard back to the coordinator (barrier).
    Surrender,
    /// Receive the shard back after a barrier (boxed: a `Shard` is a few
    /// hundred bytes and barriers are rare, so keep the common `Apply`
    /// variant small).
    Resume(Box<Shard>),
    /// Exit the worker loop (the shard was already surrendered).
    Shutdown,
}

/// A running server: the bound address plus the handles needed to stop it
/// and recover the backend.
pub struct ServerHandle<B> {
    addr: SocketAddr,
    queue: Sender<ServerMsg>,
    shutdown: Arc<AtomicBool>,
    accept_handle: JoinHandle<()>,
    dispatch_handle: JoinHandle<B>,
}

impl<B> ServerHandle<B> {
    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight work, joins every thread and
    /// returns the backend (with all shards re-attached, for the sharded
    /// server) so callers can inspect the final served state.
    pub fn shutdown(self) -> io::Result<B> {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.queue.send(ServerMsg::Shutdown);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.accept_handle
            .join()
            .map_err(|_| io::Error::other("accept thread panicked"))?;
        self.dispatch_handle
            .join()
            .map_err(|_| io::Error::other("dispatch thread panicked"))
    }
}

/// Entry points for serving an engine over TCP.
pub struct EngineServer;

impl EngineServer {
    /// Serves any backend behind one dispatch thread: requests from all
    /// connections are executed serially against the wrapped
    /// [`EngineService`], in arrival order.
    pub fn serve<B: EngineBackend + Send + 'static>(
        listener: TcpListener,
        service: EngineService<B>,
        framing: Framing,
    ) -> io::Result<ServerHandle<B>> {
        // The serial server carries no EngineConfig (its backend is
        // generic), so it serves unbounded — exactly the pre-admission
        // behaviour.
        let overload = OverloadState::shared(AdmissionPolicy::Unbounded);
        let dispatch_overload = Arc::clone(&overload);
        spawn_server(
            listener,
            framing,
            None,
            overload,
            move |queue_rx, _queue_tx| serial_dispatch(service, queue_rx, dispatch_overload),
        )
    }

    /// Serves a [`ShardedEngine`] with one worker thread per shard:
    /// user-scoped `Apply` requests run concurrently on the owning
    /// shard's worker; aggregate queries are answered from the shared
    /// [`QueryCache`] in the connection threads (no barrier, no dispatch
    /// queue); everything else barriers (see the module docs).
    pub fn serve_sharded(
        listener: TcpListener,
        engine: ShardedEngine,
        framing: Framing,
    ) -> io::Result<ServerHandle<ShardedEngine>> {
        Self::serve_sharded_inner(listener, engine, framing, None, None)
    }

    /// [`EngineServer::serve_sharded`] plus durability: every admitted
    /// mutating request is appended to `durability`'s write-ahead log
    /// **before** it executes (and before its ack goes out), `Checkpoint`
    /// requests write a consistent snapshot at a barrier and compact
    /// covered WAL segments, `DurabilityStats` reads live counters, and
    /// automatic checkpoints run every
    /// [`DurabilityController::set_snapshot_every`] logged requests.
    /// After a crash, [`crate::durability::recover`] rebuilds the served
    /// state bit for bit from the durability directory.
    pub fn serve_sharded_durable(
        listener: TcpListener,
        engine: ShardedEngine,
        framing: Framing,
        durability: DurabilityController,
    ) -> io::Result<ServerHandle<ShardedEngine>> {
        Self::serve_sharded_inner(listener, engine, framing, Some(durability), None)
    }

    /// [`EngineServer::serve_sharded`] (or the durable flavour, when
    /// `durability` is `Some`) with a deterministic [`FaultInjector`]
    /// wired into the worker pool and the WAL path — the entry point
    /// of the fault-injection harness ([`crate::faults`]). Keep a
    /// clone of the `Arc` to read [`FaultInjector::counts`] after
    /// shutdown. A [`FaultPlan::quiet`](crate::faults::FaultPlan::quiet)
    /// injector serves identically to the plain flavours.
    pub fn serve_sharded_faulted(
        listener: TcpListener,
        engine: ShardedEngine,
        framing: Framing,
        durability: Option<DurabilityController>,
        faults: Arc<FaultInjector>,
    ) -> io::Result<ServerHandle<ShardedEngine>> {
        Self::serve_sharded_inner(listener, engine, framing, durability, Some(faults))
    }

    fn serve_sharded_inner(
        listener: TcpListener,
        engine: ShardedEngine,
        framing: Framing,
        durability: Option<DurabilityController>,
        faults: Option<Arc<FaultInjector>>,
    ) -> io::Result<ServerHandle<ShardedEngine>> {
        let cache = QueryCache::from_engine(&engine);
        // Admission comes from the engine's own config: the default
        // `AdmissionPolicy::Unbounded` reproduces the pre-admission
        // server exactly; a bounded policy makes overload a typed,
        // immediate refusal instead of unbounded queue growth.
        let overload = OverloadState::shared(engine.config().shard.admission);
        let dispatch_overload = Arc::clone(&overload);
        spawn_server(
            listener,
            framing,
            Some(cache.clone()),
            overload,
            move |rx, tx| {
                ShardDispatcher::new(engine, tx, cache, durability, dispatch_overload, faults)
                    .run(rx)
            },
        )
    }
}

/// Spawns the accept loop and the dispatch thread shared by both server
/// flavours. `dispatch` consumes the queue until shutdown and returns the
/// backend; it also receives a sender so worker threads can feed
/// completions into the same queue. With a `cache`, connection threads
/// decode envelopes themselves and answer cacheable queries locally.
fn spawn_server<B, F>(
    listener: TcpListener,
    framing: Framing,
    cache: Option<Arc<QueryCache>>,
    overload: Arc<OverloadState>,
    dispatch: F,
) -> io::Result<ServerHandle<B>>
where
    B: Send + 'static,
    F: FnOnce(Receiver<ServerMsg>, Sender<ServerMsg>) -> B + Send + 'static,
{
    let addr = listener.local_addr()?;
    let (queue_tx, queue_rx) = mpsc::channel::<ServerMsg>();
    let shutdown = Arc::new(AtomicBool::new(false));

    let dispatch_queue_tx = queue_tx.clone();
    let dispatch_handle = thread::spawn(move || dispatch(queue_rx, dispatch_queue_tx));

    let accept_queue = queue_tx.clone();
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_handle = thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let queue = accept_queue.clone();
            let cache = cache.clone();
            let overload = Arc::clone(&overload);
            thread::spawn(move || connection_loop(stream, queue, framing, cache, overload));
        }
    });

    Ok(ServerHandle {
        addr,
        queue: queue_tx,
        shutdown,
        accept_handle,
        dispatch_handle,
    })
}

/// Per-connection read/dispatch/write loop. Requests from one connection
/// are answered in order; the loop ends on client disconnect, a dead
/// dispatcher, or a write failure.
///
/// With a query cache (the sharded server), the connection thread itself
/// decodes each line: cacheable queries are answered straight from the
/// cache — the read path shares nothing with the dispatch queue — and
/// everything else is forwarded pre-decoded. Malformed lines answer
/// locally under a per-connection fallback id.
///
/// The connection thread is also the **admission side** of overload
/// control: a mutation is checked against the [`OverloadState`] *before*
/// it is enqueued, and at saturation (or in read-only degraded mode) it
/// is refused right here with a typed [`EngineError::Overloaded`] —
/// nothing enters the queue, so queue depth is bounded by the policy cap
/// no matter how hard clients push. Cache-answered reads never touch
/// admission at all, which is what keeps them flowing while mutations
/// shed.
fn connection_loop(
    stream: TcpStream,
    queue: Sender<ServerMsg>,
    framing: Framing,
    cache: Option<Arc<QueryCache>>,
    overload: Arc<OverloadState>,
) {
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut fallback_seq = 0u64;
    while let Ok(Some(line)) = read_frame(&mut reader, framing) {
        let (reply_tx, reply_rx) = mpsc::channel();
        let msg = match &cache {
            None => {
                // Serial path: lines are opaque here, so every one is
                // counted through the (always unbounded) depth gauge.
                overload.note_enqueued();
                ServerMsg::Request {
                    line,
                    reply: reply_tx,
                }
            }
            Some(cache) => {
                fallback_seq += 1;
                let envelope = match decode_request_envelope(&line, fallback_seq) {
                    Ok(envelope) => envelope,
                    Err(e) => {
                        let response = ResponseEnvelope {
                            id: fallback_seq,
                            result: Err(EngineError::Malformed { detail: e.message }),
                        };
                        if write_frame(&mut writer, framing, &encode_response_envelope(&response))
                            .is_err()
                        {
                            break;
                        }
                        continue;
                    }
                };
                let supported =
                    envelope.version == PROTOCOL_VERSION || envelope.version == LEGACY_VERSION;
                if let (true, EngineRequest::Query { query }) = (supported, &envelope.body) {
                    // `strict` selects the dialect for per-entity
                    // reads: typed NotFound vs the legacy silent
                    // answers (`strict == false` never errors).
                    let strict = envelope.version == PROTOCOL_VERSION;
                    if matches!(query, EngineQuery::OverloadStats) {
                        // Answered right here from the shared atomics:
                        // observing overload must neither queue behind
                        // it nor barrier anything.
                        let response = ResponseEnvelope {
                            id: envelope.id,
                            result: Ok(EngineResponse::OverloadStats {
                                stats: overload.stats(),
                            }),
                        };
                        if write_frame(&mut writer, framing, &encode_response_envelope(&response))
                            .is_err()
                        {
                            break;
                        }
                        continue;
                    }
                    if let Some(result) = cache.answer(*query, strict) {
                        let response = ResponseEnvelope {
                            id: envelope.id,
                            result,
                        };
                        if write_frame(&mut writer, framing, &encode_response_envelope(&response))
                            .is_err()
                        {
                            break;
                        }
                        continue;
                    }
                    if matches!(query, EngineQuery::MergedSnapshot) {
                        // Served from the cache when the views form a
                        // consistent checkpoint (both dialects answer
                        // identically); falls through to the barrier
                        // path while an owner row is still unresolved.
                        if let Some(snapshot) = cache.merged_snapshot() {
                            let response = ResponseEnvelope {
                                id: envelope.id,
                                result: Ok(snapshot),
                            };
                            if write_frame(
                                &mut writer,
                                framing,
                                &encode_response_envelope(&response),
                            )
                            .is_err()
                            {
                                break;
                            }
                            continue;
                        }
                    }
                }
                // Admission: mutations pass the cap-and-degraded-mode
                // gate (refusals are typed and immediate); everything
                // else heading for the queue — the non-cacheable reads
                // and barrier fallbacks — is always admitted, each
                // connection contributing at most one queued request.
                // Unsupported versions skip the gate so the dispatcher
                // can answer `Unsupported` (the more specific error).
                if supported && is_mutating(&envelope.body) {
                    if let Err(refusal) = overload.try_enqueue_mutation() {
                        let strict = envelope.version == PROTOCOL_VERSION;
                        let response = ResponseEnvelope {
                            id: envelope.id,
                            result: shed_error(strict, refusal),
                        };
                        if write_frame(&mut writer, framing, &encode_response_envelope(&response))
                            .is_err()
                        {
                            break;
                        }
                        continue;
                    }
                } else {
                    overload.note_enqueued();
                }
                ServerMsg::Envelope {
                    envelope,
                    received_at: Instant::now(),
                    reply: reply_tx,
                }
            }
        };
        if queue.send(msg).is_err() {
            break;
        }
        let Ok(response) = reply_rx.recv() else {
            break;
        };
        if write_frame(&mut writer, framing, &response).is_err() {
            break;
        }
    }
}

/// The serial dispatcher: one service, strict arrival order.
fn serial_dispatch<B: EngineBackend>(
    mut service: EngineService<B>,
    queue: Receiver<ServerMsg>,
    overload: Arc<OverloadState>,
) -> B {
    let mut fallback_seq = 0u64;
    while let Ok(msg) = queue.recv() {
        match msg {
            ServerMsg::Request { line, reply } => {
                overload.note_dequeued();
                fallback_seq += 1;
                let envelope = service.handle_line(&line, fallback_seq);
                let _ = reply.send(encode_response_envelope(&envelope));
            }
            // The serial accept loop never produces these — decoded
            // envelopes and worker completions belong to the sharded
            // server. Refuse them with a typed error instead of
            // killing the dispatch thread over a wiring bug.
            ServerMsg::Envelope {
                envelope, reply, ..
            } => {
                respond(
                    &reply,
                    ResponseEnvelope {
                        id: envelope.id,
                        result: Err(EngineError::Internal {
                            detail: "serial dispatcher received a pre-decoded envelope".to_string(),
                        }),
                    },
                );
            }
            ServerMsg::Completion {
                envelope_id, reply, ..
            } => {
                respond(
                    &reply,
                    ResponseEnvelope {
                        id: envelope_id,
                        result: Err(EngineError::Internal {
                            detail: "serial dispatcher received a worker completion".to_string(),
                        }),
                    },
                );
            }
            ServerMsg::Shutdown => break,
        }
    }
    service.into_backend()
}

/// Whether a delta routes to a single owning shard (the worker fast
/// path). Event-scoped deltas broadcast and must barrier.
fn is_user_scoped(delta: &InstanceDelta) -> bool {
    !matches!(
        delta,
        InstanceDelta::AddEvent { .. }
            | InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(_),
                ..
            }
    )
}

struct WorkerHandle {
    tx: Sender<WorkerMsg>,
    join: JoinHandle<()>,
}

/// The per-shard worker dispatcher. Owns the coordinator (mirror, quota
/// tables, routing) while the shards live on worker threads; see the
/// module docs for the fast-path/barrier split.
struct ShardDispatcher {
    engine: ShardedEngine,
    workers: Vec<WorkerHandle>,
    /// Shards handed back by workers during a barrier.
    shard_return_rx: Receiver<(usize, Shard)>,
    /// Sender side of the completion queue, kept so a reshard can spawn
    /// replacement workers wired exactly like the initial pool.
    completion_tx: Sender<ServerMsg>,
    /// Sender side of the shard-return channel (same purpose).
    shard_return_tx: Sender<(usize, Shard)>,
    /// Worker applies in flight (fast-path requests not yet completed).
    pending: usize,
    /// Whether the shards currently live in `engine` (true) or on the
    /// workers (false).
    attached: bool,
    /// Requests buffered while a barrier drained completions.
    backlog: VecDeque<ServerMsg>,
    /// The query cache shared with every connection thread; this
    /// dispatcher is its only writer.
    cache: Arc<QueryCache>,
    /// The write-ahead log + checkpoint controller of the durable server
    /// flavour (`None` on [`EngineServer::serve_sharded`]). Mutating
    /// requests are logged through it *before* they run.
    durability: Option<DurabilityController>,
    /// The shared overload counters: this dispatcher is the drain side
    /// (dequeue accounting, deadline expiry, the read-only latch).
    overload: Arc<OverloadState>,
    /// The fault-injection harness, when serving through
    /// [`EngineServer::serve_sharded_faulted`].
    faults: Option<Arc<FaultInjector>>,
    /// True after a lost view shipment (fault injection) until the
    /// recovery barrier refreshes the cache: installs are suppressed
    /// (the chain is broken) and apply acks are parked in
    /// `deferred_acks` so no client sees an ack before the cache
    /// reflects its apply.
    cache_dirty: bool,
    /// Acks parked while `cache_dirty`; released by `barrier` right
    /// after the wholesale cache refresh.
    deferred_acks: Vec<(Sender<String>, ResponseEnvelope)>,
}

impl ShardDispatcher {
    fn new(
        mut engine: ShardedEngine,
        completion_tx: Sender<ServerMsg>,
        cache: Arc<QueryCache>,
        durability: Option<DurabilityController>,
        overload: Arc<OverloadState>,
        faults: Option<Arc<FaultInjector>>,
    ) -> Self {
        let (shard_return_tx, shard_return_rx) = mpsc::channel();
        let shards = engine.detach_shards();
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(k, shard)| {
                spawn_worker(
                    k,
                    shard,
                    completion_tx.clone(),
                    shard_return_tx.clone(),
                    faults.clone(),
                )
            })
            .collect();
        ShardDispatcher {
            engine,
            workers,
            shard_return_rx,
            completion_tx,
            shard_return_tx,
            pending: 0,
            attached: false,
            backlog: VecDeque::new(),
            cache,
            durability,
            overload,
            faults,
            cache_dirty: false,
            deferred_acks: Vec::new(),
        }
    }

    fn run(mut self, queue: Receiver<ServerMsg>) -> ShardedEngine {
        loop {
            // Barrier leftovers first, then the shared queue (requests
            // and worker completions interleave there in arrival order).
            let msg = match self.backlog.pop_front() {
                Some(msg) => msg,
                None => match queue.recv() {
                    Ok(msg) => msg,
                    Err(_) => break,
                },
            };
            match msg {
                // Sharded connections decode envelopes themselves; a
                // raw line here is a wiring bug. Refuse it (id 0: the
                // line was never decoded, so no correlation id exists)
                // without killing the dispatcher.
                ServerMsg::Request { reply, .. } => {
                    respond(
                        &reply,
                        ResponseEnvelope {
                            id: 0,
                            result: Err(EngineError::Internal {
                                detail: "sharded dispatcher received an undecoded line".to_string(),
                            }),
                        },
                    );
                }
                ServerMsg::Envelope {
                    envelope,
                    received_at,
                    reply,
                } => {
                    // Dequeued for execution (backlogged envelopes stay
                    // counted while they wait out a barrier and land
                    // here exactly once afterwards).
                    self.overload.note_dequeued();
                    self.on_request(envelope, received_at, reply, &queue)
                }
                ServerMsg::Completion {
                    shard,
                    outcome,
                    view,
                    envelope_id,
                    reply,
                } => self.on_completion(shard, outcome, view, envelope_id, reply, &queue),
                ServerMsg::Shutdown => break,
            }
        }
        // Drain in-flight applies and bring every shard home before
        // handing the engine back.
        self.barrier(&queue);
        for worker in &self.workers {
            let _ = worker.tx.send(WorkerMsg::Shutdown);
        }
        for worker in self.workers {
            let _ = worker.join.join();
        }
        self.engine
    }

    fn on_request(
        &mut self,
        envelope: RequestEnvelope,
        received_at: Instant,
        reply: Sender<String>,
        queue: &Receiver<ServerMsg>,
    ) {
        // Version-gate BEFORE routing, mirroring `dispatch_envelope`: an
        // unsupported dialect must never reach the fast path and mutate
        // state (the serial server answers `Unsupported` and so must we).
        let strict = envelope.version == PROTOCOL_VERSION;
        if !strict && envelope.version != LEGACY_VERSION {
            respond(
                &reply,
                ResponseEnvelope {
                    id: envelope.id,
                    result: Err(EngineError::Unsupported {
                        version: envelope.version,
                    }),
                },
            );
            return;
        }
        // Deadline gate: a budget that expired while the request sat in
        // the queue drops it before any dead work — before the WAL sees
        // it, before any shard executes it. (`elapsed >= deadline`, so
        // a zero budget expires deterministically.)
        if let Some(deadline_ms) = envelope.deadline_ms {
            let waited_ms = u64::try_from(received_at.elapsed().as_millis()).unwrap_or(u64::MAX);
            if waited_ms >= deadline_ms {
                self.overload.note_deadline_expired();
                respond(
                    &reply,
                    ResponseEnvelope {
                        id: envelope.id,
                        result: shed_error(strict, EngineError::DeadlineExceeded { deadline_ms }),
                    },
                );
                return;
            }
        }
        // A mutation that slipped past the connection-side gate before
        // the read-only latch flipped still must not execute: the gate
        // is re-checked at the authoritative single-threaded point.
        if is_mutating(&envelope.body) && self.overload.is_read_only() {
            respond(
                &reply,
                ResponseEnvelope {
                    id: envelope.id,
                    result: shed_error(strict, self.overload.shed_now()),
                },
            );
            return;
        }
        // Write-ahead: an admitted mutating request hits the log before
        // it executes and before any ack can go out. Rejections are
        // logged too — replay reproduces them (and their absence from
        // the state) deterministically. A failed append refuses the
        // request (what is not logged must not execute) AND latches
        // read-only degraded mode: a WAL that failed once cannot vouch
        // for the next append either, so every subsequent mutation is
        // shed while cached reads keep answering.
        if is_mutating(&envelope.body) {
            // Fault injection: a planned stall sleeps here (ack latency
            // absorbs it, exactly like a congested disk); a planned
            // append failure takes the same degraded path as a real one.
            let forced_fail = self
                .faults
                .as_ref()
                .is_some_and(|f| self.durability.is_some() && f.wal_append_fault());
            if let Some(controller) = &mut self.durability {
                let epoch = self.engine.catalog().epoch();
                let logged = if forced_fail {
                    Err(io::Error::other("fault injection"))
                } else {
                    controller
                        .log(envelope.id, epoch, &envelope.body)
                        .map(|_| ())
                };
                if let Err(e) = logged {
                    self.overload.enter_read_only();
                    respond(
                        &reply,
                        ResponseEnvelope {
                            id: envelope.id,
                            result: durability_error(
                                strict,
                                format!(
                                    "write-ahead log append failed: {e}; serving is now read-only"
                                ),
                            ),
                        },
                    );
                    return;
                }
            }
        }
        match &envelope.body {
            // A consistent checkpoint: drain to a barrier, serialize the
            // quiescent engine at the WAL coverage point, compact. The
            // non-durable server falls through to `dispatch_envelope`,
            // which rejects the request.
            EngineRequest::Checkpoint if self.durability.is_some() => {
                self.barrier(queue);
                let result = match self.durability.as_mut() {
                    Some(controller) => {
                        let state = self.engine.snapshot_state(controller.last_seq());
                        match controller.checkpoint(&state) {
                            Ok(outcome) => Ok(EngineResponse::CheckpointDone {
                                wal_seq: outcome.wal_seq,
                                bytes: outcome.bytes,
                            }),
                            Err(e) => durability_error(strict, format!("checkpoint failed: {e}")),
                        }
                    }
                    // Unreachable (the arm guard checked `is_some`),
                    // but refusing beats panicking the dispatcher.
                    None => durability_error(strict, "durability is not enabled".to_string()),
                };
                self.cache.refresh_all(&self.engine);
                respond(
                    &reply,
                    ResponseEnvelope {
                        id: envelope.id,
                        result,
                    },
                );
                self.redistribute();
            }
            // Live resharding: the durability layer is the transaction
            // seam. The `Reshard` record is already in the WAL (logged
            // above, say at sequence S), so the pre-migration checkpoint
            // is cut at S-1: a crash *before* the migration lands recovers
            // the old shape and replays the record — re-performing the
            // identical migration — while a crash *after* the
            // post-migration checkpoint at S restores the new shape
            // directly. Requests that arrived while the barrier drained
            // are parked in the backlog and replayed afterwards against
            // the rewritten owner table — moved users are re-routed to
            // their new owner, never refused. Checkpoint failures are
            // non-fatal (the WAL record alone makes replay exact); they
            // only widen the replay window.
            EngineRequest::Reshard { .. } => {
                self.barrier(queue);
                if let Some(controller) = self.durability.as_mut() {
                    // Skip the pre-cut when S-1 is already covered:
                    // snapshots write in place under their coverage
                    // sequence, and a torn rewrite of an existing valid
                    // file would destroy it.
                    let pre_seq = controller.last_seq().saturating_sub(1);
                    if controller.last_checkpoint_seq() < pre_seq {
                        let state = self.engine.snapshot_state(pre_seq);
                        if let Err(e) = controller.checkpoint(&state) {
                            eprintln!("igepa-engine: pre-migration checkpoint failed: {e}");
                        }
                    }
                }
                let response = dispatch_envelope(&mut self.engine, &envelope);
                if matches!(&response.result, Ok(EngineResponse::Resharded { .. })) {
                    if let Some(controller) = self.durability.as_mut() {
                        let state = self.engine.snapshot_state(controller.last_seq());
                        if let Err(e) = controller.checkpoint(&state) {
                            eprintln!("igepa-engine: post-migration checkpoint failed: {e}");
                        }
                    }
                }
                self.cache.refresh_all(&self.engine);
                respond(&reply, response);
                self.resize_workers();
            }
            // Live durability counters, answered right here — no barrier,
            // no backend dispatch. (The serial service answers the
            // durability-off shape for backends reached directly.)
            EngineRequest::Query {
                query: EngineQuery::DurabilityStats,
            } => {
                let response = match &self.durability {
                    Some(controller) => {
                        let view = controller.stats();
                        EngineResponse::DurabilityStats {
                            enabled: true,
                            policy: view.policy,
                            wal_records: view.wal_records,
                            wal_bytes: view.wal_bytes,
                            fsyncs: view.fsyncs,
                            segments: view.segments,
                            checkpoints: view.checkpoints,
                            last_checkpoint_seq: view.last_checkpoint_seq,
                        }
                    }
                    None => EngineResponse::DurabilityStats {
                        enabled: false,
                        policy: "off".to_string(),
                        wal_records: 0,
                        wal_bytes: 0,
                        fsyncs: 0,
                        segments: 0,
                        checkpoints: 0,
                        last_checkpoint_seq: 0,
                    },
                };
                respond(
                    &reply,
                    ResponseEnvelope {
                        id: envelope.id,
                        result: Ok(response),
                    },
                );
            }
            // Fast path: a user-scoped delta validated on the mirror runs
            // on the owning shard's worker, concurrently with other
            // shards' applies.
            EngineRequest::Apply { delta } if !self.attached && is_user_scoped(delta) => {
                match self.engine.plan_user_delta(delta) {
                    Ok((k, local)) => {
                        // Count the apply as pending only once the worker
                        // has it; a dead worker (its thread panicked and
                        // dropped the receiver) turns into a typed refusal
                        // instead of poisoning the barrier accounting.
                        match self.workers[k].tx.send(WorkerMsg::Apply {
                            delta: local,
                            envelope_id: envelope.id,
                            reply,
                        }) {
                            Ok(()) => self.pending += 1,
                            Err(mpsc::SendError(msg)) => {
                                if let WorkerMsg::Apply { reply, .. } = msg {
                                    respond(
                                        &reply,
                                        ResponseEnvelope {
                                            id: envelope.id,
                                            result: internal_error(
                                                strict,
                                                format!("shard {k} worker is gone"),
                                            ),
                                        },
                                    );
                                }
                            }
                        }
                    }
                    Err(e) => {
                        self.cache.note_rejected(self.engine.rejected_count());
                        let result = if strict {
                            Err(EngineError::from(&e))
                        } else {
                            Ok(EngineResponse::Rejected {
                                reason: e.to_string(),
                            })
                        };
                        respond(
                            &reply,
                            ResponseEnvelope {
                                id: envelope.id,
                                result,
                            },
                        );
                    }
                }
            }
            // Everything else executes on the fully attached engine
            // through the one service implementation. (Cacheable queries
            // never reach this queue — connection threads answer them
            // from the shared cache.) The cache refreshes BEFORE the
            // response goes out, preserving the never-stale-after-ack
            // guarantee for barrier-executed applies (broadcasts,
            // batches, rebalances) too.
            _ => {
                self.barrier(queue);
                let response = dispatch_envelope(&mut self.engine, &envelope);
                self.cache.refresh_all(&self.engine);
                respond(&reply, response);
                self.redistribute();
                self.maybe_auto_checkpoint(queue);
            }
        }
    }

    /// Runs an automatic checkpoint when enough requests were logged
    /// since the last one (after the triggering ack — checkpointing is
    /// amortized maintenance, never ack latency).
    fn maybe_auto_checkpoint(&mut self, queue: &Receiver<ServerMsg>) {
        let due = self
            .durability
            .as_ref()
            .is_some_and(|c| c.auto_checkpoint_due());
        if !due {
            return;
        }
        self.barrier(queue);
        let Some(controller) = self.durability.as_mut() else {
            return; // unreachable: `due` implies durable
        };
        let state = self.engine.snapshot_state(controller.last_seq());
        if let Err(e) = controller.checkpoint(&state) {
            // Serving continues on the WAL alone; the next checkpoint
            // (automatic or explicit) retries.
            eprintln!("igepa-engine: automatic checkpoint failed: {e}");
        }
        self.cache.refresh_all(&self.engine);
        self.redistribute();
    }

    /// Completion bookkeeping: account the shard outcome, install the
    /// post-apply view in the query cache, count the delta toward the
    /// reconcile interval, and build the client's response with merged
    /// totals (exactly the serial coordinator's `ApplyOutcome`,
    /// pre-reconcile). The caller decides when to send it.
    fn account_apply(
        &mut self,
        shard: usize,
        outcome: ApplyOutcome,
        view: ViewUpdate,
        envelope_id: u64,
    ) -> ResponseEnvelope {
        self.pending -= 1;
        self.engine.note_outcome(shard, &outcome);
        // A lost view shipment (fault injection) breaks the diff chain:
        // stop installing — for this completion and every later one —
        // until the recovery barrier refreshes the cache wholesale.
        // Acks are parked by the callers while `cache_dirty` holds, so
        // the never-stale-after-ack guarantee survives the fault.
        if matches!(view, ViewUpdate::Lost) {
            self.cache_dirty = true;
        }
        // Install the post-apply view BEFORE the ack can go out: once a
        // client sees the ack, every cached read reflects this apply.
        // The owner table rides along so cached `AssignmentsOf` reads can
        // route users registered by this (or any earlier) apply.
        if !self.cache_dirty {
            self.cache.install(
                shard,
                view,
                self.engine.rejected_count(),
                self.engine.owners(),
            );
        }
        let merged = ApplyOutcome {
            kind: outcome.kind,
            repair: outcome.repair,
            utility: self.engine.utility(),
            num_pairs: self.engine.num_pairs(),
        };
        self.engine.note_applied(1);
        ResponseEnvelope {
            id: envelope_id,
            result: Ok(applied_response(merged)),
        }
    }

    /// Barrier-drain variant: account and answer immediately. Applies
    /// drained here did not trigger the pending reconcile themselves, so
    /// a pre-reconcile ack matches the serial semantics (their requests
    /// are concurrent with the triggering one).
    fn complete_apply(
        &mut self,
        shard: usize,
        outcome: ApplyOutcome,
        view: ViewUpdate,
        envelope_id: u64,
        reply: &Sender<String>,
    ) {
        let response = self.account_apply(shard, outcome, view, envelope_id);
        if self.cache_dirty {
            // Mid-barrier with a broken view chain: park the ack until
            // the barrier's wholesale refresh, instead of acking
            // against a cache that does not reflect this apply yet.
            self.deferred_acks.push((reply.clone(), response));
        } else {
            respond(reply, response);
        }
    }

    fn on_completion(
        &mut self,
        shard: usize,
        outcome: ApplyOutcome,
        view: ViewUpdate,
        envelope_id: u64,
        reply: Sender<String>,
        queue: &Receiver<ServerMsg>,
    ) {
        let response = self.account_apply(shard, outcome, view, envelope_id);
        if self.cache_dirty {
            // Recover from the lost shipment now: park this ack, then
            // barrier — which drains the remaining in-flight applies
            // (their acks park too), refreshes the cache from the
            // attached shards, and only then releases every parked ack.
            self.deferred_acks.push((reply, response));
            self.barrier(queue);
            self.redistribute();
            self.maybe_auto_checkpoint(queue);
            return;
        }
        if self.engine.periodic_reconcile_pending() {
            // This apply crossed the reconcile interval. The serial
            // coordinator reconciles before returning from apply, so the
            // reconcile (and the cache refresh reflecting it) must land
            // BEFORE this ack — a synchronous client's post-ack cached
            // reads are then post-reconcile, exactly like the serial
            // service's. The response itself keeps its pre-reconcile
            // merged totals, also exactly like the serial outcome.
            self.barrier(queue);
            self.cache.refresh_all(&self.engine);
            respond(&reply, response);
            self.redistribute();
        } else {
            respond(&reply, response);
        }
        self.maybe_auto_checkpoint(queue);
    }

    /// Drains in-flight applies, collects every shard from its worker and
    /// re-attaches them to the engine (running any due periodic reconcile
    /// while everything is home). No-op when already attached.
    fn barrier(&mut self, queue: &Receiver<ServerMsg>) {
        if self.attached {
            return;
        }
        while self.pending > 0 {
            // The queue can only close if every sender (workers included)
            // is gone; the surrender below then fails loudly instead.
            let Ok(msg) = queue.recv() else { break };
            match msg {
                ServerMsg::Completion {
                    shard,
                    outcome,
                    view,
                    envelope_id,
                    reply,
                } => self.complete_apply(shard, outcome, view, envelope_id, &reply),
                msg => self.backlog.push_back(msg),
            }
        }
        // From here the panics are deliberate: a worker can only die by
        // panicking while it holds its shard, and a shard lost to a dead
        // thread is unrecoverable in-process — no response the dispatcher
        // could synthesize would be correct. Failing loudly here is the
        // robustness contract (durable deployments recover from the WAL).
        for worker in &self.workers {
            worker
                .tx
                .send(WorkerMsg::Surrender)
                // lint:allow(no-panic-in-server-paths): a dead worker took its shard with it; the engine cannot be reassembled, so fail loudly (see the barrier comment)
                .expect("worker alive until shutdown");
        }
        let mut collected: Vec<Option<Shard>> = (0..self.workers.len()).map(|_| None).collect();
        for _ in 0..self.workers.len() {
            let (k, shard) = self
                .shard_return_rx
                .recv()
                // lint:allow(no-panic-in-server-paths): a dead worker took its shard with it; the engine cannot be reassembled, so fail loudly (see the barrier comment)
                .expect("every worker surrenders its shard");
            collected[k] = Some(shard);
        }
        self.engine.attach_shards(
            collected
                .into_iter()
                // lint:allow(no-panic-in-server-paths): a missing shard here means a worker returned another worker's slot — state corruption, not a recoverable request failure
                .map(|s| s.expect("each worker returned one shard"))
                .collect(),
        );
        self.attached = true;
        if self.engine.periodic_reconcile_pending() {
            self.engine.run_pending_reconcile();
        }
        if self.cache_dirty || !self.deferred_acks.is_empty() {
            // A lost view shipment parked acks on the way here: the
            // shards are home and authoritative, so refresh the cache
            // wholesale and only then release the parked responses —
            // every ack a client sees is again backed by the cache.
            self.cache.refresh_all(&self.engine);
            self.cache_dirty = false;
            for (reply, response) in std::mem::take(&mut self.deferred_acks) {
                respond(&reply, response);
            }
        }
    }

    /// Sends the shards back to their workers after a barrier. Callers
    /// refresh the query cache themselves before responding (both barrier
    /// paths do it pre-ack), so no refresh happens here.
    fn redistribute(&mut self) {
        if !self.attached {
            return;
        }
        let shards = self.engine.detach_shards();
        for (k, shard) in shards.into_iter().enumerate() {
            self.workers[k]
                .tx
                .send(WorkerMsg::Resume(Box::new(shard)))
                // lint:allow(no-panic-in-server-paths): a send failure drops the shard on the floor (the worker thread panicked); serving without it would silently corrupt every merged answer
                .expect("worker alive until shutdown");
        }
        self.attached = false;
    }

    /// Hands the shards back to the workers after a reshard. When the
    /// shard count changed, the old pool (every worker idle: barriered,
    /// shard surrendered) is shut down and a fresh pool is spawned with
    /// the rebuilt shards — wired exactly like initial construction, so
    /// each worker's view-diff chain restarts from the full views the
    /// caller just installed. With an unchanged count this is the
    /// ordinary [`ShardDispatcher::redistribute`].
    fn resize_workers(&mut self) {
        if !self.attached {
            return;
        }
        if self.workers.len() == self.engine.num_shards() {
            self.redistribute();
            return;
        }
        for worker in &self.workers {
            let _ = worker.tx.send(WorkerMsg::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join.join();
        }
        let shards = self.engine.detach_shards();
        self.workers = shards
            .into_iter()
            .enumerate()
            .map(|(k, shard)| {
                spawn_worker(
                    k,
                    shard,
                    self.completion_tx.clone(),
                    self.shard_return_tx.clone(),
                    self.faults.clone(),
                )
            })
            .collect();
        self.attached = false;
    }
}

fn respond(reply: &Sender<String>, envelope: ResponseEnvelope) {
    // A dead connection is not the dispatcher's problem.
    let _ = reply.send(encode_response_envelope(&envelope));
}

/// A durability-layer failure (WAL append, checkpoint) as a response in
/// the requested dialect: a typed rejection for envelope clients, the
/// legacy `Rejected` string for bare ones.
fn durability_error(strict: bool, detail: String) -> Result<EngineResponse, EngineError> {
    let reason = crate::error::RejectReason::Invalid { detail };
    if strict {
        Err(EngineError::Rejected { reason })
    } else {
        Ok(EngineResponse::Rejected {
            reason: reason.to_string(),
        })
    }
}

/// An infrastructure failure (a dead worker, a dispatch invariant that
/// broke) as a response in the requested dialect: [`EngineError::Internal`]
/// for envelope clients, the legacy `Rejected` string for bare ones.
fn internal_error(strict: bool, detail: String) -> Result<EngineResponse, EngineError> {
    if strict {
        Err(EngineError::Internal { detail })
    } else {
        Ok(EngineResponse::Rejected {
            reason: format!("internal error: {detail}"),
        })
    }
}

/// An overload-control refusal ([`EngineError::Overloaded`] /
/// [`EngineError::DeadlineExceeded`]) in the requested dialect: the
/// typed error for envelope clients, the legacy `Rejected` string —
/// carrying the same Display text — for bare ones. Either way the
/// refusal is a *response*, never a silent drop.
fn shed_error(strict: bool, err: EngineError) -> Result<EngineResponse, EngineError> {
    if strict {
        Err(err)
    } else {
        Ok(EngineResponse::Rejected {
            reason: err.to_string(),
        })
    }
}

fn spawn_worker(
    k: usize,
    shard: Shard,
    completion_tx: Sender<ServerMsg>,
    shard_return_tx: Sender<(usize, Shard)>,
    faults: Option<Arc<FaultInjector>>,
) -> WorkerHandle {
    let (tx, rx) = mpsc::channel::<WorkerMsg>();
    let join = thread::spawn(move || {
        // Arm the shard's pair-edit recorder so the next apply can ship
        // its view as a diff, and remember which view epoch the cache
        // holds for this shard: the coordinator installed a full view of
        // exactly this state (`QueryCache::from_engine`) before the shard
        // was detached. Every shipped update extends that chain.
        let mut shard = shard;
        let _ = shard.take_view_diff();
        let mut last_view_epoch = shard.stats().deltas_applied;
        let mut slot = Some(shard);
        while let Ok(msg) = rx.recv() {
            match msg {
                WorkerMsg::Apply {
                    delta,
                    envelope_id,
                    reply,
                } => {
                    // Fault injection: a planned slow apply sleeps
                    // before executing — the shard is "contended", the
                    // dispatch queue backs up, bounded admission sheds.
                    if let Some(faults) = &faults {
                        faults.before_apply();
                    }
                    // lint:allow(no-panic-in-server-paths): the dispatcher only fast-paths while detached; an Apply without a shard is a protocol bug, and replying here instead would leak the dispatcher's pending count and hang the next barrier
                    let shard = slot.as_mut().expect("apply while surrendered");
                    let (outcome, breakdown) = shard.apply_measured(&delta).unwrap_or_else(|e| {
                        // lint:allow(no-panic-in-server-paths): documented contract — sharded serving requires id-independent conflict/interest functions, and a mirror-validated delta failing on its shard means that contract is broken, not that this request is bad
                        panic!(
                            "shard {k} rejected a mirror-validated delta ({e}); \
                             ShardedEngine requires attribute-based (id-independent) \
                             conflict and interest functions"
                        )
                    });
                    // Read-state for the coordinator's query cache,
                    // computed here so readers never barrier. The repair
                    // recorded its net pair edits, so the common case
                    // ships an O(changed) diff; a repair that rebuilt the
                    // arrangement wholesale (full re-solve, batch solve)
                    // disarmed the recorder and ships a full snapshot,
                    // re-syncing the chain.
                    let stats = *shard.stats();
                    let epoch = stats.deltas_applied;
                    let view = match shard.take_view_diff() {
                        Some(diff) => ViewUpdate::Diff(Box::new(ViewDelta {
                            parent_epoch: last_view_epoch,
                            epoch,
                            users: shard.instance().num_users(),
                            pairs: shard.arrangement().len(),
                            breakdown,
                            tracker: shard.tracker().clone(),
                            stats,
                            diff,
                        })),
                        None => ViewUpdate::Full(Box::new(ShardView {
                            epoch,
                            users: shard.instance().num_users(),
                            pairs: shard.arrangement().len(),
                            breakdown,
                            tracker: shard.tracker().clone(),
                            stats,
                            assignments: Arc::new(shard.arrangement().clone()),
                        })),
                    };
                    // Fault injection: a planned dropped reply loses the
                    // view shipment (the apply itself succeeded). The
                    // dispatcher barriers and refreshes before acking;
                    // the Resume below restarts this worker's chain.
                    let view = match &faults {
                        Some(f) if f.drop_view() => ViewUpdate::Lost,
                        _ => view,
                    };
                    last_view_epoch = epoch;
                    if completion_tx
                        .send(ServerMsg::Completion {
                            shard: k,
                            outcome,
                            view,
                            envelope_id,
                            reply,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                WorkerMsg::Surrender => {
                    // lint:allow(no-panic-in-server-paths): a double surrender means the dispatcher's attached-state tracking broke; returning nothing would deadlock the barrier waiting for this shard
                    let shard = slot.take().expect("surrender while surrendered");
                    if shard_return_tx.send((k, shard)).is_err() {
                        break;
                    }
                }
                WorkerMsg::Resume(shard) => {
                    // The coordinator may have mutated the shard at the
                    // barrier (reconcile, broadcasts, batches) and always
                    // refreshes the cache with full views before handing
                    // shards back: discard whatever the recorder caught
                    // coordinator-side (re-arming it) and restart the
                    // diff chain from the freshly installed epoch.
                    let mut shard = *shard;
                    let _ = shard.take_view_diff();
                    last_view_epoch = shard.stats().deltas_applied;
                    slot = Some(shard);
                }
                WorkerMsg::Shutdown => break,
            }
        }
    });
    WorkerHandle { tx, join }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::ShardedConfig;
    use crate::engine::{Engine, EngineConfig};
    use igepa_algos::GreedyArrangement;
    use igepa_core::{
        AttributeVector, ConstantInterest, EventId, HashPartitioner, Instance, NeverConflict,
        UserId,
    };
    use std::io::Cursor;

    fn base_instance(num_events: usize, num_users: usize) -> Instance {
        let mut b = Instance::builder();
        let events: Vec<EventId> = (0..num_events)
            .map(|_| b.add_event(2, AttributeVector::empty()))
            .collect();
        for _ in 0..num_users {
            b.add_user(2, AttributeVector::empty(), events.clone());
        }
        b.interaction_scores(vec![0.5; num_users]);
        b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap()
    }

    fn sharded_for(num_events: usize, num_users: usize, num_shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            base_instance(num_events, num_users),
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            Box::new(HashPartitioner),
            ShardedConfig::with_shards(num_shards),
        )
    }

    fn add_user_request(event: usize) -> EngineRequest {
        EngineRequest::Apply {
            delta: InstanceDelta::AddUser {
                capacity: 1,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(event)],
                interaction: 0.5,
            },
        }
    }

    #[test]
    fn frames_roundtrip_in_both_framings() {
        for framing in [Framing::Lines, Framing::LengthPrefixed] {
            let mut buffer = Vec::new();
            write_frame(&mut buffer, framing, "{\"a\":1}").unwrap();
            write_frame(&mut buffer, framing, "second payload").unwrap();
            let mut reader = Cursor::new(buffer);
            assert_eq!(
                read_frame(&mut reader, framing).unwrap().as_deref(),
                Some("{\"a\":1}")
            );
            assert_eq!(
                read_frame(&mut reader, framing).unwrap().as_deref(),
                Some("second payload")
            );
            assert_eq!(read_frame(&mut reader, framing).unwrap(), None);
        }
    }

    #[test]
    fn line_framing_skips_blank_lines() {
        let mut reader = Cursor::new(b"\n\n{\"x\":2}\n\n".to_vec());
        assert_eq!(
            read_frame(&mut reader, Framing::Lines).unwrap().as_deref(),
            Some("{\"x\":2}")
        );
        assert_eq!(read_frame(&mut reader, Framing::Lines).unwrap(), None);
    }

    #[test]
    fn serial_server_round_trips_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let engine = Engine::new(
            base_instance(2, 3),
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            EngineConfig::default(),
        );
        let handle =
            EngineServer::serve(listener, EngineService::new(engine), Framing::Lines).unwrap();
        let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();

        let applied = client.apply(InstanceDelta::AddUser {
            capacity: 1,
            attrs: AttributeVector::empty(),
            bids: vec![EventId::new(0)],
            interaction: 0.9,
        });
        assert!(matches!(applied, Ok(EngineResponse::Applied { .. })));

        // Typed errors surface client-side.
        let missing = client.query(EngineQuery::AssignmentsOf {
            user: UserId::new(99),
        });
        assert!(matches!(
            missing,
            Err(ClientError::Engine(EngineError::NotFound { .. }))
        ));

        let utility = client.query(EngineQuery::Utility).unwrap();
        assert!(matches!(utility, EngineResponse::Utility { total, .. } if total > 0.0));

        drop(client);
        let engine = handle.shutdown().unwrap();
        assert_eq!(engine.instance().num_users(), 4);
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn sharded_server_matches_in_process_responses() {
        // A synchronous client must observe exactly the serial service's
        // responses: the worker pool changes where repairs run, not what
        // they produce.
        let requests: Vec<EngineRequest> = (0..40)
            .map(|i| match i % 7 {
                6 => EngineRequest::Query {
                    query: EngineQuery::Utility,
                },
                3 => EngineRequest::Query {
                    query: EngineQuery::EventLoad {
                        event: EventId::new(i % 3),
                    },
                },
                5 => EngineRequest::Apply {
                    delta: InstanceDelta::AddEvent {
                        capacity: 3,
                        attrs: AttributeVector::empty(),
                    },
                },
                _ => add_user_request(i % 3),
            })
            .collect();

        let mut serial = EngineService::new(sharded_for(3, 8, 2));
        let expected: Vec<Result<EngineResponse, EngineError>> =
            requests.iter().map(|r| serial.try_handle(r)).collect();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(3, 8, 2), Framing::LengthPrefixed)
                .unwrap();
        let mut client =
            EngineClient::connect(handle.local_addr(), Framing::LengthPrefixed).unwrap();
        let got: Vec<Result<EngineResponse, EngineError>> = requests
            .iter()
            .map(|r| match client.call(r.clone()) {
                Ok(response) => Ok(response),
                Err(ClientError::Engine(e)) => Err(e),
                Err(other) => panic!("transport failure: {other}"),
            })
            .collect();
        assert_eq!(got, expected);

        drop(client);
        let engine = handle.shutdown().unwrap();
        let serial_engine = serial.into_backend();
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
        assert_eq!(
            engine.merged_utility().total.to_bits(),
            serial_engine.merged_utility().total.to_bits()
        );
    }

    /// The headline robustness property: the worker pool grows and
    /// shrinks mid-trace while concurrent clients stream mutations, and
    /// not one request is refused — requests racing the migration are
    /// parked in the dispatcher's backlog and replayed against the
    /// rewritten owner table.
    #[test]
    fn live_reshard_grows_and_shrinks_with_zero_rejections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(3, 8, 4), Framing::Lines).unwrap();
        let addr = handle.local_addr();

        // Two background clients hammer applies across both reshards.
        let writers: Vec<_> = (0..2)
            .map(|w| {
                thread::spawn(move || {
                    let mut client = EngineClient::connect(addr, Framing::Lines).unwrap();
                    for i in 0..30 {
                        let response = client.call(add_user_request((w + i) % 3)).unwrap();
                        assert!(
                            matches!(response, EngineResponse::Applied { .. }),
                            "writer {w} request {i} refused mid-migration: {response:?}"
                        );
                    }
                })
            })
            .collect();

        let mut client = EngineClient::connect(addr, Framing::Lines).unwrap();
        let grown = client
            .call(EngineRequest::Reshard { num_shards: 6 })
            .unwrap();
        let EngineResponse::Resharded { record, .. } = grown else {
            panic!("grow refused: {grown:?}");
        };
        assert_eq!((record.from_shards, record.to_shards), (4, 6));
        assert!(record.moved_users > 0);

        // The cache now answers six per-shard entries whose migration
        // counters balance against the record.
        let EngineResponse::ShardStats { shards } = client.query(EngineQuery::ShardStats).unwrap()
        else {
            panic!("ShardStats answered wrong variant");
        };
        assert_eq!(shards.len(), 6);
        assert_eq!(
            shards.iter().map(|e| e.moved_in).sum::<u64>(),
            record.moved_users
        );
        assert_eq!(
            shards.iter().map(|e| e.moved_out).sum::<u64>(),
            record.moved_users
        );

        let shrunk = client
            .call(EngineRequest::Reshard { num_shards: 3 })
            .unwrap();
        assert!(
            matches!(shrunk, EngineResponse::Resharded { .. }),
            "shrink refused: {shrunk:?}"
        );

        for writer in writers {
            writer.join().unwrap();
        }
        // Post-migration reads still serve every user through the cache.
        let EngineResponse::Snapshot {
            num_users, pairs, ..
        } = client.query(EngineQuery::MergedSnapshot).unwrap()
        else {
            panic!("MergedSnapshot answered wrong variant");
        };
        assert_eq!(num_users, 8 + 60);
        assert!(!pairs.is_empty());

        drop(client);
        let engine = handle.shutdown().unwrap();
        assert_eq!(engine.num_shards(), 3);
        assert_eq!(engine.rejected_count(), 0, "zero rejected requests");
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn cached_reads_are_never_stale_after_apply_acks() {
        // The consistency pin of the barrier-free read path: the cache is
        // updated BEFORE an apply is acked — per completion on the worker
        // fast path, and by the pre-respond refresh on the barrier path
        // (broadcasts) — so a client that has seen the ack can never read
        // the pre-apply epoch. Drive both apply kinds over TCP and, after
        // every single ack, compare each cacheable query against a serial
        // in-process service fed the same stream — bit for bit.
        let mut serial = EngineService::new(sharded_for(3, 6, 3));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(3, 6, 3), Framing::Lines).unwrap();
        let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();

        // Run past the periodic reconcile interval (64): the apply that
        // crosses it must reconcile-and-refresh BEFORE its ack, exactly
        // like the serial coordinator reconciles before returning.
        for i in 0..70 {
            let apply = if i % 5 == 4 {
                // Event-scoped: takes the barrier path, not the worker
                // fast path.
                EngineRequest::Apply {
                    delta: InstanceDelta::AddEvent {
                        capacity: 2,
                        attrs: AttributeVector::empty(),
                    },
                }
            } else {
                add_user_request(i % 3)
            };
            let expected_ack = serial.try_handle(&apply).unwrap();
            let ack = client.call(apply).unwrap();
            assert_eq!(ack, expected_ack);
            for query in [
                EngineQuery::Utility,
                EngineQuery::Stats,
                EngineQuery::ShardStats,
                // The per-entity reads are cached too (PR 5): a user
                // created by the apply acked just above must already be
                // visible, with exactly the serial assignments/loads.
                EngineQuery::AssignmentsOf {
                    user: UserId::new(i % 8),
                },
                EngineQuery::AssignmentsOf {
                    user: UserId::new(5 + i),
                },
                EngineQuery::EventLoad {
                    event: EventId::new(i % 4),
                },
                EngineQuery::EventLoad {
                    event: EventId::new(999),
                },
                // The full merged snapshot is served from the cached
                // views when they form a consistent checkpoint (PR 6) —
                // after an ack they always do, and the tracker-absorb
                // utility must equal the serial recompute bit for bit.
                EngineQuery::MergedSnapshot,
                // Answered at the dispatcher; durability is off on both
                // sides here.
                EngineQuery::DurabilityStats,
            ] {
                let expected = serial.try_handle(&EngineRequest::Query { query });
                let got = match client.query(query) {
                    Ok(response) => Ok(response),
                    Err(ClientError::Engine(e)) => Err(e),
                    Err(other) => panic!("transport failure: {other}"),
                };
                assert_eq!(got, expected, "stale cached read after ack {i}");
            }
        }

        drop(client);
        handle.shutdown().unwrap();
    }

    #[test]
    fn pipelined_client_matches_serial_client_bit_for_bit() {
        // The same request mix — applies, aggregate queries, invalid
        // deltas — driven once serially (call per request) and once as a
        // single pipelined burst against identically-constructed servers.
        // Pipelining changes only when requests hit the wire, never what
        // they produce.
        let requests: Vec<EngineRequest> = (0..60)
            .map(|i| match i % 6 {
                1 => EngineRequest::Query {
                    query: EngineQuery::Utility,
                },
                3 => EngineRequest::Query {
                    query: EngineQuery::Stats,
                },
                4 => EngineRequest::Apply {
                    delta: InstanceDelta::UpdateInteractionScore {
                        user: UserId::new(9999),
                        score: 0.5,
                    },
                },
                5 => EngineRequest::Query {
                    query: EngineQuery::ShardStats,
                },
                _ => add_user_request(i % 3),
            })
            .collect();

        let run = |pipelined: bool| -> Vec<Result<EngineResponse, EngineError>> {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let handle =
                EngineServer::serve_sharded(listener, sharded_for(3, 6, 2), Framing::Lines)
                    .unwrap();
            let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();
            let results = if pipelined {
                client.pipeline(requests.clone()).unwrap()
            } else {
                requests
                    .iter()
                    .map(|r| match client.call(r.clone()) {
                        Ok(response) => Ok(response),
                        Err(ClientError::Engine(e)) => Err(e),
                        Err(other) => panic!("transport failure: {other}"),
                    })
                    .collect()
            };
            drop(client);
            handle.shutdown().unwrap();
            results
        };

        assert_eq!(run(true), run(false));
    }

    #[test]
    fn large_pipelined_bursts_do_not_deadlock() {
        // A burst far beyond the in-flight window (and beyond what
        // unbounded send-ahead could push through loopback socket
        // buffers without the server stalling) completes, in order.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(2, 4, 2), Framing::Lines).unwrap();
        let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();
        let burst: Vec<EngineRequest> = (0..2000)
            .map(|i| match i % 2 {
                0 => EngineRequest::Query {
                    query: EngineQuery::Utility,
                },
                _ => add_user_request(i % 2),
            })
            .collect();
        let results = client.pipeline(burst).unwrap();
        assert_eq!(results.len(), 2000);
        assert!(results.iter().all(|r| r.is_ok()));
        drop(client);
        let engine = handle.shutdown().unwrap();
        assert_eq!(engine.instance().num_users(), 4 + 1000);
    }

    #[test]
    fn recv_rejects_ids_never_sent() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(2, 2, 1), Framing::Lines).unwrap();
        let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();
        assert!(matches!(
            client.recv(42),
            Err(ClientError::UnknownId { id: 42 })
        ));
        // Out-of-order receive of a real burst still works.
        let a = client
            .send(EngineRequest::Query {
                query: EngineQuery::Utility,
            })
            .unwrap();
        let b = client
            .send(EngineRequest::Query {
                query: EngineQuery::Stats,
            })
            .unwrap();
        assert!(matches!(client.recv(b), Ok(EngineResponse::Stats { .. })));
        assert!(matches!(client.recv(a), Ok(EngineResponse::Utility { .. })));
        drop(client);
        handle.shutdown().unwrap();
    }

    #[test]
    fn sharded_server_survives_concurrent_clients() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(4, 8, 4), Framing::Lines).unwrap();
        let addr = handle.local_addr();

        let clients: Vec<_> = (0..4)
            .map(|c| {
                thread::spawn(move || {
                    let mut client = EngineClient::connect(addr, Framing::Lines).unwrap();
                    for i in 0..25 {
                        client.call(add_user_request((c + i) % 4)).unwrap();
                    }
                    client.query(EngineQuery::MergedSnapshot).unwrap()
                })
            })
            .collect();
        for c in clients {
            assert!(matches!(c.join().unwrap(), EngineResponse::Snapshot { .. }));
        }

        let engine = handle.shutdown().unwrap();
        assert_eq!(engine.instance().num_users(), 8 + 4 * 25);
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn length_prefixed_frames_are_size_capped() {
        let mut reader = Cursor::new(0xFFFF_FFFFu32.to_be_bytes().to_vec());
        let err = read_frame(&mut reader, Framing::LengthPrefixed).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn sharded_fast_path_version_gates_like_the_serial_server() {
        // An unsupported protocol version must answer Unsupported and
        // leave the engine untouched — even on the worker fast path.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(2, 4, 2), Framing::Lines).unwrap();

        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let envelope = RequestEnvelope::new(7, 42, add_user_request(0));
        write_frame(
            &mut writer,
            Framing::Lines,
            &crate::protocol::encode_request_envelope(&envelope),
        )
        .unwrap();
        let line = read_frame(&mut reader, Framing::Lines).unwrap().unwrap();
        let response = decode_response_envelope(&line).unwrap();
        assert_eq!(response.id, 7);
        assert_eq!(
            response.result,
            Err(EngineError::Unsupported { version: 42 })
        );

        drop(writer);
        let engine = handle.shutdown().unwrap();
        assert_eq!(
            engine.instance().num_users(),
            4,
            "unsupported-version Apply must not mutate the engine"
        );
    }

    #[test]
    fn legacy_bare_requests_work_over_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(2, 4, 2), Framing::Lines).unwrap();

        // A hand-rolled legacy client: bare pre-envelope request lines.
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(
            &mut writer,
            Framing::Lines,
            "{\"Query\":{\"query\":{\"AssignmentsOf\":{\"user\":99}}}}",
        )
        .unwrap();
        let line = read_frame(&mut reader, Framing::Lines).unwrap().unwrap();
        let envelope = decode_response_envelope(&line).unwrap();
        // Legacy dialect: silent empty answer instead of NotFound.
        assert_eq!(
            envelope.result,
            Ok(EngineResponse::Assignments {
                user: UserId::new(99),
                events: Vec::new(),
            })
        );

        drop(writer);
        handle.shutdown().unwrap();
    }

    #[test]
    fn durable_server_logs_checkpoints_and_recovers_bit_for_bit() {
        use crate::durability::{recover, test_dir, DurabilityController};
        use crate::shard::DurabilityPolicy;
        let dir = test_dir("transport-durable");

        // Serve durable and drive a mix: fast-path applies, event
        // broadcasts (barrier path), a rejected delta (logged too), one
        // explicit checkpoint mid-stream.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let controller = DurabilityController::create(&dir, DurabilityPolicy::Always).unwrap();
        let handle = EngineServer::serve_sharded_durable(
            listener,
            sharded_for(3, 6, 2),
            Framing::Lines,
            controller,
        )
        .unwrap();
        let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();
        for i in 0..25 {
            let request = match i % 6 {
                5 => EngineRequest::Apply {
                    delta: InstanceDelta::AddEvent {
                        capacity: 2,
                        attrs: AttributeVector::empty(),
                    },
                },
                4 => EngineRequest::Apply {
                    delta: InstanceDelta::UpdateInteractionScore {
                        user: UserId::new(9999),
                        score: 0.5,
                    },
                },
                _ => add_user_request(i % 3),
            };
            let _ = client.call(request);
            if i == 11 {
                match client.call(EngineRequest::Checkpoint).unwrap() {
                    EngineResponse::CheckpointDone { wal_seq, bytes } => {
                        assert_eq!(wal_seq, 12, "12 mutating requests logged so far");
                        assert!(bytes > 0);
                    }
                    other => panic!("expected CheckpointDone, got {other:?}"),
                }
            }
        }
        match client.query(EngineQuery::DurabilityStats).unwrap() {
            EngineResponse::DurabilityStats {
                enabled,
                policy,
                wal_records,
                fsyncs,
                checkpoints,
                last_checkpoint_seq,
                ..
            } => {
                assert!(enabled);
                assert_eq!(policy, "always");
                assert_eq!(wal_records, 25, "every mutating request is logged");
                assert_eq!(checkpoints, 1);
                assert_eq!(last_checkpoint_seq, 12);
                assert_eq!(fsyncs, 25, "policy `always` fsyncs per append");
            }
            other => panic!("expected DurabilityStats, got {other:?}"),
        }
        drop(client);
        let engine = handle.shutdown().unwrap();

        // Recover from the directory alone: newest snapshot + WAL tail
        // must reproduce the served state bit for bit.
        let recovered = recover(
            &dir,
            || sharded_for(3, 6, 2),
            |state| {
                ShardedEngine::restore_state(
                    state,
                    Box::new(NeverConflict),
                    Box::new(ConstantInterest(0.5)),
                    Box::new(GreedyArrangement),
                    Box::new(HashPartitioner),
                )
            },
        )
        .unwrap();
        assert_eq!(recovered.report.snapshot_seq, Some(12));
        assert_eq!(recovered.report.replayed, 13, "the WAL tail past seq 12");
        assert_eq!(recovered.next_seq, 26);
        let restored = recovered.engine;
        assert_eq!(
            restored.merged_utility().total.to_bits(),
            engine.merged_utility().total.to_bits()
        );
        assert_eq!(
            restored.merged_arrangement().pairs().collect::<Vec<_>>(),
            engine.merged_arrangement().pairs().collect::<Vec<_>>()
        );
        assert_eq!(restored.stats(), engine.stats());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Builds a single-view cache seeded from the shard's current state,
    /// the way `spawn_worker`'s dispatcher-side counterpart starts out.
    fn cache_over(shard: &Shard) -> QueryCache {
        QueryCache {
            inner: RwLock::new(CacheInner {
                views: vec![ShardView::of(shard)],
                rejected: 0,
                owners: Vec::new(),
                capacities: Vec::new(),
                migrations: vec![(0, 0)],
            }),
        }
    }

    /// Ships the shard's post-apply read state exactly like the worker
    /// loop does: a [`ViewUpdate::Diff`] whenever the recorder is armed,
    /// a full [`ShardView`] otherwise. Returns the update plus whether it
    /// took the diff path.
    fn ship_update(shard: &mut Shard, parent_epoch: u64) -> (ViewUpdate, bool) {
        let stats = *shard.stats();
        let epoch = stats.deltas_applied;
        match shard.take_view_diff() {
            Some(diff) => (
                ViewUpdate::Diff(Box::new(ViewDelta {
                    parent_epoch,
                    epoch,
                    users: shard.instance().num_users(),
                    pairs: shard.arrangement().len(),
                    breakdown: shard.utility_breakdown(),
                    tracker: shard.tracker().clone(),
                    stats,
                    diff,
                })),
                true,
            ),
            None => (ViewUpdate::Full(Box::new(ShardView::of(shard))), false),
        }
    }

    fn assert_views_bit_identical(diffed: &ShardView, full: &ShardView) {
        assert_eq!(diffed.epoch, full.epoch);
        assert_eq!(diffed.users, full.users);
        assert_eq!(diffed.pairs, full.pairs);
        assert_eq!(
            diffed.breakdown.total.to_bits(),
            full.breakdown.total.to_bits()
        );
        assert_eq!(
            diffed.breakdown.interest_sum.to_bits(),
            full.breakdown.interest_sum.to_bits()
        );
        assert_eq!(
            diffed.breakdown.interaction_sum.to_bits(),
            full.breakdown.interaction_sum.to_bits()
        );
        assert_eq!(diffed.stats, full.stats);
        assert_eq!(*diffed.assignments, *full.assignments);
    }

    #[test]
    fn greedy_patch_applies_ship_diffs_and_patch_the_cached_view() {
        // AddUser applies take the greedy-patch path, so after the worker
        // arms the recorder every one of them must ship a diff — and the
        // diff-patched cache view must equal a fresh full snapshot.
        let mut shard = Shard::new(
            base_instance(3, 4),
            Arc::new(NeverConflict),
            Arc::new(ConstantInterest(0.5)),
            Arc::new(GreedyArrangement),
            EngineConfig::default(),
        );
        let cache = cache_over(&shard);
        let _ = shard.take_view_diff();
        let mut parent_epoch = shard.stats().deltas_applied;
        for i in 0..10 {
            shard
                .apply(&InstanceDelta::AddUser {
                    capacity: 1,
                    attrs: AttributeVector::empty(),
                    bids: vec![EventId::new(i % 3)],
                    interaction: 0.5,
                })
                .unwrap();
            let (update, was_diff) = ship_update(&mut shard, parent_epoch);
            assert!(was_diff, "greedy-patch apply {i} shipped a full snapshot");
            parent_epoch = shard.stats().deltas_applied;
            cache.install(0, update, 0, &[]);
            let installed = cache.inner.read().unwrap().views[0].clone();
            assert_views_bit_identical(&installed, &ShardView::of(&shard));
        }
    }

    /// Resolves raw numbers into an always-valid delta against the
    /// shard's evolving population (the `proptest_engine` idiom).
    fn resolve_raw(kind: u8, a: usize, b: usize, score: f64, instance: &Instance) -> InstanceDelta {
        let num_events = instance.num_events();
        let num_users = instance.num_users();
        match kind {
            0 => InstanceDelta::AddUser {
                capacity: 1 + a % 3,
                attrs: AttributeVector::empty(),
                bids: if num_events == 0 {
                    Vec::new()
                } else {
                    vec![EventId::new(a % num_events), EventId::new(b % num_events)]
                },
                interaction: score,
            },
            1 if num_users > 0 => InstanceDelta::RemoveUser {
                user: UserId::new(a % num_users),
            },
            2 => InstanceDelta::AddEvent {
                capacity: 1 + b % 4,
                attrs: AttributeVector::empty(),
            },
            3 if num_events > 0 && b.is_multiple_of(2) => InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(EventId::new(a % num_events)),
                capacity: b % 5,
            },
            3 | 4 if num_users > 0 => {
                if kind == 3 {
                    InstanceDelta::UpdateCapacity {
                        target: CapacityTarget::User(UserId::new(a % num_users)),
                        capacity: b % 4,
                    }
                } else {
                    InstanceDelta::UpdateBids {
                        user: UserId::new(a % num_users),
                        bids: if num_events == 0 {
                            Vec::new()
                        } else {
                            vec![EventId::new(b % num_events)]
                        },
                    }
                }
            }
            5 if num_users > 0 => InstanceDelta::UpdateInteractionScore {
                user: UserId::new(a % num_users),
                score,
            },
            _ => InstanceDelta::AddEvent {
                capacity: 1 + b % 4,
                attrs: AttributeVector::empty(),
            },
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// The tentpole cache pin: under arbitrary valid delta sequences
        /// — greedy patches (diff path), full re-solves and wholesale
        /// rebuilds (snapshot fallback), user churn, capacity and bid
        /// edits — a cache fed the worker's real mix of diffs and
        /// snapshots holds, after every single install, exactly the view
        /// a clone_from-style full snapshot would have installed: same
        /// epoch, same counters, utility breakdown bit for bit, and the
        /// patched assignment snapshot equal to the shard's arrangement.
        #[test]
        fn diff_applied_views_equal_full_snapshots_bit_for_bit(
            raws in proptest::collection::vec(
                (0u8..6, 0usize..64, 0usize..64, 0.0f64..=1.0),
                1..40,
            ),
            seed in 0u64..50,
        ) {
            let mut shard = Shard::new(
                base_instance(3, 4),
                Arc::new(NeverConflict),
                Arc::new(ConstantInterest(0.5)),
                Arc::new(GreedyArrangement),
                EngineConfig {
                    seed,
                    staleness_check_interval: 8,
                    ..EngineConfig::default()
                },
            );
            let diff_fed = cache_over(&shard);
            let snapshot_fed = cache_over(&shard);
            let _ = shard.take_view_diff();
            let mut parent_epoch = shard.stats().deltas_applied;
            for &(kind, a, b, score) in &raws {
                let delta = resolve_raw(kind, a, b, score, shard.instance());
                proptest::prop_assert!(shard.apply(&delta).is_ok());
                let (update, _) = ship_update(&mut shard, parent_epoch);
                parent_epoch = shard.stats().deltas_applied;
                diff_fed.install(0, update, 0, &[]);
                snapshot_fed.install(0, ViewUpdate::Full(Box::new(ShardView::of(&shard))), 0, &[]);
                let diffed = diff_fed.inner.read().unwrap().views[0].clone();
                let full = snapshot_fed.inner.read().unwrap().views[0].clone();
                assert_views_bit_identical(&diffed, &full);
            }
        }
    }

    #[test]
    fn auto_checkpoints_trigger_on_the_logged_request_interval() {
        use crate::durability::{test_dir, DurabilityController};
        use crate::shard::DurabilityPolicy;
        let dir = test_dir("transport-autockpt");

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut controller = DurabilityController::create(&dir, DurabilityPolicy::Off).unwrap();
        controller.set_snapshot_every(8);
        let handle = EngineServer::serve_sharded_durable(
            listener,
            sharded_for(2, 4, 2),
            Framing::Lines,
            controller,
        )
        .unwrap();
        let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();
        for i in 0..20 {
            client.call(add_user_request(i % 2)).unwrap();
        }
        match client.query(EngineQuery::DurabilityStats).unwrap() {
            EngineResponse::DurabilityStats {
                checkpoints,
                last_checkpoint_seq,
                ..
            } => {
                assert_eq!(checkpoints, 2, "20 logged requests, one checkpoint per 8");
                assert_eq!(last_checkpoint_seq, 16);
            }
            other => panic!("expected DurabilityStats, got {other:?}"),
        }
        drop(client);
        handle.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sharded_with_admission(
        num_events: usize,
        num_users: usize,
        num_shards: usize,
        admission: AdmissionPolicy,
    ) -> ShardedEngine {
        let mut config = ShardedConfig::with_shards(num_shards);
        config.shard.admission = admission;
        ShardedEngine::new(
            base_instance(num_events, num_users),
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            Box::new(HashPartitioner),
            config,
        )
    }

    fn overload_stats(client: &mut EngineClient) -> OverloadStats {
        match client.query(EngineQuery::OverloadStats).unwrap() {
            EngineResponse::OverloadStats { stats } => stats,
            other => panic!("expected OverloadStats, got {other:?}"),
        }
    }

    #[test]
    fn bounded_admission_sheds_mutations_and_keeps_reads_flowing() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let engine = sharded_with_admission(2, 4, 2, AdmissionPolicy::bounded(0));
        let handle = EngineServer::serve_sharded(listener, engine, Framing::Lines).unwrap();
        let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();

        // Every mutation is refused immediately with the typed error —
        // never a silent drop, never an unbounded wait.
        for i in 0..3 {
            match client.call(add_user_request(i % 2)) {
                Err(ClientError::Engine(EngineError::Overloaded {
                    queue_depth,
                    retry_after_ms,
                })) => {
                    assert_eq!(queue_depth, 0);
                    assert_eq!(retry_after_ms, 50);
                }
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }

        // Reads keep answering from the barrier-free cache throughout.
        let utility = client.query(EngineQuery::Utility).unwrap();
        assert!(matches!(utility, EngineResponse::Utility { total, .. } if total > 0.0));

        let stats = overload_stats(&mut client);
        assert_eq!(stats.policy, "bounded(0)");
        assert_eq!(stats.shed, 3);
        assert_eq!(stats.queue_depth, 0);
        assert!(!stats.read_only);

        drop(client);
        let engine = handle.shutdown().unwrap();
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn legacy_clients_get_sheds_as_rejected_strings() {
        // The legacy dialect predates the typed overload errors; a shed
        // must still be a *response* there — the `Rejected` string — not
        // a silent drop.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let engine = sharded_with_admission(2, 4, 2, AdmissionPolicy::bounded(0));
        let handle = EngineServer::serve_sharded(listener, engine, Framing::Lines).unwrap();

        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(
            &mut writer,
            Framing::Lines,
            &crate::protocol::encode_request(&add_user_request(0)),
        )
        .unwrap();
        let line = read_frame(&mut reader, Framing::Lines).unwrap().unwrap();
        let envelope = decode_response_envelope(&line).unwrap();
        match envelope.result {
            Ok(EngineResponse::Rejected { reason }) => {
                assert!(reason.starts_with("overloaded:"), "got: {reason}")
            }
            other => panic!("expected legacy Rejected, got {other:?}"),
        }

        drop(writer);
        handle.shutdown().unwrap();
    }

    #[test]
    fn zero_deadline_expires_before_dispatch() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(2, 4, 2), Framing::Lines).unwrap();
        let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();

        // A zero budget has always expired by dequeue time — the
        // deterministic probe for the deadline gate.
        let id = client
            .send_with_deadline(add_user_request(0), Some(0))
            .unwrap();
        match client.recv(id) {
            Err(ClientError::Engine(EngineError::DeadlineExceeded { deadline_ms })) => {
                assert_eq!(deadline_ms, 0)
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }

        // A generous budget does not interfere: the same request applies.
        let id = client
            .send_with_deadline(add_user_request(0), Some(60_000))
            .unwrap();
        assert!(matches!(
            client.recv(id),
            Ok(EngineResponse::Applied { .. })
        ));

        let stats = overload_stats(&mut client);
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.shed, 0);

        drop(client);
        let engine = handle.shutdown().unwrap();
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn pipeline_window_edges_match_serial_responses() {
        // The send-ahead window is a throughput knob, not a semantics
        // knob: window=1 (degenerate serial) and a window far larger
        // than the burst must produce byte-identical response streams.
        let requests: Vec<EngineRequest> = (0..24)
            .map(|i| match i % 5 {
                0 => EngineRequest::Query {
                    query: EngineQuery::Utility,
                },
                3 => EngineRequest::Query {
                    query: EngineQuery::EventLoad {
                        event: EventId::new(i % 3),
                    },
                },
                _ => add_user_request(i % 3),
            })
            .collect();

        let mut runs: Vec<Vec<Result<EngineResponse, EngineError>>> = Vec::new();
        for window in [1usize, 4096] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let handle =
                EngineServer::serve_sharded(listener, sharded_for(3, 6, 2), Framing::Lines)
                    .unwrap();
            let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();
            client.set_pipeline_window(0);
            assert_eq!(client.pipeline_window(), 1, "window clamps to at least 1");
            client.set_pipeline_window(window);
            assert_eq!(client.pipeline_window(), window);
            runs.push(client.pipeline(requests.clone()).unwrap());
            drop(client);
            handle.shutdown().unwrap();
        }
        assert_eq!(runs[0], runs[1]);

        // And both match the strictly serial request-response pattern.
        let mut serial = EngineService::new(sharded_for(3, 6, 2));
        let expected: Vec<Result<EngineResponse, EngineError>> =
            requests.iter().map(|r| serial.try_handle(r)).collect();
        assert_eq!(runs[0], expected);
    }

    #[test]
    fn retry_backoff_is_deterministic_and_honours_server_hint() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_ms: 10,
            cap_ms: 1000,
            seed: 0xfeed,
        };
        let schedule: Vec<u64> = (0..8).map(|a| policy.backoff_ms(a, 0)).collect();
        let again: Vec<u64> = (0..8).map(|a| policy.backoff_ms(a, 0)).collect();
        assert_eq!(schedule, again, "same (seed, attempt) → same sleep");

        let reseeded = RetryPolicy {
            seed: 0xbeef,
            ..policy
        };
        let other: Vec<u64> = (0..8).map(|a| reseeded.backoff_ms(a, 0)).collect();
        assert_ne!(schedule, other, "different seed → different jitter");

        for (attempt, &ms) in schedule.iter().enumerate() {
            let step = (policy.base_ms << attempt).min(policy.cap_ms);
            assert!(
                ms >= step - step / 2 && ms <= step,
                "attempt {attempt}: {ms} ms outside [{}, {step}]",
                step - step / 2
            );
        }

        // The server's retry_after_ms hint is a floor on every sleep.
        assert_eq!(policy.backoff_ms(0, 5000), 5000);
    }

    #[test]
    fn call_with_retry_retries_overloaded_then_gives_up() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let engine = sharded_with_admission(2, 4, 2, AdmissionPolicy::bounded(0));
        let handle = EngineServer::serve_sharded(listener, engine, Framing::Lines).unwrap();
        let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();

        let policy = RetryPolicy {
            max_retries: 2,
            base_ms: 1,
            cap_ms: 2,
            seed: 7,
        };
        match client.call_with_retry(add_user_request(0), &policy) {
            Err(ClientError::Engine(EngineError::Overloaded { .. })) => {}
            other => panic!("expected Overloaded after retries, got {other:?}"),
        }
        // The initial attempt plus max_retries resends, each shed at
        // admission.
        assert_eq!(overload_stats(&mut client).shed, 3);

        drop(client);
        handle.shutdown().unwrap();
    }

    #[test]
    fn query_resilient_reconnects_and_replays_after_connection_loss() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle =
            EngineServer::serve_sharded(listener, sharded_for(2, 4, 2), Framing::Lines).unwrap();
        let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();
        let expected = client.query(EngineQuery::Utility).unwrap();

        // Kill the socket under the client: a plain query now fails...
        client.writer.shutdown(std::net::Shutdown::Both).unwrap();
        assert!(client.query(EngineQuery::Utility).is_err());

        // ...but the resilient read redials the same server and replays.
        let policy = RetryPolicy {
            base_ms: 1,
            cap_ms: 2,
            ..RetryPolicy::default()
        };
        let got = client
            .query_resilient(EngineQuery::Utility, &policy)
            .unwrap();
        assert_eq!(got, expected);

        drop(client);
        handle.shutdown().unwrap();
    }

    #[test]
    fn wal_append_failure_latches_read_only_degraded_mode() {
        use crate::durability::{test_dir, DurabilityController};
        use crate::faults::{FaultInjector, FaultPlan};
        use crate::shard::DurabilityPolicy;
        let dir = test_dir("transport-walfail");

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let controller = DurabilityController::create(&dir, DurabilityPolicy::Always).unwrap();
        let faults = Arc::new(FaultInjector::new(FaultPlan {
            wal_fail_at: Some(3),
            ..FaultPlan::quiet()
        }));
        let handle = EngineServer::serve_sharded_faulted(
            listener,
            sharded_for(2, 4, 2),
            Framing::Lines,
            Some(controller),
            Arc::clone(&faults),
        )
        .unwrap();
        let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();

        // Appends 1 and 2 succeed.
        for i in 0..2 {
            assert!(matches!(
                client.call(add_user_request(i % 2)),
                Ok(EngineResponse::Applied { .. })
            ));
        }
        // Append 3 is forced to fail: the request is refused with the
        // durability rejection and the server latches read-only.
        match client.call(add_user_request(0)) {
            Err(ClientError::Engine(EngineError::Rejected { reason })) => {
                let text = reason.to_string();
                assert!(text.contains("read-only"), "got: {text}");
            }
            other => panic!("expected durability rejection, got {other:?}"),
        }
        // Later mutations are shed at admission without touching the WAL.
        assert!(matches!(
            client.call(add_user_request(1)),
            Err(ClientError::Engine(EngineError::Overloaded { .. }))
        ));
        // Reads keep answering, and the degraded mode is observable.
        assert!(matches!(
            client.query(EngineQuery::Utility),
            Ok(EngineResponse::Utility { .. })
        ));
        let stats = overload_stats(&mut client);
        assert!(stats.read_only);
        assert_eq!(stats.shed, 1);

        drop(client);
        let engine = handle.shutdown().unwrap();
        // Only the two WAL-logged applies ever executed.
        assert_eq!(engine.instance().num_users(), 6);
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
        assert_eq!(faults.counts().wal_failures, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_injected_servers_preserve_request_response_semantics() {
        use crate::faults::{FaultInjector, FaultPlan};
        // The harness contract: injected slowness and lost view
        // shipments change timing and recovery paths, never responses.
        // Three servers — quiet, every-apply-slow, every-view-lost —
        // must each be bit-identical to the serial service.
        let requests: Vec<EngineRequest> = (0..18)
            .map(|i| match i % 4 {
                0 => EngineRequest::Query {
                    query: EngineQuery::Utility,
                },
                2 => EngineRequest::Query {
                    query: EngineQuery::EventLoad {
                        event: EventId::new(i % 3),
                    },
                },
                _ => add_user_request(i % 3),
            })
            .collect();
        let mut serial = EngineService::new(sharded_for(3, 6, 2));
        let expected: Vec<Result<EngineResponse, EngineError>> =
            requests.iter().map(|r| serial.try_handle(r)).collect();

        let plans = [
            FaultPlan::quiet(),
            FaultPlan {
                slow_apply_permille: 1000,
                slow_apply_ms: 1,
                ..FaultPlan::quiet()
            },
            FaultPlan {
                drop_view_permille: 1000,
                ..FaultPlan::quiet()
            },
        ];
        for (p, plan) in plans.into_iter().enumerate() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let faults = Arc::new(FaultInjector::new(plan));
            let handle = EngineServer::serve_sharded_faulted(
                listener,
                sharded_for(3, 6, 2),
                Framing::Lines,
                None,
                Arc::clone(&faults),
            )
            .unwrap();
            let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();
            let got: Vec<Result<EngineResponse, EngineError>> = requests
                .iter()
                .map(|r| match client.call(r.clone()) {
                    Ok(response) => Ok(response),
                    Err(ClientError::Engine(e)) => Err(e),
                    Err(other) => panic!("transport failure under plan {p}: {other}"),
                })
                .collect();
            assert_eq!(got, expected, "plan {p} diverged from serial responses");

            drop(client);
            let engine = handle.shutdown().unwrap();
            assert!(engine.merged_arrangement().is_feasible(engine.instance()));
            let counts = faults.counts();
            match p {
                0 => {
                    assert_eq!(counts.slow_applies, 0);
                    assert_eq!(counts.dropped_views, 0);
                }
                1 => assert!(counts.slow_applies > 0),
                _ => assert!(counts.dropped_views > 0),
            }
        }
    }
}
