//! Deterministic fault injection for the sharded serving stack.
//!
//! Extends the one-shot crash injector idiom of the durability tests
//! (`tests/crash_recovery.rs`) into a *plan*: a seeded [`FaultPlan`]
//! names which degradations to inject — slow shard applies, dropped
//! worker view shipments, WAL stalls and a forced WAL append failure —
//! and a [`FaultInjector`] carries it into
//! [`EngineServer::serve_sharded_faulted`](crate::EngineServer::serve_sharded_faulted),
//! deciding every injection site from a counter hash so the same plan
//! against the same request interleaving injects the same faults.
//!
//! The harness exists to *prove degradation invariants*, not to
//! simulate hardware: under any plan the server must hand every
//! accepted request exactly one typed response, never panic or
//! deadlock, keep answering cached reads, and shut down with a
//! feasible merged arrangement (pinned by the `overload` proptests).
//!
//! What each fault models:
//!
//! * **Slow apply** (`slow_apply_permille` / `slow_apply_ms`) — a shard
//!   worker sleeps before executing an apply: a contended core, a cold
//!   cache, a GC-less runtime's moral equivalent of a pause. Backs up
//!   the dispatch queue so bounded admission actually sheds.
//! * **Dropped view shipment** (`drop_view_permille`) — a worker
//!   completes an apply but its epoch-tagged read-state view is lost
//!   ([`ViewUpdate::Lost`](crate::transport)). The dispatcher must
//!   recover the never-stale-after-ack guarantee by refreshing the
//!   query cache from the authoritative shards *before* releasing the
//!   ack.
//! * **WAL stall** (`wal_stall_permille` / `wal_stall_ms`) — the
//!   write-ahead append blocks like a congested disk; ack latency
//!   absorbs it (the WAL-before-ack contract is kept, not bypassed).
//! * **WAL failure** (`wal_fail_at`) — the Nth append fails outright.
//!   The server flips into read-only degraded mode: the failing
//!   request is refused, subsequent mutations shed with
//!   [`EngineError::Overloaded`](crate::EngineError::Overloaded), and
//!   cached reads keep answering.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// SplitMix64: the decision hash behind every injection site (and the
/// client's retry jitter). Tiny, seedable, and good enough to
/// decorrelate sites without dragging in an RNG dependency.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded, declarative fault schedule. `permille` fields are
/// per-thousand probabilities evaluated per site occurrence; `0`
/// disables the fault, `1000` fires every time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed of the decision stream. Two injectors with equal plans
    /// make identical decisions at equal site counters.
    pub seed: u64,
    /// Per-thousand chance a worker apply sleeps first.
    pub slow_apply_permille: u16,
    /// How long a slowed apply sleeps.
    pub slow_apply_ms: u64,
    /// Per-thousand chance a completed apply's view shipment is lost.
    pub drop_view_permille: u16,
    /// Per-thousand chance a WAL append stalls first.
    pub wal_stall_permille: u16,
    /// How long a stalled WAL append sleeps.
    pub wal_stall_ms: u64,
    /// 1-based index of the WAL append that fails outright (`None`:
    /// the WAL never fails). One-shot, like the crash injector it
    /// descends from: every append after the failed one would also
    /// fail in a real deployment, but the server is read-only by then
    /// and never attempts another.
    pub wal_fail_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (the identity harness: serving with
    /// a quiet plan must be indistinguishable from serving without
    /// one).
    pub fn quiet() -> Self {
        FaultPlan::default()
    }

    /// Parses the CLI spec: comma-separated `key=value` pairs over
    /// `seed`, `slow` / `slow_ms`, `drop`, `stall` / `stall_ms`,
    /// `walfail` — e.g. `seed=7,slow=250,slow_ms=2,drop=50,walfail=40`.
    /// Probabilities are permille. Unknown keys and unparsable values
    /// are errors, not silently ignored: a typo'd fault plan that
    /// injects nothing would pass every robustness test vacuously.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::quiet();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry `{pair}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let parsed: u64 = value
                .parse()
                .map_err(|_| format!("fault-plan value `{value}` for `{key}` is not a number"))?;
            let permille = || -> Result<u16, String> {
                if parsed > 1000 {
                    return Err(format!("fault-plan `{key}={parsed}` exceeds 1000 permille"));
                }
                Ok(parsed as u16)
            };
            match key {
                "seed" => plan.seed = parsed,
                "slow" => plan.slow_apply_permille = permille()?,
                "slow_ms" => plan.slow_apply_ms = parsed,
                "drop" => plan.drop_view_permille = permille()?,
                "stall" => plan.wal_stall_permille = permille()?,
                "stall_ms" => plan.wal_stall_ms = parsed,
                "walfail" => plan.wal_fail_at = Some(parsed),
                other => return Err(format!("unknown fault-plan key `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// Counters for what actually fired, for test assertions and the
/// experiments CLI report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Applies that were slowed.
    pub slow_applies: u64,
    /// View shipments that were dropped.
    pub dropped_views: u64,
    /// WAL appends that were stalled.
    pub wal_stalls: u64,
    /// WAL appends that were failed (0 or 1).
    pub wal_failures: u64,
}

/// The live injector: a [`FaultPlan`] plus per-site occurrence
/// counters. Decisions hash `(seed, site, occurrence)` — independent
/// of wall-clock, thread ids and socket timing — so a plan's injection
/// pattern is a pure function of how many times each site ran.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    apply_seq: AtomicU64,
    view_seq: AtomicU64,
    wal_seq: AtomicU64,
    slow_applies: AtomicU64,
    dropped_views: AtomicU64,
    wal_stalls: AtomicU64,
    wal_failures: AtomicU64,
}

/// Site salts keep the decision streams of different fault kinds
/// decorrelated even at equal occurrence counters.
const SITE_SLOW: u64 = 0x51;
const SITE_DROP: u64 = 0xd0;
const SITE_STALL: u64 = 0x5a;

impl FaultInjector {
    /// Builds an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            ..FaultInjector::default()
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn fires(&self, site: u64, occurrence: u64, permille: u16) -> bool {
        if permille == 0 {
            return false;
        }
        splitmix64(self.plan.seed ^ (site << 56) ^ occurrence) % 1000 < u64::from(permille)
    }

    /// Worker-side hook before executing an apply: sleeps when the
    /// plan slows this occurrence.
    pub(crate) fn before_apply(&self) {
        let n = self.apply_seq.fetch_add(1, Ordering::Relaxed);
        if self.fires(SITE_SLOW, n, self.plan.slow_apply_permille) {
            self.slow_applies.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(self.plan.slow_apply_ms));
        }
    }

    /// Worker-side hook after computing a completion's view: `true`
    /// means the shipment is lost and the dispatcher must recover.
    pub(crate) fn drop_view(&self) -> bool {
        let n = self.view_seq.fetch_add(1, Ordering::Relaxed);
        let fires = self.fires(SITE_DROP, n, self.plan.drop_view_permille);
        if fires {
            self.dropped_views.fetch_add(1, Ordering::Relaxed);
        }
        fires
    }

    /// Dispatcher-side hook before a WAL append: sleeps through a
    /// planned stall, then returns `true` when this append is the
    /// planned failure.
    pub(crate) fn wal_append_fault(&self) -> bool {
        let n = self.wal_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if self.fires(SITE_STALL, n, self.plan.wal_stall_permille) {
            self.wal_stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(self.plan.wal_stall_ms));
        }
        let fails = self.plan.wal_fail_at == Some(n);
        if fails {
            self.wal_failures.fetch_add(1, Ordering::Relaxed);
        }
        fails
    }

    /// What has fired so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            slow_applies: self.slow_applies.load(Ordering::Relaxed),
            dropped_views: self.dropped_views.load(Ordering::Relaxed),
            wal_stalls: self.wal_stalls.load(Ordering::Relaxed),
            wal_failures: self.wal_failures.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultInjector::new(FaultPlan {
            seed: 42,
            slow_apply_permille: 500,
            drop_view_permille: 300,
            ..FaultPlan::quiet()
        });
        let b = FaultInjector::new(a.plan().clone());
        let trace =
            |inj: &FaultInjector| -> Vec<bool> { (0..200).map(|_| inj.drop_view()).collect() };
        assert_eq!(trace(&a), trace(&b), "equal plans must decide equally");
        let c = FaultInjector::new(FaultPlan {
            seed: 43,
            ..a.plan().clone()
        });
        assert_ne!(
            trace(&a),
            trace(&c),
            "different seeds should decorrelate (200 draws at 30%)"
        );
    }

    #[test]
    fn permille_bounds_are_respected() {
        let never = FaultInjector::new(FaultPlan::quiet());
        assert!(
            (0..500).all(|_| !never.drop_view()),
            "0 permille never fires"
        );
        let always = FaultInjector::new(FaultPlan {
            drop_view_permille: 1000,
            ..FaultPlan::quiet()
        });
        assert!(
            (0..500).all(|_| always.drop_view()),
            "1000 permille always fires"
        );
    }

    #[test]
    fn wal_fail_at_is_one_shot_and_positional() {
        let inj = FaultInjector::new(FaultPlan {
            wal_fail_at: Some(3),
            ..FaultPlan::quiet()
        });
        let fired: Vec<bool> = (0..6).map(|_| inj.wal_append_fault()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(inj.counts().wal_failures, 1);
    }

    #[test]
    fn plan_parsing_roundtrips_and_rejects_garbage() {
        let plan =
            FaultPlan::parse("seed=7,slow=250,slow_ms=2,drop=50,stall=10,stall_ms=1,walfail=40")
                .unwrap();
        assert_eq!(
            plan,
            FaultPlan {
                seed: 7,
                slow_apply_permille: 250,
                slow_apply_ms: 2,
                drop_view_permille: 50,
                wal_stall_permille: 10,
                wal_stall_ms: 1,
                wal_fail_at: Some(40),
            }
        );
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::quiet());
        assert!(FaultPlan::parse("slow=1001").is_err(), "permille over 1000");
        assert!(FaultPlan::parse("warp=9").is_err(), "unknown key");
        assert!(FaultPlan::parse("slow").is_err(), "missing value");
        assert!(FaultPlan::parse("slow=fast").is_err(), "non-numeric value");
    }

    #[test]
    fn splitmix_is_stable() {
        // Pin the decision hash: a silent change would re-randomise
        // every recorded fault pattern.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(42), 0xbdd732262feb6e95);
    }
}
