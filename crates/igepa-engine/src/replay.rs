//! Replay driver: feed a recorded request log to an engine and measure it.
//!
//! Replaying the same log against the same initial engine state reproduces
//! every response bit-for-bit (latencies are reported separately so the
//! response stream itself stays deterministic).

use crate::protocol::{requests_from_jsonl, EngineRequest, EngineResponse, ProtocolError};
pub use crate::service::EngineBackend;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Latency distribution over the replayed requests, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Mean per-request latency.
    pub mean_us: f64,
    /// Median per-request latency.
    pub p50_us: f64,
    /// 95th-percentile latency.
    pub p95_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
    /// Worst-case latency.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes a list of per-request latencies (microseconds).
    pub fn from_latencies(mut latencies: Vec<f64>) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = latencies.len();
        let pct = |p: f64| latencies[(((n - 1) as f64) * p).round() as usize];
        LatencySummary {
            // lint:allow(no-raw-float-accum): latency reporting over one replay run; measurement output, not replayed engine state
            mean_us: latencies.iter().sum::<f64>() / n as f64,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: latencies[n - 1],
        }
    }
}

/// Aggregate report of one replay run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Total requests replayed.
    pub requests: usize,
    /// Requests that applied a delta (or batch) successfully.
    pub applied: usize,
    /// Requests rejected by validation.
    pub rejected: usize,
    /// Read-only queries answered.
    pub queries: usize,
    /// Per-request latency distribution.
    pub latency: LatencySummary,
    /// Utility served after the final request.
    pub final_utility: f64,
    /// Pairs served after the final request.
    pub final_pairs: usize,
}

/// Responses plus measurements from one replay run.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// One response per request, in order.
    pub responses: Vec<EngineResponse>,
    /// Aggregate measurements.
    pub report: ReplayReport,
}

/// Replays a request log against `engine`, measuring per-request latency.
pub fn replay<B: EngineBackend>(engine: &mut B, requests: &[EngineRequest]) -> ReplayOutcome {
    let mut responses = Vec::with_capacity(requests.len());
    let mut latencies = Vec::with_capacity(requests.len());
    let mut applied = 0usize;
    let mut rejected = 0usize;
    let mut queries = 0usize;

    for request in requests {
        let start = Instant::now();
        let response = engine.handle(request);
        latencies.push(start.elapsed().as_secs_f64() * 1e6);
        match &response {
            EngineResponse::Applied { .. } => applied += 1,
            EngineResponse::Rejected { .. } => rejected += 1,
            _ => queries += 1,
        }
        responses.push(response);
    }

    let report = ReplayReport {
        requests: requests.len(),
        applied,
        rejected,
        queries,
        latency: LatencySummary::from_latencies(latencies),
        final_utility: engine.served_utility(),
        final_pairs: engine.served_pairs(),
    };
    ReplayOutcome { responses, report }
}

/// Parses a JSONL request log and replays it.
pub fn replay_jsonl<B: EngineBackend>(
    engine: &mut B,
    text: &str,
) -> Result<ReplayOutcome, ProtocolError> {
    let requests = requests_from_jsonl(text)?;
    Ok(replay(engine, &requests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::protocol::EngineQuery;
    use igepa_algos::GreedyArrangement;
    use igepa_core::{
        AttributeVector, ConstantInterest, EventId, Instance, InstanceDelta, NeverConflict,
    };

    fn fresh_engine() -> Engine {
        let mut b = Instance::builder();
        let v0 = b.add_event(2, AttributeVector::empty());
        let v1 = b.add_event(2, AttributeVector::empty());
        b.add_user(1, AttributeVector::empty(), vec![v0, v1]);
        b.interaction_scores(vec![0.6]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        Engine::new(
            instance,
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            EngineConfig::default(),
        )
    }

    fn sample_requests() -> Vec<EngineRequest> {
        vec![
            EngineRequest::Apply {
                delta: InstanceDelta::AddUser {
                    capacity: 2,
                    attrs: AttributeVector::empty(),
                    bids: vec![EventId::new(0), EventId::new(1)],
                    interaction: 0.8,
                },
            },
            EngineRequest::Query {
                query: EngineQuery::Utility,
            },
            EngineRequest::Apply {
                delta: InstanceDelta::AddEvent {
                    capacity: 3,
                    attrs: AttributeVector::empty(),
                },
            },
            EngineRequest::Apply {
                delta: InstanceDelta::UpdateInteractionScore {
                    user: igepa_core::UserId::new(99),
                    score: 0.5,
                },
            },
            EngineRequest::Query {
                query: EngineQuery::Stats,
            },
        ]
    }

    #[test]
    fn replay_counts_and_measures() {
        let mut engine = fresh_engine();
        let outcome = replay(&mut engine, &sample_requests());
        assert_eq!(outcome.report.requests, 5);
        assert_eq!(outcome.report.applied, 2);
        assert_eq!(outcome.report.rejected, 1);
        assert_eq!(outcome.report.queries, 2);
        assert!(outcome.report.latency.max_us >= outcome.report.latency.p50_us);
        assert!(outcome.report.final_utility > 0.0);
    }

    #[test]
    fn replaying_the_same_log_reproduces_responses_bit_for_bit() {
        let requests = sample_requests();
        let first = replay(&mut fresh_engine(), &requests);
        let second = replay(&mut fresh_engine(), &requests);
        assert_eq!(first.responses, second.responses);
        assert_eq!(
            first.report.final_utility.to_bits(),
            second.report.final_utility.to_bits()
        );
    }

    #[test]
    fn replay_jsonl_roundtrips_through_text() {
        let requests = sample_requests();
        let jsonl = crate::protocol::requests_to_jsonl(&requests);
        let from_memory = replay(&mut fresh_engine(), &requests);
        let from_text = replay_jsonl(&mut fresh_engine(), &jsonl).unwrap();
        assert_eq!(from_memory.responses, from_text.responses);
    }

    #[test]
    fn latency_summary_percentiles_are_ordered() {
        let summary = LatencySummary::from_latencies((1..=100).map(f64::from).collect());
        assert!(summary.p50_us <= summary.p95_us);
        assert!(summary.p95_us <= summary.p99_us);
        assert!(summary.p99_us <= summary.max_us);
        assert_eq!(summary.max_us, 100.0);
        assert_eq!(
            LatencySummary::from_latencies(vec![]),
            LatencySummary::default()
        );
    }
}
