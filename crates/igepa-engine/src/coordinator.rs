//! The sharded engine: N independent [`Shard`]s behind one coordinator.
//!
//! ## Partitioned state
//!
//! Users are placed onto shards by a pluggable
//! [`Partitioner`](igepa_core::Partitioner) when they first appear, and
//! stay put until a live resharding pass
//! ([`ShardedEngine::reshard`]) re-places them. Every shard serves a
//! **sub-instance** holding *all* events
//! but only the shard's users; event capacities in a sub-instance are
//! per-shard **quotas** that always sum to the true capacity. Because bid,
//! user-capacity and conflict constraints are per user, each shard's
//! repair loop is independent, and the quota invariant makes the merged
//! arrangement feasible *by construction*: per-event merged load is the
//! sum of shard loads, each bounded by its quota.
//!
//! ## Routing
//!
//! The coordinator validates every delta against a full-capacity **mirror
//! instance** first (so rejection semantics match the monolithic engine
//! exactly), then routes it:
//!
//! * user-scoped deltas go to the owning shard with the user id rewritten
//!   to the shard-local dense id;
//! * `AddEvent` is broadcast, splitting the capacity into quotas;
//! * `UpdateCapacity` on an event re-splits the quota, preserving current
//!   shard loads where possible (evictions only when the total shrinks
//!   below the merged load).
//!
//! ## Reconciliation
//!
//! Boundary events — events whose bidders span shards — can strand quota
//! on a shard with no demand while another shard's bidders go unseated.
//! Every [`ShardedConfig::reconcile_interval`] applied deltas (and on
//! explicit [`ShardedEngine::rebalance`]) the coordinator runs the bounded
//! exchange protocol of [`crate::reconcile`], moving slack quota toward
//! unmet demand and re-repairing the shards it touched. When the pass
//! observes persistent load skew it raises a **migration proposal**
//! (counted in [`CoordinatorStats::migration_proposals`], concretised by
//! [`ShardedEngine::migration_proposal`]) — quota exchange fixes
//! stranded capacity, but only moving *users* fixes structural skew.
//!
//! ## Elastic resharding
//!
//! [`ShardedEngine::reshard`] changes the shard count (or re-places
//! users at a constant count, e.g. under an
//! [`OverridePartitioner`](igepa_core::OverridePartitioner)) **live**:
//! every user's sub-state — interest columns, arrangement slice,
//! per-event quota share, and exact-sum `UtilityTracker` contribution —
//! moves with it. The pass is a pure re-partitioning: each new shard's
//! quota for an event starts at exactly the load its users bring (so no
//! pair is ever evicted) before slack is dealt by bidder counts, and
//! exact-sum absorption makes the merged utility bit-identical before
//! and after. The serving transport runs the pass at a worker barrier,
//! with the durability layer as the transaction seam: WAL-log the
//! `Reshard` request (catalogue-epoch-tagged, so it orders against
//! event broadcasts), checkpoint the pre-migration state, migrate, then
//! checkpoint the post-migration state — a crash on either side of the
//! cut recovers bit-exactly, replaying the logged reshard when needed.
//!
//! With `num_shards == 1` the single shard serves a clone of the full
//! instance and every request takes the exact code path of the monolithic
//! [`Engine`](crate::Engine), reproducing its responses bit for bit.

use crate::catalog::{CatalogSnapshot, EventCatalog};
use crate::durability::snapshot::{EngineSnapshotState, ShardRecord, STATE_VERSION};
use crate::protocol::MigrationRecord;
use crate::reconcile::{self, ReconcileReport};
use crate::shard::{
    ApplyOutcome, EngineConfig, EngineStats, RepairKind, Shard, ShardOp, ShardResume,
    SharedConflict, SharedInterest, SharedSolver,
};
use igepa_algos::WarmStart;
use igepa_core::{
    Arrangement, AttributeVector, CapacityTarget, ConflictFn, CoreError, DeltaEffect, Event,
    EventId, Instance, InstanceDelta, InstanceSnapshot, InterestFn, Partitioner, User, UserId,
    UtilityBreakdown, UtilityTracker,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration of the sharded coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedConfig {
    /// Number of shards (1 reproduces the monolithic engine bit for bit).
    pub num_shards: usize,
    /// Per-shard repair-loop knobs; shard `k` solves with base seed
    /// `shard.seed + k` so shards draw decorrelated solver streams.
    pub shard: EngineConfig,
    /// Run a reconciliation pass every this many applied deltas
    /// (0 = only on explicit [`ShardedEngine::rebalance`] calls).
    pub reconcile_interval: u64,
    /// Bounded exchange rounds per reconciliation pass.
    pub reconcile_rounds: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            num_shards: 1,
            shard: EngineConfig::default(),
            reconcile_interval: 64,
            reconcile_rounds: 3,
        }
    }
}

impl ShardedConfig {
    /// A config with `num_shards` shards and defaults everywhere else.
    pub fn with_shards(num_shards: usize) -> Self {
        ShardedConfig {
            num_shards,
            ..ShardedConfig::default()
        }
    }
}

/// Aggregate counters of the coordinator itself (shard counters live in
/// each shard's [`EngineStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoordinatorStats {
    /// Reconciliation passes run (periodic and explicit).
    pub reconcile_passes: u64,
    /// Capacity units moved between shards across all passes.
    pub quota_moved: u64,
    /// Boundary events seen by the most recent pass.
    pub last_boundary_events: usize,
    /// Live resharding passes completed ([`ShardedEngine::reshard`]).
    pub reshards: u64,
    /// Users whose owning shard changed, summed across all reshards.
    pub users_migrated: u64,
    /// Skew-triggered migration proposals raised by the reconcile loop
    /// (proposals are surfaced, never auto-executed).
    pub migration_proposals: u64,
}

/// Hand-written so stats from an engine that never resharded serialize
/// exactly as they did before the migration counters existed — the
/// version-1/2 checkpoint payloads stay byte-identical. The migration
/// counters are emitted only when nonzero.
impl serde::Serialize for CoordinatorStats {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            (
                "reconcile_passes".to_string(),
                serde::Serialize::to_value(&self.reconcile_passes),
            ),
            (
                "quota_moved".to_string(),
                serde::Serialize::to_value(&self.quota_moved),
            ),
            (
                "last_boundary_events".to_string(),
                serde::Serialize::to_value(&self.last_boundary_events),
            ),
        ];
        if self.reshards != 0 {
            entries.push((
                "reshards".to_string(),
                serde::Serialize::to_value(&self.reshards),
            ));
        }
        if self.users_migrated != 0 {
            entries.push((
                "users_migrated".to_string(),
                serde::Serialize::to_value(&self.users_migrated),
            ));
        }
        if self.migration_proposals != 0 {
            entries.push((
                "migration_proposals".to_string(),
                serde::Serialize::to_value(&self.migration_proposals),
            ));
        }
        serde::Value::Object(entries)
    }
}

/// Hand-written because pre-resharding checkpoints carry no migration
/// counters and the vendored serde derive has no `#[serde(default)]`:
/// missing counters decode as 0.
impl serde::Deserialize for CoordinatorStats {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = serde::expect_object(value, "CoordinatorStats")?;
        let required = |name: &str| serde::object_field(entries, name, "CoordinatorStats");
        let counter = |name: &str| -> Result<u64, serde::DeError> {
            match entries.iter().find(|(k, _)| k == name) {
                Some((_, v)) => serde::Deserialize::from_value(v),
                None => Ok(0),
            }
        };
        Ok(CoordinatorStats {
            reconcile_passes: serde::Deserialize::from_value(required("reconcile_passes")?)?,
            quota_moved: serde::Deserialize::from_value(required("quota_moved")?)?,
            last_boundary_events: serde::Deserialize::from_value(required(
                "last_boundary_events",
            )?)?,
            reshards: counter("reshards")?,
            users_migrated: counter("users_migrated")?,
            migration_proposals: counter("migration_proposals")?,
        })
    }
}

/// Per-shard summary answered to the `ShardStats` query.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatsEntry {
    /// Shard index.
    pub shard: usize,
    /// Users owned by the shard (including retired ones).
    pub users: usize,
    /// Pairs the shard currently serves.
    pub pairs: usize,
    /// Utility of the shard's slice of the arrangement.
    pub utility: f64,
    /// The shard's repair-loop counters.
    pub stats: EngineStats,
    /// Users migrated *into* this shard by live resharding (0 until a
    /// [`ShardedEngine::reshard`] runs).
    pub moved_in: u64,
    /// Users migrated *out of* this shard by live resharding.
    pub moved_out: u64,
}

/// Hand-written so entries from an engine that never resharded serialize
/// exactly as before the migration counters existed — the golden
/// response logs stay byte-identical. `moved_in` / `moved_out` are
/// emitted only when nonzero.
impl serde::Serialize for ShardStatsEntry {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("shard".to_string(), serde::Serialize::to_value(&self.shard)),
            ("users".to_string(), serde::Serialize::to_value(&self.users)),
            ("pairs".to_string(), serde::Serialize::to_value(&self.pairs)),
            (
                "utility".to_string(),
                serde::Serialize::to_value(&self.utility),
            ),
            ("stats".to_string(), serde::Serialize::to_value(&self.stats)),
        ];
        if self.moved_in != 0 {
            entries.push((
                "moved_in".to_string(),
                serde::Serialize::to_value(&self.moved_in),
            ));
        }
        if self.moved_out != 0 {
            entries.push((
                "moved_out".to_string(),
                serde::Serialize::to_value(&self.moved_out),
            ));
        }
        serde::Value::Object(entries)
    }
}

/// Hand-written because pre-resharding response logs carry no migration
/// counters (the vendored serde derive has no `#[serde(default)]`):
/// missing counters decode as 0.
impl serde::Deserialize for ShardStatsEntry {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = serde::expect_object(value, "ShardStatsEntry")?;
        let required = |name: &str| serde::object_field(entries, name, "ShardStatsEntry");
        let counter = |name: &str| -> Result<u64, serde::DeError> {
            match entries.iter().find(|(k, _)| k == name) {
                Some((_, v)) => serde::Deserialize::from_value(v),
                None => Ok(0),
            }
        };
        Ok(ShardStatsEntry {
            shard: serde::Deserialize::from_value(required("shard")?)?,
            users: serde::Deserialize::from_value(required("users")?)?,
            pairs: serde::Deserialize::from_value(required("pairs")?)?,
            utility: serde::Deserialize::from_value(required("utility")?)?,
            stats: serde::Deserialize::from_value(required("stats")?)?,
            moved_in: counter("moved_in")?,
            moved_out: counter("moved_out")?,
        })
    }
}

/// Interest adapter that copies cached values out of the global instance
/// instead of re-evaluating the interest function (which may be stateful
/// or expensive). `to_global` maps shard-local user ids to global ids.
struct CopiedInterest<'a> {
    global: &'a Instance,
    to_global: &'a [UserId],
}

impl InterestFn for CopiedInterest<'_> {
    fn interest(&self, event: &Event, user: &User) -> f64 {
        self.global
            .interest(event.id, self.to_global[user.id.index()])
    }
}

/// A partitioned arrangement-serving engine. See the module docs.
pub struct ShardedEngine {
    shards: Vec<Shard>,
    /// Shard count, independent of `shards.len()`: the TCP transport's
    /// per-shard dispatcher temporarily detaches the shards into worker
    /// threads, and routing decisions must keep working while they are
    /// out (see [`ShardedEngine::detach_shards`]).
    num_shards: usize,
    /// The shared event catalogue: the single writer of event-side state.
    /// Announcements are published here once (one σ evaluation) and
    /// adopted by the mirror and every shard as `Arc`-shared snapshots,
    /// so resident conflict memory is O(|V|²) independent of shard count.
    catalog: EventCatalog,
    /// Full-capacity global instance, kept in lockstep with the shards.
    mirror: Instance,
    sigma: SharedConflict,
    interest: SharedInterest,
    solver: SharedSolver,
    partitioner: Box<dyn Partitioner + Send>,
    /// Per global user: `(owning shard, shard-local id)`.
    owners: Vec<(usize, UserId)>,
    /// Per shard: shard-local id → global id.
    locals: Vec<Vec<UserId>>,
    config: ShardedConfig,
    /// Cached per-shard utility / pair counts (refreshed on every shard
    /// touch) so apply outcomes report merged totals in O(num_shards).
    shard_utility: Vec<f64>,
    shard_pairs: Vec<usize>,
    /// Rejections caught by mirror validation (shards never see them).
    rejected: u64,
    deltas_since_reconcile: u64,
    /// Events touched by deltas since the last reconciliation pass —
    /// the only places quota can newly strand, so the periodic pass
    /// scans just these instead of the whole catalogue.
    reconcile_candidates: BTreeSet<EventId>,
    coordinator_stats: CoordinatorStats,
    /// Per shard: users migrated `(in, out)` by live resharding. Feeds
    /// the `ShardStats` migration counters; checkpointed so recovered
    /// engines answer identical stats.
    migrations: Vec<(u64, u64)>,
    /// Seed counter of the ad-hoc cold solves run by
    /// [`ShardedEngine::cold_solve_ratio`].
    probe_counter: u64,
}

impl ShardedEngine {
    /// Creates a sharded engine over `instance`.
    ///
    /// `sigma` / `interest` are consulted only for event pairs and bid
    /// pairs introduced by future deltas, exactly as in the monolithic
    /// engine — but routed deltas evaluate them against **shard-local**
    /// user ids (attributes are preserved; ids are remapped), so both
    /// functions must be *id-independent*: pure functions of the event
    /// and user attribute vectors (`NeverConflict`, `TimeOverlapConflict`,
    /// `ConstantInterest`, `CosineInterest`, …). Id- or table-keyed
    /// implementations such as `TableInterest` would cache values for the
    /// wrong rows; if one slips through and a shard rejects a
    /// mirror-validated delta, the engine panics rather than desync.
    /// The solver is shared by all shards (solvers are stateless);
    /// shard `k` seeds it with `config.shard.seed + k`.
    pub fn new(
        instance: Instance,
        sigma: Box<dyn ConflictFn + Send + Sync>,
        interest: Box<dyn InterestFn + Send + Sync>,
        solver: Box<dyn WarmStart + Send + Sync>,
        partitioner: Box<dyn Partitioner + Send>,
        config: ShardedConfig,
    ) -> Self {
        let num_shards = config.num_shards.max(1);
        let sigma: SharedConflict = Arc::from(sigma);
        let interest: SharedInterest = Arc::from(interest);
        let solver: SharedSolver = Arc::from(solver);

        // Place every existing user.
        let assignment = igepa_core::assign_users(&instance, partitioner.as_ref(), num_shards);
        let mut locals: Vec<Vec<UserId>> = vec![Vec::new(); num_shards];
        let mut owners = Vec::with_capacity(instance.num_users());
        for (u, &k) in assignment.iter().enumerate() {
            owners.push((k, UserId::new(locals[k].len())));
            locals[k].push(UserId::new(u));
        }

        // Split every event's capacity into per-shard quotas, proportional
        // to each shard's bidder count (even when nobody bids yet).
        let quotas: Vec<Vec<usize>> = instance
            .events()
            .iter()
            .map(|event| {
                let mut bidders = vec![0usize; num_shards];
                for &u in &event.bidders {
                    bidders[assignment[u.index()]] += 1;
                }
                proportional_split(event.capacity, &bidders)
            })
            .collect();

        // The catalogue starts by sharing the instance's matrix
        // allocation; sub-instances adopt the same handle below, so the
        // O(|V|²) table exists once across mirror + catalogue + shards.
        let catalog = EventCatalog::from_instance(&instance);

        let mut shards = Vec::with_capacity(num_shards);
        for k in 0..num_shards {
            let sub_instance = if num_shards == 1 {
                // Bit-for-bit path: the single shard serves the instance
                // itself, exactly as the monolithic engine would.
                instance.clone()
            } else {
                build_sub_instance(&instance, &locals[k], |v| quotas[v.index()][k])
            };
            let shard_config = EngineConfig {
                seed: config.shard.seed.wrapping_add(k as u64),
                ..config.shard.clone()
            };
            shards.push(Shard::new(
                sub_instance,
                Arc::clone(&sigma),
                Arc::clone(&interest),
                Arc::clone(&solver),
                shard_config,
            ));
        }

        let shard_utility = shards.iter().map(Shard::utility).collect();
        let shard_pairs = shards.iter().map(|s| s.arrangement().len()).collect();
        ShardedEngine {
            shards,
            num_shards,
            catalog,
            mirror: instance,
            sigma,
            interest,
            solver,
            partitioner,
            owners,
            locals,
            config,
            shard_utility,
            shard_pairs,
            rejected: 0,
            deltas_since_reconcile: 0,
            reconcile_candidates: BTreeSet::new(),
            coordinator_stats: CoordinatorStats::default(),
            migrations: vec![(0, 0); num_shards],
            probe_counter: 0,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The full-capacity global instance (kept in lockstep with shards).
    pub fn instance(&self) -> &Instance {
        &self.mirror
    }

    /// One shard, for inspection.
    pub fn shard(&self, k: usize) -> &Shard {
        &self.shards[k]
    }

    /// The coordinator's configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Owning shard of a global user id, if the user exists.
    pub fn shard_of(&self, user: UserId) -> Option<usize> {
        self.owners.get(user.index()).map(|&(k, _)| k)
    }

    /// Coordinator-level counters (reconciliation activity).
    pub fn coordinator_stats(&self) -> &CoordinatorStats {
        &self.coordinator_stats
    }

    /// The shared event catalogue (epoch, true capacities, shared
    /// conflict matrix).
    pub fn catalog(&self) -> &EventCatalog {
        &self.catalog
    }

    /// Aggregated repair-loop counters across shards, plus the rejections
    /// caught by mirror validation. With one shard this equals the
    /// monolithic engine's stats.
    pub fn stats(&self) -> EngineStats {
        // Seed the fold from the first shard (not `default()`) so a
        // single shard's counters — including a *negative* observed
        // drift, which `merged`'s max would clobber with 0.0 — pass
        // through unchanged. A shardless engine cannot be constructed,
        // but `unwrap_or_default` keeps this read path panic-free.
        let mut total = self
            .shards
            .iter()
            .map(|shard| *shard.stats())
            .reduce(|a, b| a.merged(&b))
            .unwrap_or_default();
        total.deltas_rejected += self.rejected;
        total
    }

    /// Total utility currently served (sum of shard utilities).
    pub fn utility(&self) -> f64 {
        // lint:allow(no-raw-float-accum): shard-order-fixed fold of per-shard exact totals; shard count and order are deterministic, so replay and recovery reproduce this sum bit for bit
        self.shard_utility.iter().sum()
    }

    /// Total pairs currently served.
    pub fn num_pairs(&self) -> usize {
        self.shard_pairs.iter().sum()
    }

    /// The merged arrangement over the global instance: every shard's
    /// assignments with local user ids mapped back to global ids. Always
    /// feasible for [`ShardedEngine::instance`] (the quota invariant).
    pub fn merged_arrangement(&self) -> Arrangement {
        let mut merged = Arrangement::new(self.mirror.num_events(), self.mirror.num_users());
        for (k, shard) in self.shards.iter().enumerate() {
            for (local, &global) in self.locals[k].iter().enumerate() {
                for &v in shard.arrangement().events_of(UserId::new(local)) {
                    merged.assign(v, global);
                }
            }
        }
        merged
    }

    /// Utility breakdown of the merged arrangement, computed by absorbing
    /// the per-shard exact accumulators into one tracker — O(num_shards),
    /// no pair iteration — and then rounding once. Exact sums are
    /// order-independent, so the result is bit-identical to a
    /// from-scratch [`Arrangement::utility`] recompute over the merged
    /// arrangement (summing the shards' already-rounded totals instead
    /// can drift by an ulp per shard).
    pub fn merged_utility(&self) -> UtilityBreakdown {
        let mut merged = UtilityTracker::new();
        for shard in &self.shards {
            merged.absorb(shard.tracker());
        }
        merged.breakdown(self.mirror.beta())
    }

    /// Runs one cold solve of the full instance with the shared solver and
    /// reports `served / cold` (1.0 when the cold solve is empty). The
    /// monolithic quality yardstick; does not modify the served state.
    pub fn cold_solve_ratio(&mut self) -> f64 {
        let seed = self.config.shard.seed.wrapping_add(self.probe_counter);
        self.probe_counter += 1;
        let cold = self.solver.run_seeded(&self.mirror, seed);
        let cold_utility = cold.utility_value(&self.mirror);
        if cold_utility <= 0.0 {
            return 1.0;
        }
        self.merged_utility().total / cold_utility
    }

    /// Applies one delta: validate on the mirror, route to the owning
    /// shard(s), repair, and reconcile when the interval elapsed.
    ///
    /// Event announcements take the catalogue path instead: one
    /// coordinator-side publish (σ evaluated once), then every shard
    /// adopts the new snapshot in O(1) — the pre-catalogue cost of k+1
    /// full σ scans per broadcast is gone.
    pub fn apply(&mut self, delta: &InstanceDelta) -> Result<ApplyOutcome, CoreError> {
        if let InstanceDelta::AddEvent { capacity, attrs } = delta {
            let (snapshot, effect) = self.publish_add_event(*capacity, attrs);
            self.note_candidates(&effect);
            let split = proportional_split(*capacity, &vec![0usize; self.num_shards]);
            let mut worst = RepairKind::Untouched;
            for k in 0..self.num_shards {
                let outcome = self.shards[k].apply_announcement(&snapshot, split[k]);
                if outcome.repair.severity() > worst.severity() {
                    worst = outcome.repair;
                }
                self.refresh(k, &outcome);
            }
            let outcome = ApplyOutcome {
                kind: delta.kind().to_string(),
                repair: worst,
                utility: self.utility(),
                num_pairs: self.num_pairs(),
            };
            self.after_deltas(1);
            return Ok(outcome);
        }
        let effect =
            match self
                .mirror
                .apply_delta(delta, self.sigma.as_ref(), self.interest.as_ref())
            {
                Ok(effect) => effect,
                Err(e) => {
                    self.rejected += 1;
                    return Err(e);
                }
            };
        self.note_candidates(&effect);
        let repair = self.route(delta, effect.created_user);
        let outcome = ApplyOutcome {
            kind: delta.kind().to_string(),
            repair,
            utility: self.utility(),
            num_pairs: self.num_pairs(),
        };
        self.after_deltas(1);
        Ok(outcome)
    }

    /// Publishes one `AddEvent` to the catalogue and brings the mirror
    /// into lockstep by adopting the published matrix (σ evaluated
    /// exactly once, inside the publish). Infallible, like `AddEvent`
    /// validation on the monolithic engine.
    fn publish_add_event(
        &mut self,
        capacity: usize,
        attrs: &AttributeVector,
    ) -> (Arc<CatalogSnapshot>, DeltaEffect) {
        let snapshot = self
            .catalog
            .publish_event(capacity, attrs.clone(), self.sigma.as_ref());
        let effect = self
            .mirror
            .apply_add_event_shared(capacity, attrs.clone(), snapshot.conflicts_handle())
            // lint:allow(no-panic-in-server-paths): the mirror is rebuilt from the same catalogue this publish just extended; a disagreement means mirror/catalogue desync, which no response could paper over
            .expect("mirror tracks the catalogue");
        (snapshot, effect)
    }

    /// Applies a batch with one repair pass per touched shard. Semantics
    /// match the monolithic engine: the prefix before the first invalid
    /// delta stays applied (and repaired) and the error is returned.
    pub fn apply_batch(&mut self, deltas: &[InstanceDelta]) -> Result<ApplyOutcome, CoreError> {
        let num_shards = self.num_shards;
        let mut per_shard: Vec<Vec<ShardOp>> = vec![Vec::new(); num_shards];
        let mut first_error = None;
        let mut accepted = 0u64;

        for delta in deltas {
            // Announcements go through the catalogue: publish once,
            // enqueue an O(1) adopt op for every shard (ordering within
            // the burst is preserved, so later deltas may reference the
            // new event).
            if let InstanceDelta::AddEvent { capacity, attrs } = delta {
                let (snapshot, effect) = self.publish_add_event(*capacity, attrs);
                accepted += 1;
                self.note_candidates(&effect);
                let split = proportional_split(*capacity, &vec![0usize; num_shards]);
                for (k, ops) in per_shard.iter_mut().enumerate() {
                    ops.push(ShardOp::Announce {
                        snapshot: Arc::clone(&snapshot),
                        quota: split[k],
                    });
                }
                continue;
            }
            let effect =
                match self
                    .mirror
                    .apply_delta(delta, self.sigma.as_ref(), self.interest.as_ref())
                {
                    Ok(effect) => effect,
                    Err(e) => {
                        self.rejected += 1;
                        first_error = Some(e);
                        break;
                    }
                };
            accepted += 1;
            self.note_candidates(&effect);
            self.plan(delta, effect.created_user, &mut per_shard);
        }

        let mut worst = RepairKind::Untouched;
        for k in 0..num_shards {
            // A single shard always receives the batch (even an empty
            // one) so the monolithic repair-once path is reproduced.
            if per_shard[k].is_empty() && num_shards > 1 {
                continue;
            }
            let outcome = self.shards[k].apply_ops(&per_shard[k]).unwrap_or_else(|e| {
                // lint:allow(no-panic-in-server-paths): documented contract — the mirror validated this batch, so a shard rejection means the caller's conflict/interest functions are id-dependent; continuing would silently desync mirror and shards
                panic!(
                    "shard {k} rejected a mirror-validated batch ({e});                      ShardedEngine requires attribute-based (id-independent)                      conflict and interest functions"
                )
            });
            if outcome.repair.severity() > worst.severity() {
                worst = outcome.repair;
            }
            self.refresh(k, &outcome);
        }
        self.after_deltas(accepted);
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(ApplyOutcome {
            kind: "batch".to_string(),
            repair: worst,
            utility: self.utility(),
            num_pairs: self.num_pairs(),
        })
    }

    /// Runs an explicit full reconciliation pass (every event examined)
    /// and reports what moved.
    pub fn rebalance(&mut self) -> ReconcileReport {
        self.reconcile_now(true)
    }

    /// Live resharding: re-places every user with the partitioner at
    /// `new_shards` shards and rebuilds the engine around the new
    /// layout, moving each migrating user's complete sub-state —
    /// interest columns, arrangement slice, per-event quota share, and
    /// exact-sum tracker contribution — to its new owner.
    ///
    /// The pass is a pure re-partitioning of served state, never a
    /// re-solve: every `(event, user)` pair is preserved (each new
    /// shard's quota for an event starts at exactly the load its users
    /// bring before slack is dealt by bidder counts), so the merged
    /// arrangement is identical pair for pair, stays feasible by the
    /// quota invariant, and the merged utility is bit-identical by
    /// exact-sum partition independence. Deterministic for a
    /// deterministic partitioner, which is what makes a WAL-logged
    /// `Reshard` replay to the identical engine during recovery.
    ///
    /// Must run at a barrier (shards attached and quiescent). Shard
    /// counts may grow or shrink; `new_shards == num_shards` re-places
    /// users without changing the count (useful with an
    /// [`OverridePartitioner`](igepa_core::OverridePartitioner) honoring
    /// a migration proposal). Errors only on a zero target; the engine
    /// is untouched on error.
    pub fn reshard(&mut self, new_shards: usize) -> Result<MigrationRecord, String> {
        debug_assert_eq!(self.shards.len(), self.num_shards, "barrier first");
        debug_assert!(
            self.shards.iter().all(Shard::is_quiescent),
            "reshard must observe a quiescent engine"
        );
        if new_shards == 0 {
            return Err("cannot reshard to zero shards".to_string());
        }
        let old_shards = self.num_shards;
        let num_events = self.mirror.num_events();

        // New placement for every user, visited in global id order —
        // exactly how registration consults the partitioner. Retired
        // users move with their slot (they carry no pairs or bids).
        let mut new_locals: Vec<Vec<UserId>> = vec![Vec::new(); new_shards];
        let mut new_owners = Vec::with_capacity(self.owners.len());
        let mut moved_users = 0u64;
        let mut moved_in = vec![0u64; new_shards];
        let mut moved_out = vec![0u64; old_shards];
        for u in 0..self.owners.len() {
            let global = UserId::new(u);
            let bids = &self.mirror.user(global).bids;
            let k = self
                .partitioner
                .shard_for(global, bids, new_shards)
                .min(new_shards - 1);
            if k != self.owners[u].0 {
                moved_users += 1;
                moved_in[k] += 1;
                moved_out[self.owners[u].0] += 1;
            }
            new_owners.push((k, UserId::new(new_locals[k].len())));
            new_locals[k].push(global);
        }

        // Per-event per-new-shard loads under the new placement: the
        // floor of each new quota, so no shard ever needs to evict.
        let mut new_loads: Vec<Vec<usize>> = vec![vec![0; new_shards]; num_events];
        for (k, shard) in self.shards.iter().enumerate() {
            for (local, &global) in self.locals[k].iter().enumerate() {
                let j = new_owners[global.index()].0;
                for &v in shard.arrangement().events_of(UserId::new(local)) {
                    new_loads[v.index()][j] += 1;
                }
            }
        }
        let new_quotas: Vec<Vec<usize>> = (0..num_events)
            .map(|v| {
                let event = EventId::new(v);
                let capacity = self.mirror.event(event).capacity;
                let loads = &new_loads[v];
                let total_load: usize = loads.iter().sum();
                debug_assert!(capacity >= total_load, "merged arrangement was feasible");
                let mut bidders = vec![0usize; new_shards];
                for &u in &self.mirror.event(event).bidders {
                    bidders[new_owners[u.index()].0] += 1;
                }
                let slack = proportional_split(capacity - total_load, &bidders);
                loads.iter().zip(slack).map(|(&l, s)| l + s).collect()
            })
            .collect();

        // Quota units leaving their old shard (the migration's quota
        // movement, mirroring ReconcileReport::quota_moved).
        let mut quota_moved = 0u64;
        for v in 0..num_events {
            let event = EventId::new(v);
            for k in 0..old_shards {
                let old_q = self.shards[k].quota_of(event);
                let new_q = if k < new_shards { new_quotas[v][k] } else { 0 };
                quota_moved += old_q.saturating_sub(new_q) as u64;
            }
        }

        // Re-index every shard-local arrangement slice to the new
        // owners: pair-for-pair transfer, per-user event order kept.
        let mut new_arrangements: Vec<Arrangement> = new_locals
            .iter()
            .map(|locals| Arrangement::new(num_events, locals.len()))
            .collect();
        for (j, locals) in new_locals.iter().enumerate() {
            for (new_local, &global) in locals.iter().enumerate() {
                let (k, old_local) = self.owners[global.index()];
                for &v in self.shards[k].arrangement().events_of(old_local) {
                    new_arrangements[j].assign(v, UserId::new(new_local));
                }
            }
        }

        // Counters transfer by shard slot: surviving slots keep their
        // history, retired slots fold into slot 0 (exactly how the
        // engine-level aggregate folds), grown slots start fresh.
        let mut new_stats: Vec<EngineStats> = (0..new_shards)
            .map(|j| {
                if j < old_shards {
                    *self.shards[j].stats()
                } else {
                    EngineStats::default()
                }
            })
            .collect();
        for k in new_shards..old_shards {
            new_stats[0] = new_stats[0].merged(self.shards[k].stats());
        }
        let mut new_migrations: Vec<(u64, u64)> = (0..new_shards)
            .map(|j| {
                if j < old_shards {
                    self.migrations[j]
                } else {
                    (0, 0)
                }
            })
            .collect();
        for k in new_shards..old_shards {
            new_migrations[0].0 += self.migrations[k].0;
            new_migrations[0].1 += self.migrations[k].1;
        }
        for (j, &m) in moved_in.iter().enumerate() {
            new_migrations[j].0 += m;
        }
        for (k, &m) in moved_out.iter().enumerate() {
            let slot = if k < new_shards { k } else { 0 };
            new_migrations[slot].1 += m;
        }

        let catalog_epoch = self.catalog.epoch();
        let mut rebuilt = Vec::with_capacity(new_shards);
        for (j, arrangement) in new_arrangements.into_iter().enumerate() {
            let sub_instance = if new_shards == 1 {
                // The monolithic bit-for-bit path of `new` / `restore`.
                self.mirror.clone()
            } else {
                build_sub_instance(&self.mirror, &new_locals[j], |v| new_quotas[v.index()][j])
            };
            let shard_config = EngineConfig {
                seed: self.config.shard.seed.wrapping_add(j as u64),
                ..self.config.shard.clone()
            };
            let (solve_counter, last_staleness_check) = if j < old_shards {
                (
                    self.shards[j].solve_counter(),
                    self.shards[j].last_staleness_check(),
                )
            } else {
                (0, 0)
            };
            rebuilt.push(Shard::restore(
                ShardResume {
                    instance: sub_instance,
                    arrangement,
                    stats: new_stats[j],
                    solve_counter,
                    last_staleness_check,
                    catalog_epoch,
                },
                Arc::clone(&self.sigma),
                Arc::clone(&self.interest),
                Arc::clone(&self.solver),
                shard_config,
            ));
        }

        self.shards = rebuilt;
        self.num_shards = new_shards;
        self.config.num_shards = new_shards;
        self.owners = new_owners;
        self.locals = new_locals;
        self.migrations = new_migrations;
        self.shard_utility = self.shards.iter().map(Shard::utility).collect();
        self.shard_pairs = self.shards.iter().map(|s| s.arrangement().len()).collect();
        self.coordinator_stats.reshards += 1;
        self.coordinator_stats.users_migrated += moved_users;
        Ok(MigrationRecord {
            from_shards: old_shards,
            to_shards: new_shards,
            moved_users,
            quota_moved,
            catalog_epoch,
        })
    }

    /// Swaps the placement policy. Existing placements are untouched
    /// until the next [`ShardedEngine::reshard`] pass re-consults the
    /// policy (newly registered users consult it immediately). This is
    /// how a [`ShardedEngine::migration_proposal`] is executed: wrap the
    /// current policy in an
    /// [`OverridePartitioner`](igepa_core::OverridePartitioner) seeded
    /// with the proposed moves, install it here, and reshard at the
    /// current shard count.
    pub fn set_partitioner(&mut self, partitioner: Box<dyn Partitioner + Send>) {
        self.partitioner = partitioner;
    }

    /// Concretises the reconcile loop's skew signal into a migration
    /// plan: when the busiest shard serves at least twice the pairs of
    /// the least busy one (plus a small hysteresis floor), proposes
    /// moving that donor's heaviest users to the receiver until roughly
    /// half the gap would close. Returns `(global user, target shard)`
    /// moves, ready to seed an
    /// [`OverridePartitioner`](igepa_core::OverridePartitioner) for a
    /// same-count [`ShardedEngine::reshard`]; `None` while load is
    /// balanced. Read-only and deterministic — proposals are surfaced,
    /// never auto-executed.
    pub fn migration_proposal(&self) -> Option<Vec<(UserId, usize)>> {
        if self.num_shards <= 1 || self.shards.len() != self.num_shards {
            return None;
        }
        let donor = (0..self.num_shards).max_by_key(|&k| (self.shard_pairs[k], usize::MAX - k))?;
        let receiver = (0..self.num_shards).min_by_key(|&k| (self.shard_pairs[k], k))?;
        let (heavy, light) = (self.shard_pairs[donor], self.shard_pairs[receiver]);
        if donor == receiver || heavy < 2 * light + 8 {
            return None;
        }
        // Donor users by (most pairs, lowest global id), moved until
        // half the gap closes.
        let mut candidates: Vec<(usize, UserId)> = self.locals[donor]
            .iter()
            .enumerate()
            .map(|(local, &global)| {
                (
                    self.shards[donor]
                        .arrangement()
                        .events_of(UserId::new(local))
                        .len(),
                    global,
                )
            })
            .filter(|&(pairs, _)| pairs > 0)
            .collect();
        candidates.sort_by_key(|&(pairs, global)| (std::cmp::Reverse(pairs), global));
        let target = (heavy - light) / 2;
        let mut moved = 0usize;
        let mut plan = Vec::new();
        for (pairs, global) in candidates {
            if moved >= target {
                break;
            }
            plan.push((global, receiver));
            moved += pairs;
        }
        if plan.is_empty() {
            None
        } else {
            Some(plan)
        }
    }

    /// Applies a shard-local delta, turning a rejection into a loud
    /// invariant panic: the mirror already validated the delta, so a
    /// shard can only disagree when the caller's σ/interest functions
    /// violate the id-independence contract of [`ShardedEngine::new`] —
    /// continuing would silently desync the mirror from the shards.
    fn shard_apply(&mut self, k: usize, delta: &InstanceDelta) -> ApplyOutcome {
        let outcome = self.shards[k].apply(delta).unwrap_or_else(|e| {
            // lint:allow(no-panic-in-server-paths): documented contract (see the doc comment above) — a mirror-validated delta failing on its shard means id-dependent σ/interest functions; continuing would silently desync the mirror
            panic!(
                "shard {k} rejected a mirror-validated delta ({e});                  ShardedEngine requires attribute-based (id-independent)                  conflict and interest functions"
            )
        });
        self.refresh(k, &outcome);
        outcome
    }

    /// Maps a mirror-validated *user-scoped* delta (including `AddUser`,
    /// which registers the new user) to its owning shard and the
    /// shard-local delta. The single source of user routing, shared by
    /// [`ShardedEngine::route`], batch planning, and the TCP transport's
    /// per-shard dispatcher.
    fn user_route(
        &mut self,
        delta: &InstanceDelta,
        created_user: Option<UserId>,
    ) -> (usize, InstanceDelta) {
        match delta {
            InstanceDelta::AddUser { .. } => {
                // lint:allow(no-panic-in-server-paths): the mirror's DeltaEffect always carries the created id for AddUser; its absence is a dispatch bug in this file, not a client-recoverable state
                let k = self.register_new_user(created_user.expect("AddUser creates a user"));
                (k, delta.clone())
            }
            _ => self.rewrite_owner(delta),
        }
    }

    /// Validates a user-scoped delta on the mirror and routes it, without
    /// touching any shard: the per-shard worker dispatcher's fast path
    /// (the owning worker applies the returned shard-local delta).
    pub(crate) fn plan_user_delta(
        &mut self,
        delta: &InstanceDelta,
    ) -> Result<(usize, InstanceDelta), CoreError> {
        debug_assert!(
            !matches!(
                delta,
                InstanceDelta::AddEvent { .. }
                    | InstanceDelta::UpdateCapacity {
                        target: CapacityTarget::Event(_),
                        ..
                    }
            ),
            "event-scoped deltas broadcast to every shard and must barrier"
        );
        let effect =
            match self
                .mirror
                .apply_delta(delta, self.sigma.as_ref(), self.interest.as_ref())
            {
                Ok(effect) => effect,
                Err(e) => {
                    self.rejected += 1;
                    return Err(e);
                }
            };
        self.note_candidates(&effect);
        Ok(self.user_route(delta, effect.created_user))
    }

    /// Routes one mirror-validated delta and returns the worst repair the
    /// shards ran for it. `AddEvent` never reaches here — it takes the
    /// catalogue publish path in [`ShardedEngine::apply`].
    fn route(&mut self, delta: &InstanceDelta, created_user: Option<UserId>) -> RepairKind {
        let num_shards = self.num_shards;
        match delta {
            InstanceDelta::AddUser { .. } => {
                let (k, local) = self.user_route(delta, created_user);
                self.shard_apply(k, &local).repair
            }
            InstanceDelta::AddEvent { .. } => {
                // lint:allow(no-panic-in-server-paths): ShardedEngine::apply intercepts AddEvent before routing; reaching this arm is a dispatch bug in this file, with no request-scoped recovery
                unreachable!("AddEvent publishes through the catalogue")
            }
            InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(event),
                capacity,
            } => {
                self.catalog.set_capacity(*event, *capacity);
                let quotas = self.resplit_event(*event, *capacity);
                let mut worst = RepairKind::Untouched;
                for k in 0..num_shards {
                    let outcome = self.shard_apply(
                        k,
                        &InstanceDelta::UpdateCapacity {
                            target: CapacityTarget::Event(*event),
                            capacity: quotas[k],
                        },
                    );
                    if outcome.repair.severity() > worst.severity() {
                        worst = outcome.repair;
                    }
                }
                worst
            }
            _ => {
                let (k, local) = self.user_route(delta, created_user);
                self.shard_apply(k, &local).repair
            }
        }
    }

    /// Batch planning: registers new users, splits broadcast capacities
    /// and pushes the shard-local op(s) onto `per_shard`. `AddEvent` is
    /// handled by the catalogue publish in [`ShardedEngine::apply_batch`].
    fn plan(
        &mut self,
        delta: &InstanceDelta,
        created_user: Option<UserId>,
        per_shard: &mut [Vec<ShardOp>],
    ) {
        match delta {
            InstanceDelta::AddUser { .. } => {
                let (k, local) = self.user_route(delta, created_user);
                per_shard[k].push(ShardOp::Delta(local));
            }
            InstanceDelta::AddEvent { .. } => {
                // lint:allow(no-panic-in-server-paths): apply_batch publishes AddEvent through the catalogue before planning; reaching this arm is a dispatch bug in this file, with no request-scoped recovery
                unreachable!("AddEvent publishes through the catalogue")
            }
            InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(event),
                capacity,
            } => {
                self.catalog.set_capacity(*event, *capacity);
                let quotas = self.resplit_event(*event, *capacity);
                for (k, batch) in per_shard.iter_mut().enumerate() {
                    batch.push(ShardOp::Delta(InstanceDelta::UpdateCapacity {
                        target: CapacityTarget::Event(*event),
                        capacity: quotas[k],
                    }));
                }
            }
            _ => {
                let (k, local) = self.user_route(delta, created_user);
                per_shard[k].push(ShardOp::Delta(local));
            }
        }
    }

    /// Assigns a freshly created global user to a shard and records the
    /// global → (shard, local) mapping. Returns the shard.
    fn register_new_user(&mut self, global: UserId) -> usize {
        let bids = &self.mirror.user(global).bids;
        let k = self
            .partitioner
            .shard_for(global, bids, self.num_shards)
            .min(self.num_shards - 1);
        self.owners.push((k, UserId::new(self.locals[k].len())));
        self.locals[k].push(global);
        k
    }

    /// Rewrites a user-scoped delta to the owning shard's local id.
    fn rewrite_owner(&self, delta: &InstanceDelta) -> (usize, InstanceDelta) {
        let global = match delta {
            InstanceDelta::RemoveUser { user }
            | InstanceDelta::UpdateBids { user, .. }
            | InstanceDelta::UpdateInteractionScore { user, .. }
            | InstanceDelta::UpdateCapacity {
                target: CapacityTarget::User(user),
                ..
            } => *user,
            // lint:allow(no-panic-in-server-paths): route/plan only call rewrite_owner for the four user-scoped kinds matched above; any other kind here is a dispatch bug in this file
            _ => unreachable!("route/plan dispatch covers the other kinds"),
        };
        let (k, local) = self.owners[global.index()];
        let rewritten = match delta {
            InstanceDelta::RemoveUser { .. } => InstanceDelta::RemoveUser { user: local },
            InstanceDelta::UpdateBids { bids, .. } => InstanceDelta::UpdateBids {
                user: local,
                bids: bids.clone(),
            },
            InstanceDelta::UpdateInteractionScore { score, .. } => {
                InstanceDelta::UpdateInteractionScore {
                    user: local,
                    score: *score,
                }
            }
            InstanceDelta::UpdateCapacity { capacity, .. } => InstanceDelta::UpdateCapacity {
                target: CapacityTarget::User(local),
                capacity: *capacity,
            },
            // lint:allow(no-panic-in-server-paths): the match above already proved this delta is one of the four user-scoped kinds; this arm only exists to satisfy exhaustiveness
            _ => unreachable!(),
        };
        (k, rewritten)
    }

    /// Re-splits an event's (possibly changed) total capacity into quotas,
    /// preserving each shard's current load when the total allows it;
    /// slack is dealt proportionally to bidder counts. When the total
    /// shrinks below the merged load, loads are cut proportionally (the
    /// shards evict through their normal repair path).
    fn resplit_event(&self, event: EventId, capacity: usize) -> Vec<usize> {
        debug_assert!(
            !self.shards.is_empty(),
            "event capacity changes need the shard loads; barrier first"
        );
        let num_shards = self.num_shards;
        let loads: Vec<usize> = self
            .shards
            .iter()
            .map(|s| {
                if event.index() < s.arrangement().num_events() {
                    s.load_of(event)
                } else {
                    0
                }
            })
            .collect();
        let total_load: usize = loads.iter().sum();
        if capacity >= total_load {
            let mut bidders = vec![0usize; num_shards];
            if event.index() < self.mirror.num_events() {
                for &u in &self.mirror.event(event).bidders {
                    bidders[self.owners[u.index()].0] += 1;
                }
            }
            let slack = proportional_split(capacity - total_load, &bidders);
            loads.iter().zip(slack).map(|(&l, s)| l + s).collect()
        } else {
            proportional_split(capacity, &loads)
        }
    }

    /// Updates the cached utility / pair count of a shard from its latest
    /// apply outcome.
    fn refresh(&mut self, k: usize, outcome: &ApplyOutcome) {
        self.shard_utility[k] = outcome.utility;
        self.shard_pairs[k] = outcome.num_pairs;
    }

    /// Reconciliation bookkeeping after `accepted` applied deltas.
    fn after_deltas(&mut self, accepted: u64) {
        self.note_applied(accepted);
        if self.periodic_reconcile_pending() {
            self.run_pending_reconcile();
        }
    }

    /// Counts applied deltas toward the periodic reconcile interval. The
    /// per-shard worker dispatcher calls this from its completion handler
    /// (where `after_deltas` would run on the serial path).
    pub(crate) fn note_applied(&mut self, accepted: u64) {
        self.deltas_since_reconcile += accepted;
    }

    /// Whether the periodic reconcile interval has elapsed. The dispatcher
    /// checks this after every completion and barriers the workers before
    /// calling [`ShardedEngine::run_pending_reconcile`].
    pub(crate) fn periodic_reconcile_pending(&self) -> bool {
        self.num_shards > 1
            && self.config.reconcile_interval > 0
            && self.deltas_since_reconcile >= self.config.reconcile_interval
    }

    /// Runs the due periodic reconcile pass (shards must be attached).
    pub(crate) fn run_pending_reconcile(&mut self) {
        self.deltas_since_reconcile = 0;
        self.reconcile_now(false);
    }

    /// Updates the cached utility / pair count for a shard whose apply ran
    /// on a worker thread (the dispatcher's analogue of `refresh`).
    pub(crate) fn note_outcome(&mut self, k: usize, outcome: &ApplyOutcome) {
        self.refresh(k, outcome);
    }

    /// Rejections caught by mirror validation (shards never see them);
    /// the transport's query cache folds this into cached stats exactly
    /// as [`ShardedEngine::stats`] and the shard-stats entries do.
    pub(crate) fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// The global-user → `(shard, shard-local id)` table. The transport's
    /// query cache mirrors it (append-only between barriers) so
    /// connection threads can route per-entity reads without entering the
    /// dispatch queue.
    pub(crate) fn owners(&self) -> &[(usize, UserId)] {
        &self.owners
    }

    /// Per-shard `(moved in, moved out)` live-migration counters, in
    /// shard order. The transport's query cache mirrors them (they only
    /// change at barrier-executed reshards, which refresh the whole
    /// cache) so cached `ShardStats` answers stay bit-identical to the
    /// serial backend's.
    pub(crate) fn shard_migrations(&self) -> &[(u64, u64)] {
        &self.migrations
    }

    /// Moves the shards out of the coordinator so per-shard worker
    /// threads can own them. While detached, only mirror-side routing
    /// ([`ShardedEngine::plan_user_delta`]) and the cached aggregates
    /// (`utility`, `num_pairs`) keep working; anything that reads shard
    /// state must [`ShardedEngine::attach_shards`] first.
    pub(crate) fn detach_shards(&mut self) -> Vec<Shard> {
        debug_assert_eq!(self.shards.len(), self.num_shards, "shards already out");
        std::mem::take(&mut self.shards)
    }

    /// Puts the shards back after a worker barrier, in shard order.
    pub(crate) fn attach_shards(&mut self, shards: Vec<Shard>) {
        debug_assert!(self.shards.is_empty(), "shards already attached");
        debug_assert_eq!(shards.len(), self.num_shards);
        self.shards = shards;
    }

    /// Records where a delta may have stranded quota: the events it
    /// dirtied plus every bid of the users it dirtied (a user-capacity
    /// change shifts demand at all of their events).
    fn note_candidates(&mut self, effect: &igepa_core::DeltaEffect) {
        if self.num_shards <= 1 {
            return;
        }
        self.reconcile_candidates
            .extend(effect.dirty_events.iter().copied());
        if let Some(event) = effect.created_event {
            self.reconcile_candidates.insert(event);
        }
        for &user in &effect.dirty_users {
            if user.index() < self.mirror.num_users() {
                self.reconcile_candidates
                    .extend(self.mirror.user(user).bids.iter().copied());
            }
        }
    }

    fn reconcile_now(&mut self, full: bool) -> ReconcileReport {
        let events: Vec<EventId> = if full {
            self.mirror.events().iter().map(|e| e.id).collect()
        } else {
            self.reconcile_candidates.iter().copied().collect()
        };
        self.reconcile_candidates.clear();
        let report = reconcile::run(
            &mut self.shards,
            &self.mirror,
            &self.owners,
            &events,
            self.config.reconcile_rounds,
        );
        self.coordinator_stats.reconcile_passes += 1;
        self.coordinator_stats.quota_moved += report.quota_moved as u64;
        self.coordinator_stats.last_boundary_events = report.boundary_events;
        if report.quota_moved > 0 {
            for (k, shard) in self.shards.iter().enumerate() {
                self.shard_utility[k] = shard.utility();
                self.shard_pairs[k] = shard.arrangement().len();
            }
        }
        // Quota exchange cannot fix structural skew — only moving users
        // can. When the post-pass load remains skewed, raise a migration
        // proposal (a counter plus the concrete plan from
        // [`ShardedEngine::migration_proposal`]); executing it is the
        // operator's (or the serving layer's) call.
        if self.migration_proposal().is_some() {
            self.coordinator_stats.migration_proposals += 1;
        }
        report
    }

    /// Events currently assigned to a global user (empty for unknown
    /// ids), read from the owning shard.
    pub fn assignments_of(&self, user: UserId) -> Vec<EventId> {
        self.owners
            .get(user.index())
            .map(|&(k, local)| self.shards[k].arrangement().events_of(local).to_vec())
            .unwrap_or_default()
    }

    /// Captures the engine's complete logical state as a versioned,
    /// serializable checkpoint covering WAL sequence `wal_seq`. Must be
    /// called at a barrier (shards attached and quiescent); together with
    /// [`ShardedEngine::restore_state`] it reproduces the engine **bit
    /// for bit** — arrangement, utility sums, seed counters, routing
    /// tables and rejection counters all round-trip exactly.
    pub fn snapshot_state(&self, wal_seq: u64) -> EngineSnapshotState {
        debug_assert_eq!(self.shards.len(), self.num_shards, "barrier first");
        debug_assert!(
            self.shards.iter().all(Shard::is_quiescent),
            "checkpoints must observe a quiescent engine"
        );
        let shards = self
            .shards
            .iter()
            .map(|shard| {
                let breakdown = shard.utility_breakdown();
                ShardRecord {
                    quotas: (0..self.mirror.num_events())
                        .map(|v| shard.quota_of(EventId::new(v)))
                        .collect(),
                    arrangement: shard.arrangement().clone(),
                    stats: *shard.stats(),
                    solve_counter: shard.solve_counter(),
                    last_staleness_check: shard.last_staleness_check(),
                    catalog_epoch: shard.catalog_epoch(),
                    interest_sum: breakdown.interest_sum,
                    interaction_sum: breakdown.interaction_sum,
                }
            })
            .collect();
        EngineSnapshotState {
            version: STATE_VERSION,
            wal_seq,
            catalog_epoch: self.catalog.epoch(),
            config: self.config.clone(),
            mirror: InstanceSnapshot::capture(&self.mirror),
            owners: self
                .owners
                .iter()
                .map(|&(k, local)| (k as u32, local.index() as u32))
                .collect(),
            rejected: self.rejected,
            deltas_since_reconcile: self.deltas_since_reconcile,
            reconcile_candidates: self.reconcile_candidates.iter().copied().collect(),
            coordinator_stats: self.coordinator_stats,
            probe_counter: self.probe_counter,
            shard_migrations: self.migrations.clone(),
            shards,
        }
    }

    /// Rebuilds an engine from a checkpoint. The caller supplies the same
    /// σ / interest / solver / partitioner the original engine ran with
    /// (they are code, not data — checkpoints carry only state). After
    /// the structural rebuild every shard's utility tracker is verified
    /// bit-for-bit against the sums the checkpoint recorded; any mismatch
    /// (schema drift, an id-dependent interest function, a doctored
    /// snapshot) fails the restore instead of silently serving a
    /// different arrangement.
    pub fn restore_state(
        state: &EngineSnapshotState,
        sigma: Box<dyn ConflictFn + Send + Sync>,
        interest: Box<dyn InterestFn + Send + Sync>,
        solver: Box<dyn WarmStart + Send + Sync>,
        partitioner: Box<dyn Partitioner + Send>,
    ) -> Result<ShardedEngine, String> {
        let mirror = state
            .mirror
            .restore()
            .map_err(|e| format!("mirror restore failed: {e}"))?;
        let num_shards = state.config.num_shards.max(1);
        if state.shards.len() != num_shards {
            return Err(format!(
                "snapshot carries {} shard records for a {num_shards}-shard config",
                state.shards.len()
            ));
        }
        if state.owners.len() != mirror.num_users() {
            return Err(format!(
                "owner table covers {} users but the mirror has {}",
                state.owners.len(),
                mirror.num_users()
            ));
        }
        let mut locals: Vec<Vec<UserId>> = vec![Vec::new(); num_shards];
        let mut owners = Vec::with_capacity(state.owners.len());
        for (u, &(k, local)) in state.owners.iter().enumerate() {
            let (k, local) = (k as usize, local as usize);
            if k >= num_shards {
                return Err(format!("user {u} owned by shard {k} of {num_shards}"));
            }
            if local != locals[k].len() {
                return Err(format!(
                    "user {u} has non-dense local id {local} on shard {k}"
                ));
            }
            owners.push((k, UserId::new(local)));
            locals[k].push(UserId::new(u));
        }
        let sigma: SharedConflict = Arc::from(sigma);
        let interest: SharedInterest = Arc::from(interest);
        let solver: SharedSolver = Arc::from(solver);
        let catalog = EventCatalog::from_instance_at_epoch(&mirror, state.catalog_epoch);
        let mut shards = Vec::with_capacity(num_shards);
        for (k, record) in state.shards.iter().enumerate() {
            if record.quotas.len() != mirror.num_events() {
                return Err(format!(
                    "shard {k} quota vector covers {} events but the mirror has {}",
                    record.quotas.len(),
                    mirror.num_events()
                ));
            }
            let sub_instance = if num_shards == 1 {
                mirror.clone()
            } else {
                build_sub_instance(&mirror, &locals[k], |v| record.quotas[v.index()])
            };
            let shard_config = EngineConfig {
                seed: state.config.shard.seed.wrapping_add(k as u64),
                ..state.config.shard.clone()
            };
            let shard = Shard::restore(
                ShardResume {
                    instance: sub_instance,
                    arrangement: record.arrangement.clone(),
                    stats: record.stats,
                    solve_counter: record.solve_counter,
                    last_staleness_check: record.last_staleness_check,
                    catalog_epoch: record.catalog_epoch,
                },
                Arc::clone(&sigma),
                Arc::clone(&interest),
                Arc::clone(&solver),
                shard_config,
            );
            let breakdown = shard.utility_breakdown();
            if breakdown.interest_sum.to_bits() != record.interest_sum.to_bits()
                || breakdown.interaction_sum.to_bits() != record.interaction_sum.to_bits()
            {
                return Err(format!(
                    "shard {k} utility diverged after restore: checkpoint recorded ({}, {}), the rebuilt tracker reads ({}, {})",
                    record.interest_sum,
                    record.interaction_sum,
                    breakdown.interest_sum,
                    breakdown.interaction_sum
                ));
            }
            shards.push(shard);
        }
        let migrations = if state.shard_migrations.is_empty() {
            // Pre-resharding checkpoints carry no migration counters.
            vec![(0, 0); num_shards]
        } else if state.shard_migrations.len() == num_shards {
            state.shard_migrations.clone()
        } else {
            return Err(format!(
                "snapshot carries {} migration counter entries for {num_shards} shards",
                state.shard_migrations.len()
            ));
        };
        let shard_utility = shards.iter().map(Shard::utility).collect();
        let shard_pairs = shards.iter().map(|s| s.arrangement().len()).collect();
        Ok(ShardedEngine {
            shards,
            num_shards,
            catalog,
            mirror,
            sigma,
            interest,
            solver,
            partitioner,
            owners,
            locals,
            config: state.config.clone(),
            shard_utility,
            shard_pairs,
            rejected: state.rejected,
            deltas_since_reconcile: state.deltas_since_reconcile,
            reconcile_candidates: state.reconcile_candidates.iter().copied().collect(),
            coordinator_stats: state.coordinator_stats,
            migrations,
            probe_counter: state.probe_counter,
        })
    }

    /// Per-shard summaries for the `ShardStats` query. Mirror-level
    /// rejections never reach a shard, so they are attributed to shard 0
    /// — exactly where the monolithic engine counts them, keeping the
    /// one-shard response bit-for-bit identical.
    pub(crate) fn shard_stats_entries(&self) -> Vec<ShardStatsEntry> {
        self.shards
            .iter()
            .enumerate()
            .map(|(k, shard)| {
                let mut stats = *shard.stats();
                if k == 0 {
                    stats.deltas_rejected += self.rejected;
                }
                ShardStatsEntry {
                    shard: k,
                    users: shard.instance().num_users(),
                    pairs: shard.arrangement().len(),
                    utility: shard.utility(),
                    stats,
                    moved_in: self.migrations[k].0,
                    moved_out: self.migrations[k].1,
                }
            })
            .collect()
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("num_shards", &self.shards.len())
            .field("num_events", &self.mirror.num_events())
            .field("num_users", &self.mirror.num_users())
            .field("num_pairs", &self.num_pairs())
            .field("coordinator_stats", &self.coordinator_stats)
            .finish()
    }
}

/// Builds shard `k`'s sub-instance: all events (with quota capacities),
/// only the mapped users, interest values copied from the global instance
/// rather than re-evaluated, and the global conflict matrix **adopted by
/// handle** — the shard shares the coordinator's O(|V|²) table instead of
/// materialising a private copy (events keep their global ids inside
/// every sub-instance, so lookups are direct).
fn build_sub_instance(
    global: &Instance,
    to_global: &[UserId],
    quota_of: impl Fn(EventId) -> usize,
) -> Instance {
    let mut builder = Instance::builder();
    builder.beta(global.beta());
    for event in global.events() {
        builder.add_event(quota_of(event.id), event.attrs.clone());
    }
    for &g in to_global {
        let user = global.user(g);
        builder.add_user(user.capacity, user.attrs.clone(), user.bids.clone());
    }
    builder.interaction_scores(to_global.iter().map(|&g| global.interaction(g)).collect());
    builder
        .build_shared(
            Arc::clone(global.conflicts_handle()),
            &CopiedInterest { global, to_global },
        )
        // lint:allow(no-panic-in-server-paths): every user/event/bid here was copied from an instance that already validated them; a build failure means the copy above is wrong, not that the request is bad
        .expect("sub-instance of a valid instance is valid")
}

/// Largest-remainder split of `capacity` into `weights.len()` parts,
/// proportional to `weights`; an even split when all weights are zero.
/// Deterministic: remainders go to the largest fractional part, ties to
/// the lowest index. The parts always sum to `capacity`.
fn proportional_split(capacity: usize, weights: &[usize]) -> Vec<usize> {
    let n = weights.len().max(1);
    let total: usize = weights.iter().sum();
    if total == 0 {
        let base = capacity / n;
        let rem = capacity % n;
        return (0..n).map(|k| base + usize::from(k < rem)).collect();
    }
    let mut parts: Vec<usize> = weights.iter().map(|&w| capacity * w / total).collect();
    let mut remainder = capacity - parts.iter().sum::<usize>();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&k| (std::cmp::Reverse(capacity * weights[k] % total), k));
    for &k in &order {
        if remainder == 0 {
            break;
        }
        parts[k] += 1;
        remainder -= 1;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_algos::GreedyArrangement;
    use igepa_core::{AttributeVector, ConstantInterest, HashPartitioner, NeverConflict};

    fn sharded_for(num_events: usize, num_users: usize, num_shards: usize) -> ShardedEngine {
        let mut b = Instance::builder();
        let events: Vec<EventId> = (0..num_events)
            .map(|_| b.add_event(2, AttributeVector::empty()))
            .collect();
        for _ in 0..num_users {
            b.add_user(2, AttributeVector::empty(), events.clone());
        }
        b.interaction_scores(vec![0.5; num_users]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        ShardedEngine::new(
            instance,
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            Box::new(HashPartitioner),
            ShardedConfig::with_shards(num_shards),
        )
    }

    #[test]
    fn proportional_split_sums_and_orders_deterministically() {
        assert_eq!(proportional_split(7, &[0, 0, 0]), vec![3, 2, 2]);
        assert_eq!(proportional_split(0, &[1, 2]), vec![0, 0]);
        let parts = proportional_split(10, &[1, 1, 3]);
        assert_eq!(parts.iter().sum::<usize>(), 10);
        assert_eq!(parts, vec![2, 2, 6]);
        // Remainders go to the largest fractional part, ties to low index.
        assert_eq!(proportional_split(5, &[1, 1]), vec![3, 2]);
    }

    #[test]
    fn quotas_partition_every_event_capacity() {
        let engine = sharded_for(5, 12, 3);
        for event in engine.instance().events() {
            let total: usize = (0..engine.num_shards())
                .map(|k| engine.shard(k).quota_of(event.id))
                .sum();
            assert_eq!(total, event.capacity, "quota invariant on {}", event.id);
        }
    }

    #[test]
    fn merged_arrangement_is_feasible_from_the_start() {
        let engine = sharded_for(4, 10, 3);
        let merged = engine.merged_arrangement();
        assert!(merged.is_feasible(engine.instance()));
        assert_eq!(merged.len(), engine.num_pairs());
    }

    #[test]
    fn deltas_route_and_keep_the_merged_arrangement_feasible() {
        let mut engine = sharded_for(3, 9, 2);
        engine
            .apply(&InstanceDelta::AddUser {
                capacity: 2,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(0), EventId::new(2)],
                interaction: 0.9,
            })
            .unwrap();
        engine
            .apply(&InstanceDelta::AddEvent {
                capacity: 5,
                attrs: AttributeVector::empty(),
            })
            .unwrap();
        engine
            .apply(&InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(EventId::new(0)),
                capacity: 1,
            })
            .unwrap();
        engine
            .apply(&InstanceDelta::RemoveUser {
                user: UserId::new(3),
            })
            .unwrap();
        let merged = engine.merged_arrangement();
        assert!(merged.is_feasible(engine.instance()));
        // Quota invariant survives every routed delta.
        for event in engine.instance().events() {
            let total: usize = (0..engine.num_shards())
                .map(|k| engine.shard(k).quota_of(event.id))
                .sum();
            assert_eq!(total, event.capacity);
        }
        // Mirror and shards agree on the population.
        assert_eq!(engine.instance().num_users(), 10);
        let shard_users: usize = (0..engine.num_shards())
            .map(|k| engine.shard(k).instance().num_users())
            .sum();
        assert_eq!(shard_users, 10);
    }

    /// The tentpole memory invariant: the O(|V|²) conflict matrix exists
    /// once — mirror, catalogue and every shard return `Arc::ptr_eq`
    /// handles — and event broadcasts keep it that way.
    #[test]
    fn conflict_matrix_is_shared_across_mirror_catalog_and_shards() {
        let assert_shared = |engine: &ShardedEngine| {
            let mirror = engine.instance().conflicts_handle();
            assert!(Arc::ptr_eq(
                mirror,
                engine.catalog().snapshot().conflicts_handle()
            ));
            for k in 0..engine.num_shards() {
                assert!(
                    Arc::ptr_eq(mirror, engine.shard(k).instance().conflicts_handle()),
                    "shard {k} holds a private conflict matrix"
                );
            }
        };
        for shards in [1, 2, 4] {
            let mut engine = sharded_for(3, 8, shards);
            assert_shared(&engine);
            // Broadcasts republish; everyone adopts the same new table.
            for i in 0..6 {
                engine
                    .apply(&InstanceDelta::AddEvent {
                        capacity: 2 + i,
                        attrs: AttributeVector::empty(),
                    })
                    .unwrap();
                assert_shared(&engine);
            }
            // User churn and capacity edits never split the sharing.
            engine
                .apply(&InstanceDelta::AddUser {
                    capacity: 1,
                    attrs: AttributeVector::empty(),
                    bids: vec![EventId::new(4)],
                    interaction: 0.5,
                })
                .unwrap();
            engine
                .apply(&InstanceDelta::UpdateCapacity {
                    target: CapacityTarget::Event(EventId::new(3)),
                    capacity: 7,
                })
                .unwrap();
            assert_shared(&engine);
            assert_eq!(engine.catalog().num_events(), 9);
            // Steady-state broadcasts stop copying: only the first publish
            // splits the construction-time buffer sharing.
            assert_eq!(engine.catalog().cow_copies(), 1);
        }
    }

    #[test]
    fn catalog_capacities_track_the_mirror() {
        let mut engine = sharded_for(2, 6, 3);
        engine
            .apply(&InstanceDelta::AddEvent {
                capacity: 5,
                attrs: AttributeVector::empty(),
            })
            .unwrap();
        engine
            .apply(&InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(EventId::new(0)),
                capacity: 9,
            })
            .unwrap();
        for event in engine.instance().events() {
            assert_eq!(
                engine.catalog().true_capacity(event.id),
                event.capacity,
                "catalogue capacity of {} diverged from the mirror",
                event.id
            );
            let quota_sum: usize = (0..engine.num_shards())
                .map(|k| engine.shard(k).quota_of(event.id))
                .sum();
            assert_eq!(quota_sum, event.capacity);
        }
        assert_eq!(engine.catalog().epoch(), 2);
        assert_eq!(
            engine.shard(0).catalog_epoch(),
            1,
            "capacity publishes need no shard sync"
        );
    }

    #[test]
    fn batched_announcements_publish_through_the_catalog() {
        let mut engine = sharded_for(2, 6, 2);
        let deltas = vec![
            InstanceDelta::AddEvent {
                capacity: 4,
                attrs: AttributeVector::empty(),
            },
            // A user delta referencing the event announced one op earlier
            // in the same burst: ordering within the burst must hold.
            InstanceDelta::AddUser {
                capacity: 1,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(2)],
                interaction: 0.5,
            },
            InstanceDelta::AddEvent {
                capacity: 3,
                attrs: AttributeVector::empty(),
            },
        ];
        engine.apply_batch(&deltas).unwrap();
        assert_eq!(engine.instance().num_events(), 4);
        assert_eq!(engine.catalog().num_events(), 4);
        assert_eq!(engine.catalog().epoch(), 2);
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
        for k in 0..engine.num_shards() {
            assert_eq!(engine.shard(k).instance().num_events(), 4);
            assert_eq!(engine.shard(k).catalog_epoch(), 2);
            assert!(Arc::ptr_eq(
                engine.instance().conflicts_handle(),
                engine.shard(k).instance().conflicts_handle()
            ));
        }
    }

    #[test]
    fn rejected_deltas_touch_no_shard() {
        let mut engine = sharded_for(2, 4, 2);
        let before = engine.stats();
        let err = engine.apply(&InstanceDelta::UpdateInteractionScore {
            user: UserId::new(99),
            score: 0.5,
        });
        assert!(err.is_err());
        let after = engine.stats();
        assert_eq!(after.deltas_rejected, before.deltas_rejected + 1);
        assert_eq!(after.deltas_applied, before.deltas_applied);
    }

    #[test]
    fn rebalance_is_a_noop_when_quota_matches_demand() {
        // Bidder-proportional initial quotas put all capacity where the
        // users are, so there is nothing for the exchange to move.
        let mut b = Instance::builder();
        let v = b.add_event(2, AttributeVector::empty());
        for _ in 0..3 {
            b.add_user(1, AttributeVector::empty(), vec![v]);
        }
        b.interaction_scores(vec![0.5; 3]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();

        #[derive(Debug)]
        struct AllToZero;
        impl Partitioner for AllToZero {
            fn shard_for(&self, _u: UserId, _b: &[EventId], _n: usize) -> usize {
                0
            }
        }
        let mut engine = ShardedEngine::new(
            instance,
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            Box::new(AllToZero),
            ShardedConfig {
                num_shards: 2,
                reconcile_interval: 0,
                ..ShardedConfig::with_shards(2)
            },
        );
        assert_eq!(engine.shard(0).quota_of(v), 2);
        let before_pairs = engine.num_pairs();
        let report = engine.rebalance();
        assert_eq!(report.quota_moved, 0);
        assert_eq!(engine.num_pairs(), before_pairs);
    }

    #[test]
    fn stranded_quota_is_reclaimed_by_reconciliation() {
        // Capacity 4 event, 4 bidders all hashed onto both shards; force a
        // bad split by routing every user to shard 1 while the quota is
        // dealt evenly (no bidders at construction time).
        let mut b = Instance::builder();
        let v = b.add_event(4, AttributeVector::empty());
        // No users yet: quotas split evenly 2/2.
        b.interaction_scores(vec![]);
        let _ = v;
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();

        #[derive(Debug)]
        struct AllToOne;
        impl Partitioner for AllToOne {
            fn shard_for(&self, _u: UserId, _b: &[EventId], n: usize) -> usize {
                n - 1
            }
        }
        let mut engine = ShardedEngine::new(
            instance,
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            Box::new(AllToOne),
            ShardedConfig {
                num_shards: 2,
                reconcile_interval: 0,
                ..ShardedConfig::with_shards(2)
            },
        );
        assert_eq!(engine.shard(0).quota_of(EventId::new(0)), 2);
        for _ in 0..4 {
            engine
                .apply(&InstanceDelta::AddUser {
                    capacity: 1,
                    attrs: AttributeVector::empty(),
                    bids: vec![EventId::new(0)],
                    interaction: 0.5,
                })
                .unwrap();
        }
        // Only 2 of 4 bidders fit into shard 1's quota before reconciling.
        assert_eq!(engine.num_pairs(), 2);
        let report = engine.rebalance();
        assert_eq!(report.quota_moved, 2);
        assert_eq!(engine.num_pairs(), 4);
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
        assert_eq!(engine.coordinator_stats().quota_moved, 2);
    }

    #[test]
    fn periodic_reconcile_fires_on_the_interval() {
        let mut b = Instance::builder();
        b.add_event(4, AttributeVector::empty());
        b.interaction_scores(vec![]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();

        #[derive(Debug)]
        struct AllToOne;
        impl Partitioner for AllToOne {
            fn shard_for(&self, _u: UserId, _b: &[EventId], n: usize) -> usize {
                n - 1
            }
        }
        let mut engine = ShardedEngine::new(
            instance,
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            Box::new(AllToOne),
            ShardedConfig {
                num_shards: 2,
                reconcile_interval: 4,
                ..ShardedConfig::with_shards(2)
            },
        );
        for _ in 0..4 {
            engine
                .apply(&InstanceDelta::AddUser {
                    capacity: 1,
                    attrs: AttributeVector::empty(),
                    bids: vec![EventId::new(0)],
                    interaction: 0.5,
                })
                .unwrap();
        }
        // The fourth delta crossed the interval: quota was reclaimed
        // automatically and all four bidders are seated.
        assert!(engine.coordinator_stats().reconcile_passes >= 1);
        assert_eq!(engine.num_pairs(), 4);
    }

    #[test]
    fn batch_routes_to_multiple_shards_with_one_repair_each() {
        let mut engine = sharded_for(2, 8, 2);
        let deltas: Vec<InstanceDelta> = (0..8)
            .map(|u| InstanceDelta::UpdateInteractionScore {
                user: UserId::new(u),
                score: 0.7,
            })
            .collect();
        let outcome = engine.apply_batch(&deltas).unwrap();
        assert_eq!(outcome.kind, "batch");
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
        let stats = engine.stats();
        assert_eq!(stats.deltas_applied, 8);
    }

    /// Deltas exercising every routing path, for checkpoint tests.
    fn churn(engine: &mut ShardedEngine) {
        let num_events = engine.instance().num_events();
        for i in 0..6 {
            engine
                .apply(&InstanceDelta::AddUser {
                    capacity: 2,
                    attrs: AttributeVector::empty(),
                    bids: vec![EventId::new(i % num_events)],
                    interaction: 0.3 + 0.1 * i as f64,
                })
                .unwrap();
        }
        engine
            .apply(&InstanceDelta::AddEvent {
                capacity: 3,
                attrs: AttributeVector::empty(),
            })
            .unwrap();
        engine
            .apply(&InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(EventId::new(1)),
                capacity: 1,
            })
            .unwrap();
        engine
            .apply(&InstanceDelta::RemoveUser {
                user: UserId::new(2),
            })
            .unwrap();
        // A rejection, so the rejected counter round-trips too.
        let _ = engine.apply(&InstanceDelta::UpdateInteractionScore {
            user: UserId::new(500),
            score: 0.5,
        });
        engine.rebalance();
    }

    /// Checkpoint → serde → restore reproduces the engine bit for bit,
    /// including its future: both copies must answer identical responses
    /// to an identical request suffix (same solver seeds, same staleness
    /// countdowns, same reconcile phase).
    #[test]
    fn snapshot_state_roundtrips_bit_for_bit() {
        for num_shards in [1, 2, 3] {
            let mut original = sharded_for(3, 9, num_shards);
            churn(&mut original);

            let state = original.snapshot_state(17);
            let json = serde_json::to_string(&state).unwrap();
            let decoded: EngineSnapshotState = serde_json::from_str(&json).unwrap();
            assert_eq!(
                decoded, state,
                "checkpoint serde drift ({num_shards} shards)"
            );

            let mut restored = ShardedEngine::restore_state(
                &decoded,
                Box::new(NeverConflict),
                Box::new(ConstantInterest(0.5)),
                Box::new(GreedyArrangement),
                Box::new(HashPartitioner),
            )
            .unwrap();

            assert_eq!(
                restored.merged_arrangement().pairs().collect::<Vec<_>>(),
                original.merged_arrangement().pairs().collect::<Vec<_>>(),
                "arrangement diverged ({num_shards} shards)"
            );
            assert_eq!(
                restored.merged_utility().total.to_bits(),
                original.merged_utility().total.to_bits(),
                "utility diverged ({num_shards} shards)"
            );
            assert_eq!(restored.stats(), original.stats());
            assert_eq!(restored.catalog().epoch(), original.catalog().epoch());

            // The decisive check: identical futures. Any unsaved seed or
            // counter would surface as a different repair below.
            churn(&mut restored);
            churn(&mut original);
            assert_eq!(
                restored.merged_arrangement().pairs().collect::<Vec<_>>(),
                original.merged_arrangement().pairs().collect::<Vec<_>>(),
                "post-restore future diverged ({num_shards} shards)"
            );
            assert_eq!(
                restored.merged_utility().total.to_bits(),
                original.merged_utility().total.to_bits()
            );
            assert_eq!(restored.stats(), original.stats());
        }
    }

    #[test]
    fn restore_state_rejects_structural_corruption() {
        let mut engine = sharded_for(2, 6, 2);
        churn(&mut engine);
        let state = engine.snapshot_state(5);
        let rebuild = |s: &EngineSnapshotState| {
            ShardedEngine::restore_state(
                s,
                Box::new(NeverConflict),
                Box::new(ConstantInterest(0.5)),
                Box::new(GreedyArrangement),
                Box::new(HashPartitioner),
            )
        };
        let mut missing_shard = state.clone();
        missing_shard.shards.pop();
        assert!(rebuild(&missing_shard).is_err());
        let mut bad_owner = state.clone();
        bad_owner.owners[0].0 = 9;
        assert!(rebuild(&bad_owner).is_err());
        let mut bad_sums = state.clone();
        bad_sums.shards[0].interest_sum += 1.0;
        assert!(rebuild(&bad_sums)
            .err()
            .unwrap()
            .contains("utility diverged"));
        assert!(rebuild(&state).is_ok(), "pristine state must still load");
    }

    #[test]
    fn reshard_grow_preserves_pairs_utility_and_quotas() {
        let mut engine = sharded_for(4, 12, 4);
        churn(&mut engine);
        let before_pairs: Vec<_> = engine.merged_arrangement().pairs().collect();
        let before_utility = engine.merged_utility().total;
        let before_stats = engine.stats();

        let record = engine.reshard(6).unwrap();
        assert_eq!(record.from_shards, 4);
        assert_eq!(record.to_shards, 6);
        assert!(record.moved_users > 0, "hash mod 6 re-places some users");
        assert_eq!(record.catalog_epoch, engine.catalog().epoch());
        assert_eq!(engine.num_shards(), 6);

        // A pure re-partitioning: pair-for-pair and bit-for-bit.
        assert_eq!(
            engine.merged_arrangement().pairs().collect::<Vec<_>>(),
            before_pairs
        );
        assert_eq!(
            engine.merged_utility().total.to_bits(),
            before_utility.to_bits()
        );
        assert_eq!(engine.stats(), before_stats, "counters transfer exactly");
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
        for event in engine.instance().events() {
            let total: usize = (0..engine.num_shards())
                .map(|k| engine.shard(k).quota_of(event.id))
                .sum();
            assert_eq!(total, event.capacity, "quota invariant on {}", event.id);
        }
        // Migration counters balance: every departure has an arrival.
        let entries = engine.shard_stats_entries();
        let moved_in: u64 = entries.iter().map(|e| e.moved_in).sum();
        let moved_out: u64 = entries.iter().map(|e| e.moved_out).sum();
        assert_eq!(moved_in, record.moved_users);
        assert_eq!(moved_out, record.moved_users);

        // The resharded engine keeps serving correctly.
        churn(&mut engine);
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn reshard_shrink_to_one_matches_the_merged_arrangement() {
        let mut engine = sharded_for(3, 10, 3);
        churn(&mut engine);
        let before_pairs: Vec<_> = engine.merged_arrangement().pairs().collect();
        let before_utility = engine.merged_utility().total;
        let before_stats = engine.stats();

        let record = engine.reshard(1).unwrap();
        assert_eq!((record.from_shards, record.to_shards), (3, 1));
        assert_eq!(engine.num_shards(), 1);
        // One shard serves the old merged arrangement verbatim.
        assert_eq!(
            engine.shard(0).arrangement().pairs().collect::<Vec<_>>(),
            before_pairs
        );
        assert_eq!(
            engine.merged_utility().total.to_bits(),
            before_utility.to_bits()
        );
        // Retired slots folded into slot 0, so the aggregate is intact.
        assert_eq!(engine.stats(), before_stats);
        churn(&mut engine);
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
    }

    /// The property WAL replay rests on: two engines with identical
    /// histories reshard identically, down to their futures.
    #[test]
    fn reshard_is_deterministic_including_the_future() {
        let mut a = sharded_for(3, 9, 2);
        let mut b = sharded_for(3, 9, 2);
        churn(&mut a);
        churn(&mut b);
        a.reshard(5).unwrap();
        b.reshard(5).unwrap();
        churn(&mut a);
        churn(&mut b);
        assert_eq!(
            a.merged_arrangement().pairs().collect::<Vec<_>>(),
            b.merged_arrangement().pairs().collect::<Vec<_>>()
        );
        assert_eq!(
            a.merged_utility().total.to_bits(),
            b.merged_utility().total.to_bits()
        );
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn reshard_state_roundtrips_through_a_checkpoint() {
        let mut original = sharded_for(3, 9, 4);
        churn(&mut original);
        original.reshard(6).unwrap();
        churn(&mut original);

        let state = original.snapshot_state(23);
        let json = serde_json::to_string(&state).unwrap();
        let decoded: EngineSnapshotState = serde_json::from_str(&json).unwrap();
        assert_eq!(decoded, state);
        let mut restored = ShardedEngine::restore_state(
            &decoded,
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            Box::new(HashPartitioner),
        )
        .unwrap();

        // Migration counters survive the round trip.
        let restored_entries = restored.shard_stats_entries();
        let original_entries = original.shard_stats_entries();
        assert_eq!(restored_entries, original_entries);
        assert!(restored_entries.iter().any(|e| e.moved_in > 0));

        churn(&mut restored);
        churn(&mut original);
        assert_eq!(
            restored.merged_arrangement().pairs().collect::<Vec<_>>(),
            original.merged_arrangement().pairs().collect::<Vec<_>>()
        );
        assert_eq!(
            restored.merged_utility().total.to_bits(),
            original.merged_utility().total.to_bits()
        );
        assert_eq!(restored.stats(), original.stats());
    }

    #[test]
    fn reshard_to_zero_is_refused_and_harmless() {
        let mut engine = sharded_for(2, 6, 2);
        churn(&mut engine);
        let before: Vec<_> = engine.merged_arrangement().pairs().collect();
        assert!(engine.reshard(0).is_err());
        assert_eq!(engine.num_shards(), 2);
        assert_eq!(
            engine.merged_arrangement().pairs().collect::<Vec<_>>(),
            before
        );
    }

    /// Every user on shard 0: the degenerate skew the reconcile loop's
    /// proposal machinery exists to detect and undo.
    struct AllToZero;
    impl Partitioner for AllToZero {
        fn shard_for(&self, _user: UserId, _bids: &[EventId], _num_shards: usize) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "all-to-zero"
        }
    }

    #[test]
    fn migration_proposal_feeds_an_override_reshard_that_rebalances() {
        let mut b = Instance::builder();
        let events: Vec<EventId> = (0..6)
            .map(|_| b.add_event(2, AttributeVector::empty()))
            .collect();
        for _ in 0..8 {
            b.add_user(2, AttributeVector::empty(), events.clone());
        }
        b.interaction_scores(vec![0.5; 8]);
        let instance = b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap();
        let mut engine = ShardedEngine::new(
            instance,
            Box::new(NeverConflict),
            Box::new(ConstantInterest(0.5)),
            Box::new(GreedyArrangement),
            Box::new(AllToZero),
            ShardedConfig::with_shards(2),
        );
        assert!(engine.shard(0).arrangement().len() >= 8);
        assert_eq!(engine.shard(1).arrangement().len(), 0);

        let plan = engine
            .migration_proposal()
            .expect("total skew must trigger a proposal");
        assert!(plan.iter().all(|&(_, target)| target == 1));
        // The reconcile loop surfaces the same signal as a counter.
        engine.rebalance();
        assert!(
            engine
                .snapshot_state(0)
                .coordinator_stats
                .migration_proposals
                >= 1
        );

        let before_pairs: Vec<_> = engine.merged_arrangement().pairs().collect();
        let before_utility = engine.merged_utility().total;
        let mut overrides = igepa_core::OverridePartitioner::new(Box::new(AllToZero));
        for &(user, target) in &plan {
            overrides.pin(user, target);
        }
        engine.set_partitioner(Box::new(overrides));
        let record = engine.reshard(2).unwrap();
        assert_eq!(record.moved_users, plan.len() as u64);

        // Targeted moves landed, the served state did not change.
        assert!(!engine.shard(1).arrangement().is_empty());
        assert!(
            engine.shard(0).arrangement().len() < before_pairs.len(),
            "the donor actually shed load"
        );
        assert_eq!(
            engine.merged_arrangement().pairs().collect::<Vec<_>>(),
            before_pairs
        );
        assert_eq!(
            engine.merged_utility().total.to_bits(),
            before_utility.to_bits()
        );
        assert!(engine.merged_arrangement().is_feasible(engine.instance()));
    }

    #[test]
    fn batch_error_keeps_prefix_applied() {
        let mut engine = sharded_for(2, 2, 2);
        let deltas = vec![
            InstanceDelta::UpdateInteractionScore {
                user: UserId::new(0),
                score: 0.9,
            },
            InstanceDelta::UpdateInteractionScore {
                user: UserId::new(77),
                score: 0.9,
            },
            InstanceDelta::UpdateInteractionScore {
                user: UserId::new(1),
                score: 0.9,
            },
        ];
        let err = engine.apply_batch(&deltas);
        assert!(err.is_err());
        assert_eq!(engine.instance().interaction(UserId::new(0)), 0.9);
        // The delta after the invalid one was not applied.
        assert_eq!(engine.instance().interaction(UserId::new(1)), 0.5);
        assert_eq!(engine.stats().deltas_applied, 1);
        assert_eq!(engine.stats().deltas_rejected, 1);
    }
}
