//! The serde-backed JSON-lines request/response protocol.
//!
//! One request per line, one response per request. Keeping the protocol as
//! plain data makes traces *reproducible artifacts*: a recorded JSONL file
//! plus the initial instance snapshot fully determines every intermediate
//! arrangement the engine served (the engine is deterministic).
//!
//! The protocol is **shard-aware** but degrades gracefully: every request
//! is answered by both the monolithic [`Engine`] (which behaves as one
//! logical shard — `ShardStats` returns a single entry, `Rebalance` is a
//! no-op) and the [`ShardedEngine`]. A request log recorded against one
//! backend replays against the other, and a `ShardedEngine` with one shard
//! reproduces the monolithic responses bit for bit.
//!
//! ## Envelopes
//!
//! On a wire, bare requests are not enough: responses need correlation
//! ids, failures need a typed representation, and the protocol needs room
//! to evolve. [`RequestEnvelope`] / [`ResponseEnvelope`] add exactly that
//! — `{id, version, body}` in, `{id, result}` out, where `result` is a
//! standard `Ok`/`Err` pairing of [`EngineResponse`] with
//! [`EngineError`](crate::EngineError). Decoding stays **backwards
//! compatible**: [`decode_request_envelope`] accepts both enveloped lines
//! and bare pre-envelope requests (wrapped under [`LEGACY_VERSION`], which
//! the service layer answers with the original silent-and-stringly
//! semantics), and the envelope decoder tolerates the field aliases `seq`
//! (for `id`), `v` (for `version`) and `request` / `req` (for `body`).

use crate::coordinator::{ShardStatsEntry, ShardedEngine};
use crate::engine::{Engine, EngineStats, RepairKind};
use crate::error::EngineError;
use crate::reconcile::ReconcileReport;
use igepa_core::{EventId, InstanceDelta, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Version tag of the current (strict, typed-error) protocol dialect.
pub const PROTOCOL_VERSION: u32 = 1;

/// Version assigned to bare pre-envelope requests by the legacy decode
/// path. The service layer answers this dialect with the original
/// pre-envelope semantics so recorded logs replay bit for bit.
pub const LEGACY_VERSION: u32 = 0;

/// A request to the serving engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineRequest {
    /// Apply one instance delta and repair.
    Apply {
        /// The mutation to apply.
        delta: InstanceDelta,
    },
    /// Apply a burst of deltas with a single repair pass.
    ApplyBatch {
        /// The mutations to apply, in order.
        deltas: Vec<InstanceDelta>,
    },
    /// Run a cross-shard reconciliation pass now (no-op on a monolithic
    /// engine, which has no boundary to reconcile).
    Rebalance,
    /// Write a durability checkpoint now: serialize the engine state,
    /// compact the WAL segments it covers. Answered with
    /// [`EngineResponse::CheckpointDone`] by a durable server and
    /// rejected when durability is not enabled.
    Checkpoint,
    /// Re-shard the serving engine to `num_shards` live: recompute user
    /// placement, move every migrating user's sub-state (interest
    /// columns, arrangement slice, exact-sum tracker contributions) and
    /// per-event quota share to its new owner, and rewrite the owner
    /// table — all without dropping a request. Answered with
    /// [`EngineResponse::Resharded`]. A monolithic engine has one
    /// logical shard and rejects any other target. On a durable server
    /// the request is WAL-logged (catalogue-epoch-tagged, so it orders
    /// against event broadcasts) before execution; replaying the log
    /// re-performs the identical migration, so recovery across a
    /// reshard stays bit-exact.
    Reshard {
        /// The new shard count (≥ 1).
        num_shards: usize,
    },
    /// Read-only query against the served state.
    Query {
        /// The query to answer.
        query: EngineQuery,
    },
}

/// Summary of one completed live migration (the payload of
/// [`EngineResponse::Resharded`], and the shape recovery sees when it
/// replays a WAL-logged [`EngineRequest::Reshard`]).
///
/// The record is *catalogue-epoch-tagged*: `catalog_epoch` names the
/// event-catalogue version the migration executed under, which totally
/// orders it against `AddEvent` broadcasts in the WAL — a replayed log
/// re-runs the reshard against the identical catalogue and therefore
/// reproduces the identical placement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// Shard count before the migration.
    pub from_shards: usize,
    /// Shard count after the migration.
    pub to_shards: usize,
    /// Users whose owning shard changed.
    pub moved_users: u64,
    /// Per-event quota units re-assigned between shards.
    pub quota_moved: u64,
    /// Event-catalogue epoch the migration executed under.
    pub catalog_epoch: u64,
}

/// Read-only queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineQuery {
    /// Total utility of the served arrangement.
    Utility,
    /// Events currently assigned to a user.
    AssignmentsOf {
        /// The user to look up.
        user: UserId,
    },
    /// Load and capacity of an event.
    EventLoad {
        /// The event to look up.
        event: EventId,
    },
    /// Engine activity counters.
    Stats,
    /// Per-shard activity summaries (one entry on a monolithic engine).
    ShardStats,
    /// The full served arrangement, merged across shards.
    MergedSnapshot,
    /// Write-ahead log and checkpoint counters of a durable server
    /// (answered with `enabled: false` when durability is off).
    DurabilityStats,
    /// Overload counters of the serving endpoint: queue depth, shed
    /// and deadline-expired counts. A TCP server answers this from the
    /// connection thread without barriering the dispatcher; in-process
    /// engines have no dispatch queue and answer all-zero counters.
    OverloadStats,
}

/// Overload counters of a serving endpoint (the payload of
/// [`EngineResponse::OverloadStats`]).
///
/// All counters are cumulative since the server started. The TCP
/// transport maintains them on the connection threads' shared overload
/// state, so answering this query never barriers the dispatcher.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadStats {
    /// Admission policy in force (`"unbounded"`, `"bounded(64)"`, …).
    pub policy: String,
    /// Requests currently admitted but not yet dispatched.
    pub queue_depth: u64,
    /// High-water mark of the dispatch queue depth.
    pub high_water: u64,
    /// Mutations refused with
    /// [`EngineError::Overloaded`](crate::EngineError::Overloaded).
    pub shed: u64,
    /// Requests dropped with
    /// [`EngineError::DeadlineExceeded`](crate::EngineError::DeadlineExceeded)
    /// because their budget expired before dispatch.
    pub deadline_expired: u64,
    /// Whether the server is in read-only degraded mode (mutations
    /// shed, cached reads keep answering).
    pub read_only: bool,
}

/// A response from the serving engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineResponse {
    /// A delta (or batch) was applied.
    Applied {
        /// Delta kind (or `"batch"`).
        kind: String,
        /// How the arrangement was repaired.
        repair: RepairKind,
        /// Utility after repair.
        utility: f64,
        /// Pairs served after repair.
        num_pairs: usize,
    },
    /// A delta was rejected by validation; the engine state is unchanged
    /// (for batches: the prefix before the invalid delta stays applied).
    Rejected {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// Answer to [`EngineQuery::Utility`].
    Utility {
        /// `β · Σ SI + (1 − β) · Σ D`.
        total: f64,
        /// Unweighted interest sum.
        interest_sum: f64,
        /// Unweighted interaction sum.
        interaction_sum: f64,
    },
    /// Answer to [`EngineQuery::AssignmentsOf`].
    Assignments {
        /// The queried user.
        user: UserId,
        /// Events assigned to the user, in id order.
        events: Vec<EventId>,
    },
    /// Answer to [`EngineQuery::EventLoad`].
    EventLoad {
        /// The queried event.
        event: EventId,
        /// Current number of attendees.
        load: usize,
        /// Capacity `c_v`.
        capacity: usize,
    },
    /// Answer to [`EngineQuery::Stats`].
    Stats {
        /// Engine activity counters (aggregated across shards).
        stats: EngineStats,
    },
    /// Answer to [`EngineQuery::ShardStats`].
    ShardStats {
        /// One entry per shard.
        shards: Vec<ShardStatsEntry>,
    },
    /// Answer to [`EngineQuery::MergedSnapshot`].
    Snapshot {
        /// Events the snapshot was sized for.
        num_events: usize,
        /// Users the snapshot was sized for.
        num_users: usize,
        /// Utility of the snapshot.
        utility: f64,
        /// The served `(event, user)` pairs, grouped by user.
        pairs: Vec<(EventId, UserId)>,
    },
    /// A [`EngineRequest::Rebalance`] ran.
    Rebalanced {
        /// What the reconciliation pass did.
        report: ReconcileReport,
        /// Utility after the pass.
        utility: f64,
    },
    /// A [`EngineRequest::Reshard`] completed: the engine now serves
    /// from the new shard layout, with every in-flight request for a
    /// moved user parked and replayed on its new owner.
    Resharded {
        /// What the migration did.
        record: MigrationRecord,
        /// Utility after the migration (bit-identical to the utility
        /// before it — migration re-partitions state, never re-solves).
        utility: f64,
    },
    /// A [`EngineRequest::Checkpoint`] was written.
    CheckpointDone {
        /// WAL sequence the checkpoint covers.
        wal_seq: u64,
        /// Size of the snapshot file in bytes.
        bytes: u64,
    },
    /// Answer to [`EngineQuery::DurabilityStats`].
    DurabilityStats {
        /// Whether the server runs with durability enabled.
        enabled: bool,
        /// Human-readable fsync policy (`"off"`, `"always"`, …).
        policy: String,
        /// Records appended to the WAL.
        wal_records: u64,
        /// Bytes appended to the WAL (frames, including headers).
        wal_bytes: u64,
        /// Fsyncs issued by the policy.
        fsyncs: u64,
        /// WAL segment files created.
        segments: u64,
        /// Checkpoints written.
        checkpoints: u64,
        /// WAL sequence covered by the last checkpoint (0: none yet).
        last_checkpoint_seq: u64,
    },
    /// Answer to [`EngineQuery::OverloadStats`].
    OverloadStats {
        /// Overload counters of the answering endpoint.
        stats: OverloadStats,
    },
}

/// Error raised when decoding protocol lines.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// 1-based line number of the offending input, when known.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "protocol error on line {line}: {}", self.message),
            None => write!(f, "protocol error: {}", self.message),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Encodes a request as one JSON line (no trailing newline).
pub fn encode_request(request: &EngineRequest) -> String {
    serde_json::to_string(request).expect("requests always serialize")
}

/// Decodes a request from one JSON line.
pub fn decode_request(line: &str) -> Result<EngineRequest, ProtocolError> {
    serde_json::from_str(line).map_err(|e| ProtocolError {
        line: None,
        message: e.to_string(),
    })
}

/// Encodes a response as one JSON line (no trailing newline).
pub fn encode_response(response: &EngineResponse) -> String {
    serde_json::to_string(response).expect("responses always serialize")
}

/// Decodes a response from one JSON line.
pub fn decode_response(line: &str) -> Result<EngineResponse, ProtocolError> {
    serde_json::from_str(line).map_err(|e| ProtocolError {
        line: None,
        message: e.to_string(),
    })
}

/// Serializes a request log to JSONL text (one request per line).
pub fn requests_to_jsonl(requests: &[EngineRequest]) -> String {
    let mut out = String::new();
    for request in requests {
        out.push_str(&encode_request(request));
        out.push('\n');
    }
    out
}

/// Parses a JSONL request log. Blank lines and `#`-prefixed comment lines
/// are skipped.
pub fn requests_from_jsonl(text: &str) -> Result<Vec<EngineRequest>, ProtocolError> {
    let mut requests = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let request = decode_request(trimmed).map_err(|mut e| {
            e.line = Some(idx + 1);
            e
        })?;
        requests.push(request);
    }
    Ok(requests)
}

// ------------------------------------------------------------ envelopes

/// A versioned, correlated request: what actually travels on a wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// Client-chosen correlation id, echoed in the response envelope.
    pub id: u64,
    /// Protocol dialect of `body` (see [`PROTOCOL_VERSION`]).
    pub version: u32,
    /// The request itself.
    pub body: EngineRequest,
    /// Optional per-request budget in milliseconds from arrival at the
    /// server. A request whose budget has already expired when the
    /// dispatcher dequeues it is dropped with
    /// [`EngineError::DeadlineExceeded`](crate::EngineError::DeadlineExceeded)
    /// instead of doing dead work. `None` (the legacy wire shape) means
    /// no deadline.
    pub deadline_ms: Option<u64>,
}

impl RequestEnvelope {
    /// An envelope without a deadline — the shape every pre-deadline
    /// client sent.
    pub fn new(id: u64, version: u32, body: EngineRequest) -> Self {
        RequestEnvelope {
            id,
            version,
            body,
            deadline_ms: None,
        }
    }
}

/// Hand-written so an envelope without a deadline serializes exactly as
/// it did before the field existed: `deadline_ms` is emitted only when
/// set, keeping recorded legacy envelope logs byte-identical.
impl serde::Serialize for RequestEnvelope {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("id".to_string(), serde::Serialize::to_value(&self.id)),
            (
                "version".to_string(),
                serde::Serialize::to_value(&self.version),
            ),
            ("body".to_string(), serde::Serialize::to_value(&self.body)),
        ];
        if let Some(deadline) = self.deadline_ms {
            entries.push((
                "deadline_ms".to_string(),
                serde::Serialize::to_value(&deadline),
            ));
        }
        serde::Value::Object(entries)
    }
}

/// Hand-written so the decoder accepts field aliases (`seq` for `id`, `v`
/// for `version`, `request` / `req` for `body`), defaults a missing
/// `version` to [`PROTOCOL_VERSION`] and a missing `deadline_ms` to
/// `None` (legacy payloads keep parsing) — the vendored serde derive has
/// no `#[serde(alias)]` / `#[serde(default)]`.
impl serde::Deserialize for RequestEnvelope {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = serde::expect_object(value, "RequestEnvelope")?;
        let field = |names: &[&str]| {
            entries
                .iter()
                .find(|(k, _)| names.contains(&k.as_str()))
                .map(|(_, v)| v)
        };
        let id = match field(&["id", "seq"]) {
            Some(v) => serde::Deserialize::from_value(v)?,
            None => return Err(serde::DeError::msg("missing field `id` of RequestEnvelope")),
        };
        let version = match field(&["version", "v"]) {
            Some(v) => serde::Deserialize::from_value(v)?,
            None => PROTOCOL_VERSION,
        };
        let body = match field(&["body", "request", "req"]) {
            Some(v) => serde::Deserialize::from_value(v)?,
            None => {
                return Err(serde::DeError::msg(
                    "missing field `body` of RequestEnvelope",
                ))
            }
        };
        let deadline_ms = match field(&["deadline_ms", "deadline"]) {
            Some(v) => serde::Deserialize::from_value(v)?,
            None => None,
        };
        Ok(RequestEnvelope {
            id,
            version,
            body,
            deadline_ms,
        })
    }
}

/// The enveloped reply: the request's `id` plus a typed outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Correlation id copied from the request envelope.
    pub id: u64,
    /// The response, or the typed failure.
    pub result: Result<EngineResponse, EngineError>,
}

/// Encodes a request envelope as one JSON line (no trailing newline).
pub fn encode_request_envelope(envelope: &RequestEnvelope) -> String {
    serde_json::to_string(envelope).expect("envelopes always serialize")
}

/// Decodes a request envelope from one wire line, accepting both
/// enveloped and bare pre-envelope requests.
///
/// A line whose top-level object carries a `body` / `request` / `req`
/// field decodes as an envelope; anything else takes the legacy path and
/// decodes as a bare [`EngineRequest`], wrapped under [`LEGACY_VERSION`]
/// with `fallback_id` as the correlation id.
pub fn decode_request_envelope(
    line: &str,
    fallback_id: u64,
) -> Result<RequestEnvelope, ProtocolError> {
    let value: serde::Value = serde_json::from_str(line).map_err(|e| ProtocolError {
        line: None,
        message: e.to_string(),
    })?;
    let enveloped = matches!(
        &value,
        serde::Value::Object(entries)
            if entries
                .iter()
                .any(|(k, _)| matches!(k.as_str(), "body" | "request" | "req"))
    );
    if enveloped {
        serde::Deserialize::from_value(&value).map_err(|e: serde::DeError| ProtocolError {
            line: None,
            message: e.to_string(),
        })
    } else {
        let body: EngineRequest =
            serde::Deserialize::from_value(&value).map_err(|e: serde::DeError| ProtocolError {
                line: None,
                message: e.to_string(),
            })?;
        Ok(RequestEnvelope::new(fallback_id, LEGACY_VERSION, body))
    }
}

/// Encodes a response envelope as one JSON line (no trailing newline).
pub fn encode_response_envelope(envelope: &ResponseEnvelope) -> String {
    serde_json::to_string(envelope).expect("envelopes always serialize")
}

/// Decodes a response envelope from one JSON line.
pub fn decode_response_envelope(line: &str) -> Result<ResponseEnvelope, ProtocolError> {
    serde_json::from_str(line).map_err(|e| ProtocolError {
        line: None,
        message: e.to_string(),
    })
}

// ------------------------------------------------- thin handle wrappers

impl Engine {
    /// Handles one protocol request, mutating the engine for `Apply` /
    /// `ApplyBatch` and answering queries read-only. Protocol semantics
    /// live in [`crate::service`]; this wrapper exists for callers that
    /// do not need a full [`EngineService`](crate::EngineService).
    pub fn handle(&mut self, request: &EngineRequest) -> EngineResponse {
        crate::service::handle_request(self, request)
    }
}

impl ShardedEngine {
    /// Handles one protocol request against the sharded engine. With one
    /// shard every response matches the monolithic [`Engine`] bit for
    /// bit. Protocol semantics live in [`crate::service`].
    pub fn handle(&mut self, request: &EngineRequest) -> EngineResponse {
        crate::service::handle_request(self, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::AttributeVector;

    #[test]
    fn requests_roundtrip_through_jsonl() {
        let requests = vec![
            EngineRequest::Apply {
                delta: InstanceDelta::AddEvent {
                    capacity: 5,
                    attrs: AttributeVector::from_time(10, 60),
                },
            },
            EngineRequest::ApplyBatch {
                deltas: vec![
                    InstanceDelta::RemoveUser {
                        user: UserId::new(1),
                    },
                    InstanceDelta::UpdateInteractionScore {
                        user: UserId::new(0),
                        score: 0.75,
                    },
                ],
            },
            EngineRequest::Rebalance,
            EngineRequest::Query {
                query: EngineQuery::Utility,
            },
            EngineRequest::Query {
                query: EngineQuery::AssignmentsOf {
                    user: UserId::new(2),
                },
            },
            EngineRequest::Query {
                query: EngineQuery::EventLoad {
                    event: EventId::new(0),
                },
            },
            EngineRequest::Query {
                query: EngineQuery::Stats,
            },
            EngineRequest::Query {
                query: EngineQuery::ShardStats,
            },
            EngineRequest::Query {
                query: EngineQuery::MergedSnapshot,
            },
            EngineRequest::Checkpoint,
            EngineRequest::Reshard { num_shards: 6 },
            EngineRequest::Query {
                query: EngineQuery::DurabilityStats,
            },
            EngineRequest::Query {
                query: EngineQuery::OverloadStats,
            },
        ];
        let jsonl = requests_to_jsonl(&requests);
        assert_eq!(jsonl.lines().count(), requests.len());
        let back = requests_from_jsonl(&jsonl).unwrap();
        assert_eq!(back, requests);
    }

    #[test]
    fn jsonl_skips_blanks_and_comments() {
        let text = "\n# a comment\n{\"Query\":{\"query\":\"Utility\"}}\n\n";
        let requests = requests_from_jsonl(text).unwrap();
        assert_eq!(requests.len(), 1);
    }

    #[test]
    fn pre_sharding_logs_still_decode() {
        // A request log recorded before the protocol grew shard-aware
        // variants must keep parsing unchanged.
        let legacy = "{\"Apply\":{\"delta\":{\"AddEvent\":{\"capacity\":2,\"attrs\":{\"time\":null,\"location\":null,\"categories\":[]}}}}}\n{\"Query\":{\"query\":\"Stats\"}}\n";
        let requests = requests_from_jsonl(legacy).unwrap();
        assert_eq!(requests.len(), 2);
        assert!(matches!(requests[0], EngineRequest::Apply { .. }));
    }

    #[test]
    fn decode_errors_carry_line_numbers() {
        let err =
            requests_from_jsonl("{\"Query\":{\"query\":\"Utility\"}}\nnot json\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn envelopes_roundtrip() {
        let envelope = RequestEnvelope::new(
            17,
            PROTOCOL_VERSION,
            EngineRequest::Query {
                query: EngineQuery::Utility,
            },
        );
        let line = encode_request_envelope(&envelope);
        assert_eq!(decode_request_envelope(&line, 0).unwrap(), envelope);
        // No deadline → the pre-deadline wire bytes, exactly.
        assert_eq!(
            line,
            "{\"id\":17,\"version\":1,\"body\":{\"Query\":{\"query\":\"Utility\"}}}"
        );

        let with_deadline = RequestEnvelope {
            deadline_ms: Some(250),
            ..envelope
        };
        let line = encode_request_envelope(&with_deadline);
        assert!(line.contains("\"deadline_ms\":250"));
        assert_eq!(decode_request_envelope(&line, 0).unwrap(), with_deadline);

        let response = ResponseEnvelope {
            id: 17,
            result: Ok(EngineResponse::Rejected {
                reason: "nope".to_string(),
            }),
        };
        let line = encode_response_envelope(&response);
        assert_eq!(decode_response_envelope(&line).unwrap(), response);

        let failure = ResponseEnvelope {
            id: 18,
            result: Err(crate::error::EngineError::Unsupported { version: 9 }),
        };
        let line = encode_response_envelope(&failure);
        assert_eq!(decode_response_envelope(&line).unwrap(), failure);
    }

    #[test]
    fn envelope_decoder_accepts_field_aliases() {
        let aliased = "{\"seq\":4,\"v\":1,\"request\":{\"Query\":{\"query\":\"Utility\"}}}";
        let envelope = decode_request_envelope(aliased, 0).unwrap();
        assert_eq!(envelope.id, 4);
        assert_eq!(envelope.version, PROTOCOL_VERSION);
        assert!(matches!(envelope.body, EngineRequest::Query { .. }));
        // A missing version defaults to the current dialect.
        let no_version = "{\"id\":5,\"body\":\"Rebalance\"}";
        let envelope = decode_request_envelope(no_version, 0).unwrap();
        assert_eq!(envelope.version, PROTOCOL_VERSION);
        assert_eq!(envelope.body, EngineRequest::Rebalance);
        // Legacy payloads carry no deadline; the decode arm defaults it.
        assert_eq!(envelope.deadline_ms, None);
        // The `deadline` alias and an explicit null both decode.
        let aliased = "{\"id\":6,\"body\":\"Rebalance\",\"deadline\":75}";
        assert_eq!(
            decode_request_envelope(aliased, 0).unwrap().deadline_ms,
            Some(75)
        );
        let null = "{\"id\":7,\"body\":\"Rebalance\",\"deadline_ms\":null}";
        assert_eq!(decode_request_envelope(null, 0).unwrap().deadline_ms, None);
    }

    #[test]
    fn bare_requests_decode_under_the_legacy_version() {
        let bare = "{\"Query\":{\"query\":\"Stats\"}}";
        let envelope = decode_request_envelope(bare, 41).unwrap();
        assert_eq!(envelope.id, 41);
        assert_eq!(envelope.version, LEGACY_VERSION);
        assert_eq!(
            envelope.body,
            EngineRequest::Query {
                query: EngineQuery::Stats,
            }
        );
        // Unit variants serialize as bare strings; those too.
        let envelope = decode_request_envelope("\"Rebalance\"", 2).unwrap();
        assert_eq!(envelope.version, LEGACY_VERSION);
        assert_eq!(envelope.body, EngineRequest::Rebalance);
    }

    #[test]
    fn undecodable_envelope_lines_error() {
        assert!(decode_request_envelope("not json", 0).is_err());
        assert!(decode_request_envelope("{\"id\":1,\"body\":{\"Nope\":3}}", 0).is_err());
    }

    #[test]
    fn responses_roundtrip() {
        let responses = vec![
            EngineResponse::Applied {
                kind: "add_user".to_string(),
                repair: RepairKind::GreedyPatch {
                    pruned: 1,
                    added: 2,
                },
                utility: 3.25,
                num_pairs: 7,
            },
            EngineResponse::Rejected {
                reason: "nope".to_string(),
            },
            EngineResponse::Stats {
                stats: EngineStats::default(),
            },
            EngineResponse::ShardStats {
                shards: vec![ShardStatsEntry {
                    shard: 1,
                    users: 4,
                    pairs: 3,
                    utility: 1.5,
                    stats: EngineStats::default(),
                    moved_in: 2,
                    moved_out: 1,
                }],
            },
            EngineResponse::Snapshot {
                num_events: 2,
                num_users: 3,
                utility: 0.75,
                pairs: vec![(EventId::new(0), UserId::new(2))],
            },
            EngineResponse::Rebalanced {
                report: ReconcileReport {
                    rounds_run: 1,
                    boundary_events: 2,
                    contended_events: 1,
                    quota_moved: 3,
                    shard_repairs: 1,
                },
                utility: 9.5,
            },
            EngineResponse::Resharded {
                record: MigrationRecord {
                    from_shards: 4,
                    to_shards: 6,
                    moved_users: 11,
                    quota_moved: 5,
                    catalog_epoch: 3,
                },
                utility: 2.5,
            },
            EngineResponse::CheckpointDone {
                wal_seq: 42,
                bytes: 8192,
            },
            EngineResponse::DurabilityStats {
                enabled: true,
                policy: "every(32)".to_string(),
                wal_records: 100,
                wal_bytes: 20480,
                fsyncs: 4,
                segments: 2,
                checkpoints: 1,
                last_checkpoint_seq: 64,
            },
            EngineResponse::OverloadStats {
                stats: OverloadStats {
                    policy: "bounded(8)".to_string(),
                    queue_depth: 3,
                    high_water: 8,
                    shed: 17,
                    deadline_expired: 2,
                    read_only: false,
                },
            },
        ];
        for response in responses {
            let line = encode_response(&response);
            assert_eq!(decode_response(&line).unwrap(), response);
        }
    }
}
