//! The serde-backed JSON-lines request/response protocol.
//!
//! One request per line, one response per request. Keeping the protocol as
//! plain data makes traces *reproducible artifacts*: a recorded JSONL file
//! plus the initial instance snapshot fully determines every intermediate
//! arrangement the engine served (the engine is deterministic).
//!
//! The protocol is **shard-aware** but degrades gracefully: every request
//! is answered by both the monolithic [`Engine`] (which behaves as one
//! logical shard — `ShardStats` returns a single entry, `Rebalance` is a
//! no-op) and the [`ShardedEngine`]. A request log recorded against one
//! backend replays against the other, and a `ShardedEngine` with one shard
//! reproduces the monolithic responses bit for bit.

use crate::coordinator::{ShardStatsEntry, ShardedEngine};
use crate::engine::{Engine, EngineStats, RepairKind};
use crate::reconcile::ReconcileReport;
use igepa_core::{EventId, InstanceDelta, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A request to the serving engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineRequest {
    /// Apply one instance delta and repair.
    Apply {
        /// The mutation to apply.
        delta: InstanceDelta,
    },
    /// Apply a burst of deltas with a single repair pass.
    ApplyBatch {
        /// The mutations to apply, in order.
        deltas: Vec<InstanceDelta>,
    },
    /// Run a cross-shard reconciliation pass now (no-op on a monolithic
    /// engine, which has no boundary to reconcile).
    Rebalance,
    /// Read-only query against the served state.
    Query {
        /// The query to answer.
        query: EngineQuery,
    },
}

/// Read-only queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineQuery {
    /// Total utility of the served arrangement.
    Utility,
    /// Events currently assigned to a user.
    AssignmentsOf {
        /// The user to look up.
        user: UserId,
    },
    /// Load and capacity of an event.
    EventLoad {
        /// The event to look up.
        event: EventId,
    },
    /// Engine activity counters.
    Stats,
    /// Per-shard activity summaries (one entry on a monolithic engine).
    ShardStats,
    /// The full served arrangement, merged across shards.
    MergedSnapshot,
}

/// A response from the serving engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineResponse {
    /// A delta (or batch) was applied.
    Applied {
        /// Delta kind (or `"batch"`).
        kind: String,
        /// How the arrangement was repaired.
        repair: RepairKind,
        /// Utility after repair.
        utility: f64,
        /// Pairs served after repair.
        num_pairs: usize,
    },
    /// A delta was rejected by validation; the engine state is unchanged
    /// (for batches: the prefix before the invalid delta stays applied).
    Rejected {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// Answer to [`EngineQuery::Utility`].
    Utility {
        /// `β · Σ SI + (1 − β) · Σ D`.
        total: f64,
        /// Unweighted interest sum.
        interest_sum: f64,
        /// Unweighted interaction sum.
        interaction_sum: f64,
    },
    /// Answer to [`EngineQuery::AssignmentsOf`].
    Assignments {
        /// The queried user.
        user: UserId,
        /// Events assigned to the user, in id order.
        events: Vec<EventId>,
    },
    /// Answer to [`EngineQuery::EventLoad`].
    EventLoad {
        /// The queried event.
        event: EventId,
        /// Current number of attendees.
        load: usize,
        /// Capacity `c_v`.
        capacity: usize,
    },
    /// Answer to [`EngineQuery::Stats`].
    Stats {
        /// Engine activity counters (aggregated across shards).
        stats: EngineStats,
    },
    /// Answer to [`EngineQuery::ShardStats`].
    ShardStats {
        /// One entry per shard.
        shards: Vec<ShardStatsEntry>,
    },
    /// Answer to [`EngineQuery::MergedSnapshot`].
    Snapshot {
        /// Events the snapshot was sized for.
        num_events: usize,
        /// Users the snapshot was sized for.
        num_users: usize,
        /// Utility of the snapshot.
        utility: f64,
        /// The served `(event, user)` pairs, grouped by user.
        pairs: Vec<(EventId, UserId)>,
    },
    /// A [`EngineRequest::Rebalance`] ran.
    Rebalanced {
        /// What the reconciliation pass did.
        report: ReconcileReport,
        /// Utility after the pass.
        utility: f64,
    },
}

/// Error raised when decoding protocol lines.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// 1-based line number of the offending input, when known.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "protocol error on line {line}: {}", self.message),
            None => write!(f, "protocol error: {}", self.message),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Encodes a request as one JSON line (no trailing newline).
pub fn encode_request(request: &EngineRequest) -> String {
    serde_json::to_string(request).expect("requests always serialize")
}

/// Decodes a request from one JSON line.
pub fn decode_request(line: &str) -> Result<EngineRequest, ProtocolError> {
    serde_json::from_str(line).map_err(|e| ProtocolError {
        line: None,
        message: e.to_string(),
    })
}

/// Encodes a response as one JSON line (no trailing newline).
pub fn encode_response(response: &EngineResponse) -> String {
    serde_json::to_string(response).expect("responses always serialize")
}

/// Decodes a response from one JSON line.
pub fn decode_response(line: &str) -> Result<EngineResponse, ProtocolError> {
    serde_json::from_str(line).map_err(|e| ProtocolError {
        line: None,
        message: e.to_string(),
    })
}

/// Serializes a request log to JSONL text (one request per line).
pub fn requests_to_jsonl(requests: &[EngineRequest]) -> String {
    let mut out = String::new();
    for request in requests {
        out.push_str(&encode_request(request));
        out.push('\n');
    }
    out
}

/// Parses a JSONL request log. Blank lines and `#`-prefixed comment lines
/// are skipped.
pub fn requests_from_jsonl(text: &str) -> Result<Vec<EngineRequest>, ProtocolError> {
    let mut requests = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let request = decode_request(trimmed).map_err(|mut e| {
            e.line = Some(idx + 1);
            e
        })?;
        requests.push(request);
    }
    Ok(requests)
}

impl Engine {
    /// Handles one protocol request, mutating the engine for `Apply` /
    /// `ApplyBatch` and answering queries read-only.
    pub fn handle(&mut self, request: &EngineRequest) -> EngineResponse {
        match request {
            EngineRequest::Apply { delta } => match self.apply(delta) {
                Ok(outcome) => EngineResponse::Applied {
                    kind: outcome.kind,
                    repair: outcome.repair,
                    utility: outcome.utility,
                    num_pairs: outcome.num_pairs,
                },
                Err(e) => EngineResponse::Rejected {
                    reason: e.to_string(),
                },
            },
            EngineRequest::ApplyBatch { deltas } => match self.apply_batch(deltas) {
                Ok(outcome) => EngineResponse::Applied {
                    kind: outcome.kind,
                    repair: outcome.repair,
                    utility: outcome.utility,
                    num_pairs: outcome.num_pairs,
                },
                Err(e) => EngineResponse::Rejected {
                    reason: e.to_string(),
                },
            },
            // A monolithic engine has no shard boundary to reconcile.
            EngineRequest::Rebalance => EngineResponse::Rebalanced {
                report: ReconcileReport::default(),
                utility: self.utility(),
            },
            EngineRequest::Query { query } => self.answer(*query),
        }
    }

    fn answer(&self, query: EngineQuery) -> EngineResponse {
        match query {
            EngineQuery::Utility => {
                let breakdown = self.arrangement().utility(self.instance());
                EngineResponse::Utility {
                    total: breakdown.total,
                    interest_sum: breakdown.interest_sum,
                    interaction_sum: breakdown.interaction_sum,
                }
            }
            EngineQuery::AssignmentsOf { user } => {
                let events = if user.index() < self.instance().num_users() {
                    self.arrangement().events_of(user).to_vec()
                } else {
                    Vec::new()
                };
                EngineResponse::Assignments { user, events }
            }
            EngineQuery::EventLoad { event } => {
                let (load, capacity) = if event.index() < self.instance().num_events() {
                    (
                        self.arrangement().load_of(event),
                        self.instance().event(event).capacity,
                    )
                } else {
                    (0, 0)
                };
                EngineResponse::EventLoad {
                    event,
                    load,
                    capacity,
                }
            }
            EngineQuery::Stats => EngineResponse::Stats {
                stats: *self.stats(),
            },
            EngineQuery::ShardStats => EngineResponse::ShardStats {
                shards: vec![ShardStatsEntry {
                    shard: 0,
                    users: self.instance().num_users(),
                    pairs: self.arrangement().len(),
                    utility: self.utility(),
                    stats: *self.stats(),
                }],
            },
            EngineQuery::MergedSnapshot => EngineResponse::Snapshot {
                num_events: self.instance().num_events(),
                num_users: self.instance().num_users(),
                utility: self.utility(),
                pairs: self.arrangement().pairs().collect(),
            },
        }
    }
}

impl ShardedEngine {
    /// Handles one protocol request against the sharded engine. With one
    /// shard every response matches the monolithic [`Engine`] bit for bit.
    pub fn handle(&mut self, request: &EngineRequest) -> EngineResponse {
        match request {
            EngineRequest::Apply { delta } => match self.apply(delta) {
                Ok(outcome) => EngineResponse::Applied {
                    kind: outcome.kind,
                    repair: outcome.repair,
                    utility: outcome.utility,
                    num_pairs: outcome.num_pairs,
                },
                Err(e) => EngineResponse::Rejected {
                    reason: e.to_string(),
                },
            },
            EngineRequest::ApplyBatch { deltas } => match self.apply_batch(deltas) {
                Ok(outcome) => EngineResponse::Applied {
                    kind: outcome.kind,
                    repair: outcome.repair,
                    utility: outcome.utility,
                    num_pairs: outcome.num_pairs,
                },
                Err(e) => EngineResponse::Rejected {
                    reason: e.to_string(),
                },
            },
            EngineRequest::Rebalance => {
                let report = self.rebalance();
                EngineResponse::Rebalanced {
                    report,
                    utility: self.merged_utility().total,
                }
            }
            EngineRequest::Query { query } => self.answer(*query),
        }
    }

    fn answer(&self, query: EngineQuery) -> EngineResponse {
        match query {
            EngineQuery::Utility => {
                let breakdown = self.merged_utility();
                EngineResponse::Utility {
                    total: breakdown.total,
                    interest_sum: breakdown.interest_sum,
                    interaction_sum: breakdown.interaction_sum,
                }
            }
            EngineQuery::AssignmentsOf { user } => EngineResponse::Assignments {
                user,
                events: self.assignments_of(user),
            },
            EngineQuery::EventLoad { event } => {
                let (load, capacity) = if event.index() < self.instance().num_events() {
                    (
                        (0..self.num_shards())
                            .map(|k| self.shard(k).load_of(event))
                            .sum(),
                        self.instance().event(event).capacity,
                    )
                } else {
                    (0, 0)
                };
                EngineResponse::EventLoad {
                    event,
                    load,
                    capacity,
                }
            }
            EngineQuery::Stats => EngineResponse::Stats {
                stats: self.stats(),
            },
            EngineQuery::ShardStats => EngineResponse::ShardStats {
                shards: self.shard_stats_entries(),
            },
            EngineQuery::MergedSnapshot => {
                let merged = self.merged_arrangement();
                EngineResponse::Snapshot {
                    num_events: self.instance().num_events(),
                    num_users: self.instance().num_users(),
                    utility: merged.utility_value(self.instance()),
                    pairs: merged.pairs().collect(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igepa_core::AttributeVector;

    #[test]
    fn requests_roundtrip_through_jsonl() {
        let requests = vec![
            EngineRequest::Apply {
                delta: InstanceDelta::AddEvent {
                    capacity: 5,
                    attrs: AttributeVector::from_time(10, 60),
                },
            },
            EngineRequest::ApplyBatch {
                deltas: vec![
                    InstanceDelta::RemoveUser {
                        user: UserId::new(1),
                    },
                    InstanceDelta::UpdateInteractionScore {
                        user: UserId::new(0),
                        score: 0.75,
                    },
                ],
            },
            EngineRequest::Rebalance,
            EngineRequest::Query {
                query: EngineQuery::Utility,
            },
            EngineRequest::Query {
                query: EngineQuery::AssignmentsOf {
                    user: UserId::new(2),
                },
            },
            EngineRequest::Query {
                query: EngineQuery::EventLoad {
                    event: EventId::new(0),
                },
            },
            EngineRequest::Query {
                query: EngineQuery::Stats,
            },
            EngineRequest::Query {
                query: EngineQuery::ShardStats,
            },
            EngineRequest::Query {
                query: EngineQuery::MergedSnapshot,
            },
        ];
        let jsonl = requests_to_jsonl(&requests);
        assert_eq!(jsonl.lines().count(), requests.len());
        let back = requests_from_jsonl(&jsonl).unwrap();
        assert_eq!(back, requests);
    }

    #[test]
    fn jsonl_skips_blanks_and_comments() {
        let text = "\n# a comment\n{\"Query\":{\"query\":\"Utility\"}}\n\n";
        let requests = requests_from_jsonl(text).unwrap();
        assert_eq!(requests.len(), 1);
    }

    #[test]
    fn pre_sharding_logs_still_decode() {
        // A request log recorded before the protocol grew shard-aware
        // variants must keep parsing unchanged.
        let legacy = "{\"Apply\":{\"delta\":{\"AddEvent\":{\"capacity\":2,\"attrs\":{\"time\":null,\"location\":null,\"categories\":[]}}}}}\n{\"Query\":{\"query\":\"Stats\"}}\n";
        let requests = requests_from_jsonl(legacy).unwrap();
        assert_eq!(requests.len(), 2);
        assert!(matches!(requests[0], EngineRequest::Apply { .. }));
    }

    #[test]
    fn decode_errors_carry_line_numbers() {
        let err =
            requests_from_jsonl("{\"Query\":{\"query\":\"Utility\"}}\nnot json\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn responses_roundtrip() {
        let responses = vec![
            EngineResponse::Applied {
                kind: "add_user".to_string(),
                repair: RepairKind::GreedyPatch {
                    pruned: 1,
                    added: 2,
                },
                utility: 3.25,
                num_pairs: 7,
            },
            EngineResponse::Rejected {
                reason: "nope".to_string(),
            },
            EngineResponse::Stats {
                stats: EngineStats::default(),
            },
            EngineResponse::ShardStats {
                shards: vec![ShardStatsEntry {
                    shard: 1,
                    users: 4,
                    pairs: 3,
                    utility: 1.5,
                    stats: EngineStats::default(),
                }],
            },
            EngineResponse::Snapshot {
                num_events: 2,
                num_users: 3,
                utility: 0.75,
                pairs: vec![(EventId::new(0), UserId::new(2))],
            },
            EngineResponse::Rebalanced {
                report: ReconcileReport {
                    rounds_run: 1,
                    boundary_events: 2,
                    contended_events: 1,
                    quota_moved: 3,
                    shard_repairs: 1,
                },
                utility: 9.5,
            },
        ];
        for response in responses {
            let line = encode_response(&response);
            assert_eq!(decode_response(&line).unwrap(), response);
        }
    }
}
