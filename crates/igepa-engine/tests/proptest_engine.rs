//! Property tests for the serving engine:
//!
//! * any sequence of valid deltas keeps the served arrangement feasible at
//!   every step;
//! * replaying a recorded request log from the same initial state
//!   reproduces responses — and the final utility — bit for bit;
//! * validation rejections never corrupt the engine.

use igepa_algos::{GreedyArrangement, LocalSearch};
use igepa_core::{
    AttributeVector, CapacityTarget, ConstantInterest, EventId, Instance, InstanceDelta,
    NeverConflict, PairSetConflict, UserId,
};
use igepa_datagen::{generate_trace, TraceConfig};
use igepa_engine::{replay, Engine, EngineConfig, EngineRequest};
use proptest::prelude::*;

/// A delta described by raw numbers; resolved against the engine's evolving
/// population at apply time so it is always valid.
#[derive(Debug, Clone)]
struct RawDelta {
    kind: u8,
    a: usize,
    b: usize,
    score: f64,
}

fn raw_delta_strategy() -> impl Strategy<Value = RawDelta> {
    (0u8..6, 0usize..64, 0usize..64, 0.0f64..=1.0).prop_map(|(kind, a, b, score)| RawDelta {
        kind,
        a,
        b,
        score,
    })
}

/// Resolves a raw delta against current instance dimensions.
fn resolve(raw: &RawDelta, instance: &Instance) -> InstanceDelta {
    let num_events = instance.num_events();
    let num_users = instance.num_users();
    match raw.kind {
        0 => InstanceDelta::AddUser {
            capacity: 1 + raw.a % 3,
            attrs: AttributeVector::empty(),
            bids: if num_events == 0 {
                Vec::new()
            } else {
                vec![
                    EventId::new(raw.a % num_events),
                    EventId::new(raw.b % num_events),
                ]
            },
            interaction: raw.score,
        },
        1 if num_users > 0 => InstanceDelta::RemoveUser {
            user: UserId::new(raw.a % num_users),
        },
        2 => InstanceDelta::AddEvent {
            capacity: 1 + raw.b % 4,
            attrs: AttributeVector::empty(),
        },
        3 if num_events > 0 && raw.b.is_multiple_of(2) => InstanceDelta::UpdateCapacity {
            target: CapacityTarget::Event(EventId::new(raw.a % num_events)),
            capacity: raw.b % 5,
        },
        3 | 4 if num_users > 0 => {
            if raw.kind == 3 {
                InstanceDelta::UpdateCapacity {
                    target: CapacityTarget::User(UserId::new(raw.a % num_users)),
                    capacity: raw.b % 4,
                }
            } else {
                InstanceDelta::UpdateBids {
                    user: UserId::new(raw.a % num_users),
                    bids: if num_events == 0 {
                        Vec::new()
                    } else {
                        vec![EventId::new(raw.b % num_events)]
                    },
                }
            }
        }
        5 if num_users > 0 => InstanceDelta::UpdateInteractionScore {
            user: UserId::new(raw.a % num_users),
            score: raw.score,
        },
        // Population too small for the drawn kind: fall back to growth.
        _ => InstanceDelta::AddEvent {
            capacity: 1 + raw.b % 4,
            attrs: AttributeVector::empty(),
        },
    }
}

fn seeded_instance(num_events: usize, num_users: usize, conflicts: bool) -> Instance {
    let mut b = Instance::builder();
    let events: Vec<EventId> = (0..num_events)
        .map(|i| b.add_event(1 + i % 3, AttributeVector::empty()))
        .collect();
    for u in 0..num_users {
        let bids: Vec<EventId> = events
            .iter()
            .copied()
            .filter(|v| (v.index() + u) % 2 == 0)
            .collect();
        b.add_user(1 + u % 3, AttributeVector::empty(), bids);
    }
    b.interaction_scores((0..num_users).map(|u| (u as f64 * 0.13) % 1.0).collect());
    if conflicts && num_events >= 2 {
        let mut sigma = PairSetConflict::new();
        sigma.add(EventId::new(0), EventId::new(1));
        b.build(&sigma, &ConstantInterest(0.5)).unwrap()
    } else {
        b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap()
    }
}

fn engine_over(instance: Instance, seed: u64) -> Engine {
    Engine::new(
        instance,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        EngineConfig {
            seed,
            // Tight staleness control so the check path is exercised often.
            staleness_check_interval: 8,
            ..EngineConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_valid_delta_sequence_keeps_the_arrangement_feasible(
        num_events in 1usize..5,
        num_users in 1usize..5,
        with_conflicts in any::<bool>(),
        raws in proptest::collection::vec(raw_delta_strategy(), 1..40),
        seed in 0u64..100,
    ) {
        let instance = seeded_instance(num_events, num_users, with_conflicts);
        let mut engine = engine_over(instance, seed);
        prop_assert!(engine.arrangement().is_feasible(engine.instance()));
        for raw in &raws {
            let delta = resolve(raw, engine.instance());
            let outcome = engine.apply(&delta);
            prop_assert!(outcome.is_ok(), "resolved delta rejected: {:?}", outcome.err());
            // The serving invariant: feasible after every single delta.
            prop_assert!(
                engine.arrangement().is_feasible(engine.instance()),
                "infeasible after {:?}",
                delta.kind()
            );
        }
    }

    #[test]
    fn replaying_a_recorded_log_reproduces_utility_bit_for_bit(
        num_events in 1usize..4,
        num_users in 1usize..4,
        raws in proptest::collection::vec(raw_delta_strategy(), 1..30),
        seed in 0u64..50,
    ) {
        // Record: resolve raw deltas against a live engine, keeping the log.
        let instance = seeded_instance(num_events, num_users, false);
        let mut recorder = engine_over(instance.clone(), seed);
        let mut log: Vec<EngineRequest> = Vec::new();
        for raw in &raws {
            let delta = resolve(raw, recorder.instance());
            recorder.apply(&delta).unwrap();
            log.push(EngineRequest::Apply { delta });
        }
        let recorded_utility = recorder.utility();

        // Replay the recorded log twice from fresh engines.
        let first = replay(&mut engine_over(instance.clone(), seed), &log);
        let second = replay(&mut engine_over(instance, seed), &log);
        prop_assert_eq!(&first.responses, &second.responses);
        prop_assert_eq!(
            first.report.final_utility.to_bits(),
            second.report.final_utility.to_bits()
        );
        prop_assert_eq!(first.report.final_utility.to_bits(), recorded_utility.to_bits());
    }

    /// The component-parallel repair pin: the same delta sequence driven
    /// through engines configured with 1, 2 and 4 repair threads lands on
    /// bit-identical served state after every single apply — same pairs,
    /// same utility bits, same counters. Threads change where repair work
    /// runs (one patch region per conflict-graph component), never what
    /// it produces.
    #[test]
    fn component_parallel_repair_is_bit_identical_across_thread_counts(
        num_events in 1usize..5,
        num_users in 1usize..6,
        with_conflicts in any::<bool>(),
        raws in proptest::collection::vec(raw_delta_strategy(), 1..40),
        seed in 0u64..50,
    ) {
        let instance = seeded_instance(num_events, num_users, with_conflicts);
        let mut engines: Vec<Engine> = [1usize, 2, 4]
            .into_iter()
            .map(|repair_threads| {
                Engine::new(
                    instance.clone(),
                    Box::new(NeverConflict),
                    Box::new(ConstantInterest(0.5)),
                    Box::new(GreedyArrangement),
                    EngineConfig {
                        seed,
                        staleness_check_interval: 8,
                        repair_threads,
                        ..EngineConfig::default()
                    },
                )
            })
            .collect();
        for raw in &raws {
            let delta = resolve(raw, engines[0].instance());
            for engine in &mut engines {
                let outcome = engine.apply(&delta);
                prop_assert!(outcome.is_ok(), "resolved delta rejected: {:?}", outcome.err());
            }
            let (baseline, rest) = engines.split_first().expect("three engines");
            for other in rest {
                prop_assert_eq!(
                    baseline.utility().to_bits(),
                    other.utility().to_bits(),
                    "utility diverged at {} threads after {:?}",
                    other.config().repair_threads,
                    delta.kind()
                );
                prop_assert_eq!(
                    baseline.arrangement().pairs().collect::<Vec<_>>(),
                    other.arrangement().pairs().collect::<Vec<_>>(),
                    "pairs diverged at {} threads after {:?}",
                    other.config().repair_threads,
                    delta.kind()
                );
                prop_assert_eq!(baseline.stats(), other.stats());
            }
        }
    }

    #[test]
    fn rejected_deltas_leave_served_state_untouched(
        num_events in 1usize..4,
        num_users in 1usize..4,
        offset in 0usize..10,
        score in 0.0f64..=1.0,
    ) {
        let instance = seeded_instance(num_events, num_users, false);
        let mut engine = engine_over(instance, 1);
        let utility_before = engine.utility();
        let pairs_before = engine.arrangement().len();
        let bad_user = UserId::new(engine.instance().num_users() + offset);
        let result = engine.apply(&InstanceDelta::UpdateInteractionScore {
            user: bad_user,
            score,
        });
        prop_assert!(result.is_err());
        prop_assert_eq!(engine.utility().to_bits(), utility_before.to_bits());
        prop_assert_eq!(engine.arrangement().len(), pairs_before);
    }
}

/// End-to-end: a generated arrival trace replays with every intermediate
/// arrangement feasible and the final utility within reach of a cold solve
/// of the final instance (the acceptance bar of the serving engine).
#[test]
fn generated_trace_replays_end_to_end_with_bounded_drift() {
    let instance = seeded_instance(4, 6, true);
    let trace = generate_trace(
        &instance,
        &TraceConfig {
            num_deltas: 600,
            ..TraceConfig::default()
        },
        42,
    );
    let mut engine = Engine::new(
        instance,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(LocalSearch::default()),
        EngineConfig {
            seed: 9,
            staleness_check_interval: 64,
            max_staleness: 0.05,
            ..EngineConfig::default()
        },
    );
    for timed in &trace.deltas {
        engine.apply(&timed.delta).expect("trace deltas are valid");
        assert!(engine.arrangement().is_feasible(engine.instance()));
    }
    let ratio = engine.cold_solve_ratio();
    assert!(ratio >= 0.95, "final utility only {ratio:.3} of cold solve");
}
