//! Envelope wire-format property tests:
//!
//! * `encode → frame → deframe → decode` round-trips request envelopes in
//!   both framings, for arbitrary ids, versions and request bodies;
//! * response envelopes round-trip for every [`EngineResponse`] shape and
//!   **every [`EngineError`] variant** (the typed taxonomy must survive
//!   the wire unchanged);
//! * bare pre-envelope request lines keep decoding under
//!   [`LEGACY_VERSION`] with the caller-supplied fallback id.

use igepa_core::{AttributeVector, EventId, InstanceDelta, UserId};
use igepa_engine::transport::{read_frame, write_frame};
use igepa_engine::{
    decode_request_envelope, decode_response_envelope, encode_request, encode_request_envelope,
    encode_response_envelope, EngineError, EngineQuery, EngineRequest, EngineResponse, EngineStats,
    EntityRef, Framing, ReconcileReport, RejectReason, RepairKind, RequestEnvelope,
    ResponseEnvelope, LEGACY_VERSION,
};
use proptest::prelude::*;
use std::io::Cursor;

fn request_strategy() -> impl Strategy<Value = EngineRequest> {
    (0u8..8, 0usize..64, 0usize..64, 0.0f64..=1.0).prop_map(|(kind, a, b, score)| match kind {
        0 => EngineRequest::Apply {
            delta: InstanceDelta::AddUser {
                capacity: 1 + a % 3,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(a), EventId::new(b)],
                interaction: score,
            },
        },
        1 => EngineRequest::Apply {
            delta: InstanceDelta::UpdateInteractionScore {
                user: UserId::new(a),
                score,
            },
        },
        2 => EngineRequest::ApplyBatch {
            deltas: vec![
                InstanceDelta::RemoveUser {
                    user: UserId::new(a),
                },
                InstanceDelta::AddEvent {
                    capacity: b,
                    attrs: AttributeVector::from_time(a as i64, 30),
                },
            ],
        },
        3 => EngineRequest::Rebalance,
        4 => EngineRequest::Query {
            query: EngineQuery::Utility,
        },
        5 => EngineRequest::Query {
            query: EngineQuery::AssignmentsOf {
                user: UserId::new(a),
            },
        },
        6 => EngineRequest::Query {
            query: EngineQuery::EventLoad {
                event: EventId::new(b),
            },
        },
        _ => EngineRequest::Query {
            query: EngineQuery::MergedSnapshot,
        },
    })
}

/// Exercises every variant of the typed error taxonomy.
fn error_strategy() -> impl Strategy<Value = EngineError> {
    (0u8..8, 0usize..64, 0u32..64).prop_map(|(kind, a, v)| match kind {
        0 => EngineError::Rejected {
            reason: RejectReason::UnknownUser {
                user: UserId::new(a),
            },
        },
        1 => EngineError::Rejected {
            reason: RejectReason::UnknownEvent {
                event: EventId::new(a),
            },
        },
        2 => EngineError::Rejected {
            reason: RejectReason::UnknownEventInBid {
                user: UserId::new(a),
                event: EventId::new(a + 1),
            },
        },
        3 => EngineError::Rejected {
            reason: RejectReason::Invalid {
                detail: format!("interaction score {a} is outside [0, 1]"),
            },
        },
        4 => EngineError::NotFound {
            entity: EntityRef::User {
                user: UserId::new(a),
            },
        },
        5 => EngineError::NotFound {
            entity: EntityRef::Event {
                event: EventId::new(a),
            },
        },
        6 => EngineError::Internal {
            detail: format!("shard {a} worker is gone"),
        },
        _ => {
            if v % 2 == 0 {
                EngineError::Unsupported { version: v }
            } else {
                EngineError::Malformed {
                    detail: format!("unexpected input at offset {a}"),
                }
            }
        }
    })
}

fn response_strategy() -> impl Strategy<Value = EngineResponse> {
    (0u8..6, 0usize..64, 0.0f64..=100.0).prop_map(|(kind, a, x)| match kind {
        0 => EngineResponse::Applied {
            kind: "add_user".to_string(),
            repair: RepairKind::GreedyPatch {
                pruned: a,
                added: a + 1,
            },
            utility: x,
            num_pairs: a,
        },
        1 => EngineResponse::Rejected {
            reason: format!("user u{a} does not exist in the instance"),
        },
        2 => EngineResponse::Utility {
            total: x,
            interest_sum: x / 2.0,
            interaction_sum: x / 3.0,
        },
        3 => EngineResponse::Assignments {
            user: UserId::new(a),
            events: vec![EventId::new(a), EventId::new(a + 2)],
        },
        4 => EngineResponse::Stats {
            stats: EngineStats {
                deltas_applied: a as u64,
                ..EngineStats::default()
            },
        },
        _ => EngineResponse::Rebalanced {
            report: ReconcileReport {
                rounds_run: 1,
                boundary_events: a,
                contended_events: a / 2,
                quota_moved: a,
                shard_repairs: 1,
            },
            utility: x,
        },
    })
}

fn roundtrip_through_frame(payload: &str, framing: Framing) -> String {
    let mut buffer = Vec::new();
    write_frame(&mut buffer, framing, payload).unwrap();
    let mut reader = Cursor::new(buffer);
    let back = read_frame(&mut reader, framing).unwrap().unwrap();
    assert_eq!(read_frame(&mut reader, framing).unwrap(), None);
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_envelopes_roundtrip_both_framings(
        id in any::<u64>(),
        version in 0u32..4,
        body in request_strategy(),
        deadline in any::<u64>().prop_map(|v| (v % 2 == 0).then_some(v >> 1)),
        length_framed in any::<bool>(),
    ) {
        let framing = if length_framed {
            Framing::LengthPrefixed
        } else {
            Framing::Lines
        };
        let envelope = RequestEnvelope { id, version, deadline_ms: deadline, body };
        let wire = roundtrip_through_frame(&encode_request_envelope(&envelope), framing);
        let back = decode_request_envelope(&wire, 999_999).unwrap();
        prop_assert_eq!(back, envelope);
    }

    #[test]
    fn response_envelopes_roundtrip_ok_and_every_error_variant(
        id in any::<u64>(),
        ok in response_strategy(),
        err in error_strategy(),
        length_framed in any::<bool>(),
    ) {
        let framing = if length_framed {
            Framing::LengthPrefixed
        } else {
            Framing::Lines
        };
        for result in [Ok(ok.clone()), Err(err.clone())] {
            let envelope = ResponseEnvelope { id, result };
            let wire = roundtrip_through_frame(&encode_response_envelope(&envelope), framing);
            let back = decode_response_envelope(&wire).unwrap();
            prop_assert_eq!(back, envelope);
        }
    }

    #[test]
    fn bare_requests_keep_decoding_with_the_fallback_id(
        fallback in any::<u64>(),
        body in request_strategy(),
    ) {
        // A pre-envelope log line is a bare request; the envelope decoder
        // must wrap it under the legacy dialect without loss.
        let line = encode_request(&body);
        let envelope = decode_request_envelope(&line, fallback).unwrap();
        prop_assert_eq!(envelope.id, fallback);
        prop_assert_eq!(envelope.version, LEGACY_VERSION);
        prop_assert_eq!(envelope.body, body);
    }
}
