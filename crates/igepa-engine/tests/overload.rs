//! Overload-control and fault-injection liveness tests.
//!
//! The engine's degradation contract, exercised end to end over TCP:
//! under a randomized request trace, a randomized (possibly tiny)
//! admission cap, and a randomized deterministic fault plan (slow
//! applies, lost view shipments), every request the client puts on the
//! wire gets **exactly one typed response** — an ack, an engine
//! rejection, or an overload shed — never a silent drop, a panic, or a
//! deadlock; cached reads keep answering from a concurrent connection
//! the whole time; and the server shuts down with a feasible merged
//! arrangement. Degrade, never collapse.

use igepa_algos::GreedyArrangement;
use igepa_core::{
    AttributeVector, ConstantInterest, EventId, HashPartitioner, Instance, InstanceDelta,
    NeverConflict, UserId,
};
use igepa_engine::{
    AdmissionPolicy, ClientError, EngineClient, EngineConfig, EngineError, EngineQuery,
    EngineRequest, EngineResponse, EngineServer, FaultInjector, FaultPlan, Framing, ShardedConfig,
    ShardedEngine,
};
use proptest::prelude::*;
use std::net::TcpListener;
use std::sync::Arc;

fn seeded_instance(num_events: usize, num_users: usize) -> Instance {
    let mut b = Instance::builder();
    let events: Vec<EventId> = (0..num_events)
        .map(|i| b.add_event(1 + i % 3, AttributeVector::empty()))
        .collect();
    for u in 0..num_users {
        let bids: Vec<EventId> = events
            .iter()
            .copied()
            .filter(|v| (v.index() + u) % 2 == 0)
            .collect();
        b.add_user(1 + u % 3, AttributeVector::empty(), bids);
    }
    b.interaction_scores((0..num_users).map(|u| (u as f64 * 0.13) % 1.0).collect());
    b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap()
}

/// A 4-shard engine under the given admission policy.
fn engine_with_admission(seed: u64, admission: AdmissionPolicy) -> ShardedEngine {
    ShardedEngine::new(
        seeded_instance(4, 6),
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        Box::new(HashPartitioner),
        ShardedConfig {
            num_shards: 4,
            shard: EngineConfig {
                seed,
                admission,
                ..EngineConfig::default()
            },
            reconcile_interval: 8,
            reconcile_rounds: 2,
        },
    )
}

/// A raw draw resolved into a protocol request: growth deltas, score
/// updates, an out-of-range probe the engine rejects (a *typed*
/// rejection is a valid response under overload too), and reads.
fn request_for(raw: (u8, usize, f64)) -> EngineRequest {
    let (op, a, score) = raw;
    match op {
        0 | 1 => EngineRequest::Apply {
            delta: InstanceDelta::AddUser {
                capacity: 1 + a % 3,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(a % 4)],
                interaction: score,
            },
        },
        2 => EngineRequest::Apply {
            delta: InstanceDelta::AddEvent {
                capacity: 1 + a % 4,
                attrs: AttributeVector::empty(),
            },
        },
        3 => EngineRequest::Apply {
            delta: InstanceDelta::UpdateInteractionScore {
                user: UserId::new(a % 6),
                score,
            },
        },
        4 => EngineRequest::Apply {
            delta: InstanceDelta::UpdateInteractionScore {
                user: UserId::new(9999),
                score,
            },
        },
        5 => EngineRequest::Query {
            query: EngineQuery::Utility,
        },
        6 => EngineRequest::Query {
            query: EngineQuery::EventLoad {
                event: EventId::new(a % 4),
            },
        },
        _ => EngineRequest::Rebalance,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// See the module docs: exactly one typed response per request,
    /// reads keep flowing, feasible shutdown — under random traces,
    /// caps, and fault plans.
    #[test]
    fn overload_sheds_are_typed_and_liveness_holds(
        raws in proptest::collection::vec((0u8..8, 0usize..64, 0.0f64..=1.0), 1..40),
        cap in 0usize..6,
        fault_seed in 0u64..1_000_000,
        slow_permille in (0u8..3).prop_map(|i| [0u16, 200, 1000][i as usize]),
        drop_permille in (0u8..3).prop_map(|i| [0u16, 200, 1000][i as usize]),
        window in 1usize..9,
    ) {
        let requests: Vec<EngineRequest> = raws.into_iter().map(request_for).collect();
        let total = requests.len();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let faults = Arc::new(FaultInjector::new(FaultPlan {
            seed: fault_seed,
            slow_apply_permille: slow_permille,
            slow_apply_ms: 1,
            drop_view_permille: drop_permille,
            ..FaultPlan::quiet()
        }));
        let engine = engine_with_admission(fault_seed ^ 0x5eed, AdmissionPolicy::bounded(cap));
        let handle = EngineServer::serve_sharded_faulted(
            listener,
            engine,
            Framing::Lines,
            None,
            Arc::clone(&faults),
        )
        .unwrap();
        let addr = handle.local_addr();

        // A concurrent reader on its own connection: cached reads must
        // keep answering while the writer floods the admission gate.
        let reader = std::thread::spawn(move || {
            let mut client = EngineClient::connect(addr, Framing::Lines).unwrap();
            let mut answered = 0usize;
            for _ in 0..16 {
                match client.query(EngineQuery::Utility) {
                    Ok(EngineResponse::Utility { .. }) => answered += 1,
                    other => panic!("reader starved or got garbage: {other:?}"),
                }
            }
            answered
        });

        let mut client = EngineClient::connect(addr, Framing::Lines).unwrap();
        client.set_pipeline_window(window);

        // Two zero-budget probes: deterministic DeadlineExceeded unless
        // admission sheds them first — either way a typed refusal.
        for _ in 0..2 {
            let id = client
                .send_with_deadline(request_for((0, 1, 0.5)), Some(0))
                .unwrap();
            match client.recv(id) {
                Err(ClientError::Engine(
                    EngineError::DeadlineExceeded { deadline_ms: 0 }
                    | EngineError::Overloaded { .. },
                )) => {}
                other => prop_assert!(false, "zero-budget probe got {other:?}"),
            }
        }

        let results = client.pipeline(requests).unwrap();
        // Exactly one response per request, in order, every one typed.
        prop_assert_eq!(results.len(), total);
        for result in &results {
            match result {
                Ok(_) => {}
                Err(
                    EngineError::Overloaded { .. }
                    | EngineError::DeadlineExceeded { .. }
                    | EngineError::Rejected { .. }
                    | EngineError::NotFound { .. },
                ) => {}
                Err(other) => prop_assert!(false, "untyped/unexpected failure: {other:?}"),
            }
        }

        prop_assert_eq!(reader.join().expect("reader panicked"), 16);
        drop(client);
        let engine = handle.shutdown().unwrap();
        prop_assert!(engine.merged_arrangement().is_feasible(engine.instance()));
    }
}

/// Regression pin at the integration level: a pre-admission config (no
/// `admission` key) decodes to the unbounded policy, and a server built
/// from it admits every mutation — the legacy behaviour, bit for bit.
#[test]
fn legacy_config_decodes_unbounded_and_serves_unthrottled() {
    let pre_admission = "{\"seed\":7,\"escalation_fraction\":0.25,\
                         \"staleness_check_interval\":256,\"max_staleness\":0.05,\
                         \"batch_policy\":\"Escalation\",\
                         \"online_cost_calibration\":false,\
                         \"durability\":\"Off\",\"repair_threads\":1}";
    let decoded: EngineConfig = serde_json::from_str(pre_admission).unwrap();
    assert_eq!(decoded.admission, AdmissionPolicy::Unbounded);
    let expected = EngineConfig {
        seed: 7,
        ..EngineConfig::default()
    };
    assert_eq!(decoded, expected);
    assert_eq!(
        serde_json::to_string(&decoded).unwrap(),
        serde_json::to_string(&expected).unwrap()
    );

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let engine = ShardedEngine::new(
        seeded_instance(4, 6),
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        Box::new(HashPartitioner),
        ShardedConfig {
            num_shards: 4,
            shard: decoded,
            reconcile_interval: 8,
            reconcile_rounds: 2,
        },
    );
    let handle = EngineServer::serve_sharded(listener, engine, Framing::Lines).unwrap();
    let mut client = EngineClient::connect(handle.local_addr(), Framing::Lines).unwrap();
    for i in 0..32 {
        let response = client.call(request_for((0, i, 0.5))).unwrap();
        assert!(matches!(response, EngineResponse::Applied { .. }));
    }
    drop(client);
    handle.shutdown().unwrap();
}
