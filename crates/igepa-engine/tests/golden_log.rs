//! Golden-log compatibility suite.
//!
//! `tests/golden/pre_envelope_requests.jsonl` is a checked-in request log
//! in the *pre-envelope* wire format (bare `EngineRequest` lines, as every
//! log recorded before the service-layer redesign). The contract pinned
//! here: that log must keep decoding, and replaying it through the new
//! [`EngineService`] must keep producing **byte-identical** responses —
//! on the monolithic engine and on a one-shard `ShardedEngine` alike —
//! matching `tests/golden/pre_envelope_responses.jsonl`.
//!
//! Regenerate both files with `UPDATE_GOLDEN=1 cargo test -p igepa-engine
//! --test golden_log` after an *intentional* protocol change, and review
//! the diff like any other API break.

use igepa_algos::GreedyArrangement;
use igepa_core::{
    AttributeVector, CapacityTarget, ConstantInterest, EventId, HashPartitioner, Instance,
    InstanceDelta, NeverConflict, UserId,
};
use igepa_engine::{
    encode_response, replay, requests_from_jsonl, requests_to_jsonl, Engine, EngineBackend,
    EngineConfig, EngineQuery, EngineRequest, EngineService, ShardedConfig, ShardedEngine,
};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The deterministic base instance the log was recorded against: three
/// capacity-2 events, four capacity-2 users bidding on everything.
fn base_instance() -> Instance {
    let mut b = Instance::builder();
    let events: Vec<EventId> = (0..3)
        .map(|_| b.add_event(2, AttributeVector::empty()))
        .collect();
    for _ in 0..4 {
        b.add_user(2, AttributeVector::empty(), events.clone());
    }
    b.interaction_scores(vec![0.5; 4]);
    b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap()
}

fn monolithic() -> Engine {
    Engine::new(
        base_instance(),
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        EngineConfig::default(),
    )
}

fn sharded_one() -> ShardedEngine {
    ShardedEngine::new(
        base_instance(),
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        Box::new(HashPartitioner),
        ShardedConfig::default(),
    )
}

/// The scripted request sequence behind the checked-in log: every delta
/// kind, a batch, a rebalance, every query — including the out-of-range
/// `AssignmentsOf` / `EventLoad` lookups whose silent `[]` / `(0, 0)`
/// answers the legacy dialect pins — and one rejected delta.
fn scripted_requests() -> Vec<EngineRequest> {
    vec![
        EngineRequest::Query {
            query: EngineQuery::Utility,
        },
        EngineRequest::Apply {
            delta: InstanceDelta::AddUser {
                capacity: 1,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(0)],
                interaction: 0.8,
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::AddEvent {
                capacity: 3,
                attrs: AttributeVector::from_time(10, 60),
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(EventId::new(0)),
                capacity: 1,
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::UpdateCapacity {
                target: CapacityTarget::User(UserId::new(1)),
                capacity: 1,
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::UpdateBids {
                user: UserId::new(2),
                bids: vec![EventId::new(1), EventId::new(3)],
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::UpdateInteractionScore {
                user: UserId::new(0),
                score: 0.9,
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::RemoveUser {
                user: UserId::new(3),
            },
        },
        // Rejected: the user does not exist.
        EngineRequest::Apply {
            delta: InstanceDelta::UpdateInteractionScore {
                user: UserId::new(99),
                score: 0.5,
            },
        },
        EngineRequest::ApplyBatch {
            deltas: vec![
                InstanceDelta::AddUser {
                    capacity: 2,
                    attrs: AttributeVector::empty(),
                    bids: vec![EventId::new(1), EventId::new(3)],
                    interaction: 0.6,
                },
                InstanceDelta::UpdateInteractionScore {
                    user: UserId::new(1),
                    score: 0.7,
                },
            ],
        },
        EngineRequest::Rebalance,
        // Legacy silent answers for out-of-range ids.
        EngineRequest::Query {
            query: EngineQuery::AssignmentsOf {
                user: UserId::new(99),
            },
        },
        EngineRequest::Query {
            query: EngineQuery::EventLoad {
                event: EventId::new(99),
            },
        },
        EngineRequest::Query {
            query: EngineQuery::AssignmentsOf {
                user: UserId::new(0),
            },
        },
        EngineRequest::Query {
            query: EngineQuery::EventLoad {
                event: EventId::new(0),
            },
        },
        EngineRequest::Query {
            query: EngineQuery::Stats,
        },
        EngineRequest::Query {
            query: EngineQuery::ShardStats,
        },
        EngineRequest::Query {
            query: EngineQuery::MergedSnapshot,
        },
        EngineRequest::Query {
            query: EngineQuery::Utility,
        },
    ]
}

/// Replays `requests` through a fresh service and renders the responses
/// as JSONL, exactly as a response recorder would.
fn responses_jsonl<B: EngineBackend>(backend: B, requests: &[EngineRequest]) -> String {
    let mut service = EngineService::new(backend);
    requests
        .iter()
        .map(|request| encode_response(&service.handle(request)) + "\n")
        .collect()
}

#[test]
fn golden_log_replays_byte_identically_on_both_backends() {
    let dir = golden_dir();
    let requests_path = dir.join("pre_envelope_requests.jsonl");
    let responses_path = dir.join("pre_envelope_responses.jsonl");

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&requests_path, requests_to_jsonl(&scripted_requests())).unwrap();
        std::fs::write(
            &responses_path,
            responses_jsonl(monolithic(), &scripted_requests()),
        )
        .unwrap();
    }

    let log =
        std::fs::read_to_string(&requests_path).expect("checked-in golden request log is readable");
    let requests = requests_from_jsonl(&log).expect("pre-envelope log still decodes");
    assert_eq!(
        requests,
        scripted_requests(),
        "checked-in golden requests drifted from the script in this file"
    );

    let golden = std::fs::read_to_string(&responses_path)
        .expect("checked-in golden response log is readable");
    assert_eq!(
        responses_jsonl(monolithic(), &requests),
        golden,
        "monolithic responses drifted from the golden log"
    );
    assert_eq!(
        responses_jsonl(sharded_one(), &requests),
        golden,
        "one-shard sharded responses drifted from the golden log"
    );
}

#[test]
fn golden_log_replays_through_the_replay_driver() {
    // The replay driver takes the same service path, so its response
    // stream must match a hand-driven service byte for byte too.
    let log = std::fs::read_to_string(golden_dir().join("pre_envelope_requests.jsonl")).unwrap();
    let requests = requests_from_jsonl(&log).unwrap();
    let outcome = replay(&mut monolithic(), &requests);
    let driven: String = outcome
        .responses
        .iter()
        .map(|response| encode_response(response) + "\n")
        .collect();
    let golden =
        std::fs::read_to_string(golden_dir().join("pre_envelope_responses.jsonl")).unwrap();
    assert_eq!(driven, golden);
    assert_eq!(outcome.report.rejected, 1);
    assert_eq!(outcome.report.requests, requests.len());
}
