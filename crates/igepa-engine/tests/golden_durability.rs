//! Golden durability fixtures.
//!
//! `tests/golden/durability/` is a checked-in durability directory — WAL
//! segments plus a version-2 checkpoint — recorded by a scripted durable
//! run. `tests/golden/durability_v1/` is the same directory with the
//! checkpoint rewritten to the version-1 schema (no `probe_counter`, no
//! `coordinator_stats`), exercising the decode-and-migrate path against
//! a real on-disk artifact. The contract pinned here: both directories
//! must keep recovering, and the recovered engine must be bit-identical
//! to a fresh engine that executed the scripted requests uninterrupted.
//!
//! Regenerate both fixtures with `UPDATE_GOLDEN=1 cargo test -p
//! igepa-engine --test golden_durability` after an *intentional* format
//! change, and review the diff like any other API break.

use igepa_algos::GreedyArrangement;
use igepa_core::{
    AttributeVector, CapacityTarget, ConstantInterest, EventId, HashPartitioner, Instance,
    InstanceDelta, NeverConflict, UserId,
};
use igepa_engine::durability::snapshot::list_snapshots;
use igepa_engine::durability::wal::fnv1a64;
use igepa_engine::{
    recover, DurabilityController, DurabilityPolicy, EngineConfig, EngineRequest,
    EngineSnapshotState, ShardedConfig, ShardedEngine,
};
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/durability")
}

fn golden_v1_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/durability_v1")
}

/// The deterministic base instance the fixture was recorded against:
/// three capacity-2 events, four capacity-2 users bidding on everything.
fn base_instance() -> Instance {
    let mut b = Instance::builder();
    let events: Vec<EventId> = (0..3)
        .map(|_| b.add_event(2, AttributeVector::empty()))
        .collect();
    for _ in 0..4 {
        b.add_user(2, AttributeVector::empty(), events.clone());
    }
    b.interaction_scores(vec![0.5; 4]);
    b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap()
}

/// The engine the fixture's recorder ran: 4 shards, seed 42.
fn fresh_engine() -> ShardedEngine {
    ShardedEngine::new(
        base_instance(),
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        Box::new(HashPartitioner),
        ShardedConfig {
            num_shards: 4,
            shard: EngineConfig {
                seed: 42,
                staleness_check_interval: 8,
                ..EngineConfig::default()
            },
            reconcile_interval: 4,
            reconcile_rounds: 2,
        },
    )
}

fn restore_engine(state: &EngineSnapshotState) -> Result<ShardedEngine, String> {
    ShardedEngine::restore_state(
        state,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        Box::new(HashPartitioner),
    )
}

/// The scripted mutating requests behind the fixture: every delta kind,
/// a batch, a rebalance, and one rejected delta. The checkpoint was
/// taken after request 8; requests 9..=14 live only in the WAL tail.
fn scripted_requests() -> Vec<EngineRequest> {
    vec![
        EngineRequest::Apply {
            delta: InstanceDelta::AddUser {
                capacity: 1,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(0)],
                interaction: 0.8,
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::AddEvent {
                capacity: 3,
                attrs: AttributeVector::from_time(10, 60),
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::UpdateCapacity {
                target: CapacityTarget::Event(EventId::new(0)),
                capacity: 1,
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::UpdateCapacity {
                target: CapacityTarget::User(UserId::new(1)),
                capacity: 1,
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::UpdateBids {
                user: UserId::new(2),
                bids: vec![EventId::new(1), EventId::new(3)],
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::UpdateInteractionScore {
                user: UserId::new(0),
                score: 0.9,
            },
        },
        EngineRequest::ApplyBatch {
            deltas: vec![
                InstanceDelta::AddUser {
                    capacity: 2,
                    attrs: AttributeVector::empty(),
                    bids: vec![EventId::new(1), EventId::new(3)],
                    interaction: 0.6,
                },
                InstanceDelta::UpdateInteractionScore {
                    user: UserId::new(1),
                    score: 0.7,
                },
            ],
        },
        EngineRequest::Rebalance,
        // --- checkpoint taken here (wal_seq 8) ---
        EngineRequest::Apply {
            delta: InstanceDelta::RemoveUser {
                user: UserId::new(3),
            },
        },
        // Rejected: the user does not exist. Rejections are logged and
        // replayed too.
        EngineRequest::Apply {
            delta: InstanceDelta::UpdateInteractionScore {
                user: UserId::new(99),
                score: 0.5,
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::AddEvent {
                capacity: 2,
                attrs: AttributeVector::empty(),
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::AddUser {
                capacity: 2,
                attrs: AttributeVector::empty(),
                bids: vec![EventId::new(2), EventId::new(4)],
                interaction: 0.4,
            },
        },
        EngineRequest::Apply {
            delta: InstanceDelta::UpdateInteractionScore {
                user: UserId::new(2),
                score: 0.25,
            },
        },
        EngineRequest::Rebalance,
    ]
}

/// Index (1-based WAL sequence) of the last request the checkpoint covers.
const CHECKPOINT_AFTER: usize = 8;

/// Re-records the fixture directory from scratch.
fn record_fixture(dir: &Path) {
    if dir.exists() {
        std::fs::remove_dir_all(dir).unwrap();
    }
    std::fs::create_dir_all(dir).unwrap();
    let mut engine = fresh_engine();
    let mut controller = DurabilityController::create(dir, DurabilityPolicy::Always).unwrap();
    // Small segments so the fixture pins rotation and compaction too.
    controller.set_segment_max_bytes(256);
    for (i, request) in scripted_requests().iter().enumerate() {
        controller
            .log(i as u64 + 1, engine.catalog().epoch(), request)
            .unwrap();
        let _ = engine.handle(request);
        if i + 1 == CHECKPOINT_AFTER {
            let state = engine.snapshot_state(controller.last_seq());
            controller.checkpoint(&state).unwrap();
        }
    }
}

/// Derives the version-1 fixture from the version-2 one: same WAL files,
/// checkpoint rewritten to the old schema (fields dropped, header and
/// checksum recomputed).
fn derive_v1_fixture(from: &Path, to: &Path) {
    if to.exists() {
        std::fs::remove_dir_all(to).unwrap();
    }
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name.to_string_lossy().ends_with(".log") {
            std::fs::copy(entry.path(), to.join(&name)).unwrap();
        }
    }
    let snapshots = list_snapshots(from).unwrap();
    assert_eq!(snapshots.len(), 1, "the fixture holds exactly one snapshot");
    let (_, snap_path) = &snapshots[0];
    let data = std::fs::read_to_string(snap_path).unwrap();
    let (_, payload) = data
        .split_once('\n')
        .expect("snapshot file has a header line");
    let state = igepa_engine::durability::snapshot::read_snapshot(snap_path).unwrap();
    let stats_json = serde_json::to_string(&state.coordinator_stats).unwrap();
    let v1 = payload
        .replacen("\"version\":2", "\"version\":1", 1)
        .replace(&format!("\"probe_counter\":{},", state.probe_counter), "")
        .replace(&format!("\"coordinator_stats\":{stats_json},"), "");
    assert!(v1.len() < payload.len(), "fields were actually dropped");
    let rewritten = format!(
        "IGEPA-SNAP 1 {} {:016x}\n{v1}",
        v1.len(),
        fnv1a64(v1.as_bytes())
    );
    let file_name = snap_path.file_name().unwrap();
    std::fs::write(to.join(file_name), rewritten).unwrap();
}

/// Copies a fixture into a scratch directory so the checked-in tree is
/// never written to, whatever recovery does.
fn staged_copy(fixture: &Path, label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("igepa-golden-{label}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(fixture).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    dir
}

/// The oracle: a fresh engine that executed the whole script without
/// ever crashing or checkpointing.
fn oracle() -> ShardedEngine {
    let mut engine = fresh_engine();
    for request in &scripted_requests() {
        let _ = engine.handle(request);
    }
    engine
}

fn assert_matches_oracle(recovered: &ShardedEngine) {
    let expected = oracle();
    assert_eq!(
        recovered.merged_arrangement().pairs().collect::<Vec<_>>(),
        expected.merged_arrangement().pairs().collect::<Vec<_>>(),
        "merged arrangement diverged from the uninterrupted oracle"
    );
    let (utility, expect) = (recovered.merged_utility(), expected.merged_utility());
    assert_eq!(utility.total.to_bits(), expect.total.to_bits());
    assert_eq!(
        utility.interest_sum.to_bits(),
        expect.interest_sum.to_bits()
    );
    assert_eq!(
        utility.interaction_sum.to_bits(),
        expect.interaction_sum.to_bits()
    );
    assert_eq!(recovered.catalog().epoch(), expected.catalog().epoch());
}

#[test]
fn golden_durability_dir_recovers_bit_identically() {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        record_fixture(&golden_dir());
        derive_v1_fixture(&golden_dir(), &golden_v1_dir());
    }
    let staged = staged_copy(&golden_dir(), "v2");
    let recovered = recover(&staged, fresh_engine, restore_engine)
        .expect("the checked-in durability directory must keep recovering");
    assert_eq!(recovered.report.snapshot_seq, Some(CHECKPOINT_AFTER as u64));
    assert_eq!(recovered.report.skipped_snapshots, 0);
    assert_eq!(
        recovered.report.replayed,
        scripted_requests().len() - CHECKPOINT_AFTER,
        "the WAL tail past the checkpoint replays"
    );
    assert_eq!(recovered.report.truncated_records, 0);
    assert_eq!(recovered.next_seq, scripted_requests().len() as u64 + 1);
    assert_matches_oracle(&recovered.engine);
    let _ = std::fs::remove_dir_all(&staged);
}

#[test]
fn version_1_snapshot_fixture_migrates_and_recovers() {
    // (Regeneration happens in the v2 test; this one only reads.)
    let staged = staged_copy(&golden_v1_dir(), "v1");
    let recovered = recover(&staged, fresh_engine, restore_engine)
        .expect("the version-1 snapshot must migrate and recover");
    assert_eq!(recovered.report.snapshot_seq, Some(CHECKPOINT_AFTER as u64));
    assert_matches_oracle(&recovered.engine);
    let _ = std::fs::remove_dir_all(&staged);
}
