//! Crash-injection tests for the durability subsystem.
//!
//! Each case drives a durable 4-shard engine over a randomized request
//! trace (applies, batches, rebalances, and live `Reshard` migrations)
//! — logging every mutating request through the
//! [`DurabilityController`] before executing it, exactly as the durable
//! server does — and then "crashes" it at a randomized kill point:
//! cleanly between requests, mid-WAL-append (the frame tears on disk),
//! or mid-snapshot (a partial checkpoint file is left behind). The
//! migration transaction seam gets dedicated kill points on either side
//! of the owner rewrite. Recovery from the surviving directory must
//! reproduce — bit for bit — the merged arrangement and utility
//! breakdown of an engine that executed the surviving request prefix
//! without ever crashing.

use igepa_algos::GreedyArrangement;
use igepa_core::{
    AttributeVector, CapacityTarget, ConstantInterest, EventId, HashPartitioner, Instance,
    InstanceDelta, NeverConflict, UserId,
};
use igepa_engine::{
    recover, DurabilityController, DurabilityPolicy, EngineConfig, EngineSnapshotState, Recovered,
    ShardedConfig, ShardedEngine,
};
use igepa_engine::{EngineRequest, RecoveryReport};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// Unique scratch directory per case (integration tests cannot reach the
/// crate-private helper the unit tests share).
fn unique_dir(label: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "igepa-crash-recovery-{label}-{}-{n}",
        std::process::id()
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A request described by raw numbers; resolved against the engine's
/// evolving population right before it is logged, so it is always
/// well-formed (modulo the deliberately out-of-range rejection probes).
#[derive(Debug, Clone)]
struct RawRequest {
    op: u8,
    kind: u8,
    a: usize,
    b: usize,
    score: f64,
}

fn raw_request_strategy() -> impl Strategy<Value = RawRequest> {
    (0u8..11, 0u8..6, 0usize..64, 0usize..64, 0.0f64..=1.0).prop_map(|(op, kind, a, b, score)| {
        RawRequest {
            op,
            kind,
            a,
            b,
            score,
        }
    })
}

/// Resolves the delta payload against current instance dimensions.
fn resolve(raw: &RawRequest, instance: &Instance) -> InstanceDelta {
    let num_events = instance.num_events();
    let num_users = instance.num_users();
    match raw.kind {
        0 => InstanceDelta::AddUser {
            capacity: 1 + raw.a % 3,
            attrs: AttributeVector::empty(),
            bids: if num_events == 0 {
                Vec::new()
            } else {
                vec![
                    EventId::new(raw.a % num_events),
                    EventId::new(raw.b % num_events),
                ]
            },
            interaction: raw.score,
        },
        1 if num_users > 1 => InstanceDelta::RemoveUser {
            user: UserId::new(raw.a % num_users),
        },
        2 => InstanceDelta::AddEvent {
            capacity: 1 + raw.b % 4,
            attrs: AttributeVector::empty(),
        },
        3 if num_events > 0 && raw.b.is_multiple_of(2) => InstanceDelta::UpdateCapacity {
            target: CapacityTarget::Event(EventId::new(raw.a % num_events)),
            capacity: raw.b % 5,
        },
        3 if num_users > 0 => InstanceDelta::UpdateCapacity {
            target: CapacityTarget::User(UserId::new(raw.a % num_users)),
            capacity: raw.b % 4,
        },
        4 if num_users > 0 && num_events > 0 => InstanceDelta::UpdateBids {
            user: UserId::new(raw.a % num_users),
            bids: vec![EventId::new(raw.b % num_events)],
        },
        5 if num_users > 0 => InstanceDelta::UpdateInteractionScore {
            user: UserId::new(raw.a % num_users),
            score: raw.score,
        },
        // Population too small for the drawn kind: fall back to growth.
        _ => InstanceDelta::AddEvent {
            capacity: 1 + raw.b % 4,
            attrs: AttributeVector::empty(),
        },
    }
}

/// Maps a raw draw onto a protocol request: mostly single applies, with
/// batches, explicit rebalances, and a deliberately out-of-range delta
/// that the engine rejects (rejections are logged and replayed too — the
/// WAL records admitted requests, not successful ones).
fn request_for(raw: &RawRequest, engine: &ShardedEngine) -> EngineRequest {
    match raw.op {
        10 => EngineRequest::Reshard {
            num_shards: 2 + raw.a % 5,
        },
        9 => EngineRequest::Rebalance,
        8 => {
            let first = resolve(raw, engine.instance());
            let second = resolve(
                &RawRequest {
                    kind: 2,
                    ..raw.clone()
                },
                engine.instance(),
            );
            EngineRequest::ApplyBatch {
                deltas: vec![first, second],
            }
        }
        7 if raw.b.is_multiple_of(2) => EngineRequest::Apply {
            delta: InstanceDelta::UpdateInteractionScore {
                user: UserId::new(9999),
                score: raw.score,
            },
        },
        _ => EngineRequest::Apply {
            delta: resolve(raw, engine.instance()),
        },
    }
}

fn seeded_instance(num_events: usize, num_users: usize) -> Instance {
    let mut b = Instance::builder();
    let events: Vec<EventId> = (0..num_events)
        .map(|i| b.add_event(1 + i % 3, AttributeVector::empty()))
        .collect();
    for u in 0..num_users {
        let bids: Vec<EventId> = events
            .iter()
            .copied()
            .filter(|v| (v.index() + u) % 2 == 0)
            .collect();
        b.add_user(1 + u % 3, AttributeVector::empty(), bids);
    }
    b.interaction_scores((0..num_users).map(|u| (u as f64 * 0.13) % 1.0).collect());
    b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap()
}

/// The engine as originally started: 4 shards over the seeded instance.
/// `recover` rebuilds it through this exact constructor when no snapshot
/// survives, and the oracle replays against it.
fn fresh_engine(seed: u64) -> ShardedEngine {
    ShardedEngine::new(
        seeded_instance(4, 6),
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        Box::new(HashPartitioner),
        ShardedConfig {
            num_shards: 4,
            shard: EngineConfig {
                seed,
                staleness_check_interval: 8,
                ..EngineConfig::default()
            },
            reconcile_interval: 4,
            reconcile_rounds: 2,
        },
    )
}

fn restore_engine(state: &EngineSnapshotState) -> Result<ShardedEngine, String> {
    ShardedEngine::restore_state(
        state,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        Box::new(HashPartitioner),
    )
}

/// How the run dies at the kill point.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Crash {
    /// Stop between requests (the kill arrives while the server is idle).
    Clean,
    /// The WAL append of the kill-point request tears mid-frame; the
    /// request is refused and never executes.
    TornWal,
    /// A checkpoint right after the kill-point request tears mid-file,
    /// leaving a partial snapshot recovery must skip.
    TornSnapshot,
}

/// Drives a durable engine over `raws` — log, execute, periodically
/// checkpoint — and crashes per `crash` at request index `kill_at`
/// (indices past the trace mean the run completes). Returns the request
/// prefix whose effects must survive.
fn durable_run(
    dir: &Path,
    seed: u64,
    raws: &[RawRequest],
    checkpoint_every: usize,
    kill_at: usize,
    crash: Crash,
) -> Vec<EngineRequest> {
    let mut engine = fresh_engine(seed);
    let mut controller = DurabilityController::create(dir, DurabilityPolicy::Always).unwrap();
    // Small segments so traces span several files and compaction runs.
    controller.set_segment_max_bytes(512);
    let mut executed: Vec<EngineRequest> = Vec::new();
    for (i, raw) in raws.iter().enumerate() {
        let request = request_for(raw, &engine);
        if i == kill_at {
            match crash {
                Crash::Clean => return executed,
                Crash::TornWal => {
                    controller.set_fail_wal_after_bytes(Some(6));
                    let torn = controller.log(i as u64 + 1, engine.catalog().epoch(), &request);
                    assert!(torn.is_err(), "injected wal failure must surface");
                    return executed;
                }
                Crash::TornSnapshot => {
                    controller
                        .log(i as u64 + 1, engine.catalog().epoch(), &request)
                        .unwrap();
                    let _ = engine.handle(&request);
                    executed.push(request);
                    controller.set_fail_snapshot_after_bytes(Some(48));
                    let state = engine.snapshot_state(controller.last_seq());
                    assert!(
                        controller.checkpoint(&state).is_err(),
                        "injected snapshot failure must surface"
                    );
                    return executed;
                }
            }
        }
        controller
            .log(i as u64 + 1, engine.catalog().epoch(), &request)
            .unwrap();
        let _ = engine.handle(&request);
        executed.push(request);
        if checkpoint_every > 0 && (i + 1) % checkpoint_every == 0 {
            let state = engine.snapshot_state(controller.last_seq());
            controller.checkpoint(&state).unwrap();
        }
    }
    executed
}

/// Recovers from `dir` and asserts the result is bit-identical to an
/// uninterrupted engine fed the surviving prefix.
fn assert_recovery_exact(dir: &Path, seed: u64, executed: &[EngineRequest]) -> RecoveryReport {
    let recovered = recover(dir, || fresh_engine(seed), restore_engine).unwrap();
    assert_eq!(
        recovered.next_seq,
        executed.len() as u64 + 1,
        "every logged request must survive, and nothing more"
    );
    let mut oracle = fresh_engine(seed);
    for request in executed {
        let _ = oracle.handle(request);
    }
    assert_engines_identical(&recovered.engine, &oracle);
    recovered.report
}

fn assert_engines_identical(recovered: &ShardedEngine, oracle: &ShardedEngine) {
    let (pairs, expected_pairs) = (
        recovered.merged_arrangement().pairs().collect::<Vec<_>>(),
        oracle.merged_arrangement().pairs().collect::<Vec<_>>(),
    );
    assert_eq!(pairs, expected_pairs, "merged arrangement diverged");
    let (utility, expected) = (recovered.merged_utility(), oracle.merged_utility());
    assert_eq!(utility.total.to_bits(), expected.total.to_bits());
    assert_eq!(
        utility.interest_sum.to_bits(),
        expected.interest_sum.to_bits()
    );
    assert_eq!(
        utility.interaction_sum.to_bits(),
        expected.interaction_sum.to_bits()
    );
    assert_eq!(recovered.catalog().epoch(), oracle.catalog().epoch());
    assert!(recovered
        .merged_arrangement()
        .is_feasible(recovered.instance()));
}

/// A fixed smoke trace for the deterministic cases.
fn smoke_trace(len: usize) -> Vec<RawRequest> {
    (0..len)
        .map(|i| RawRequest {
            op: (i % 11) as u8,
            kind: (i % 6) as u8,
            a: i * 7 % 64,
            b: i * 13 % 64,
            score: (i as f64 * 0.31) % 1.0,
        })
        .collect()
}

#[test]
fn clean_kill_between_requests_recovers_bit_for_bit() {
    let dir = unique_dir("clean");
    let executed = durable_run(&dir, 11, &smoke_trace(24), 5, 17, Crash::Clean);
    assert_eq!(executed.len(), 17);
    let report = assert_recovery_exact(&dir, 11, &executed);
    // Checkpoints at 5/10/15 ran; recovery starts from the one at 15.
    assert_eq!(report.snapshot_seq, Some(15));
    assert_eq!(report.skipped_snapshots, 0);
    assert_eq!(report.replayed, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_append_is_truncated_and_the_request_refused() {
    let dir = unique_dir("torn-wal");
    let executed = durable_run(&dir, 7, &smoke_trace(24), 5, 13, Crash::TornWal);
    assert_eq!(executed.len(), 13, "the torn request must not execute");
    let report = assert_recovery_exact(&dir, 7, &executed);
    assert_eq!(report.truncated_records, 1, "one torn frame discarded");
    assert!(report.truncated_bytes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_snapshot_is_skipped_for_the_previous_valid_checkpoint() {
    let dir = unique_dir("torn-snap");
    let executed = durable_run(&dir, 3, &smoke_trace(24), 4, 10, Crash::TornSnapshot);
    assert_eq!(executed.len(), 11);
    let report = assert_recovery_exact(&dir, 3, &executed);
    assert_eq!(
        report.skipped_snapshots, 1,
        "the partial snapshot is skipped"
    );
    // The previous checkpoint (after request 8) takes over; the three
    // requests it does not cover replay from the WAL.
    assert_eq!(report.snapshot_seq, Some(8));
    assert_eq!(report.replayed, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Where the run dies inside a migration's transaction seam. The seam
/// is exactly the durable server's: WAL-log the `Reshard` record at
/// sequence S, cut a pre-migration checkpoint at S-1, rewrite the owner
/// table (execute the migration), cut a post-migration checkpoint at S.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ReshardKill {
    /// The migration's WAL record tears mid-frame: the request is
    /// refused; recovery must restore the pre-migration world.
    TornMigrationRecord,
    /// The pre-migration checkpoint tears mid-file; the WAL record
    /// survives, so recovery must still re-perform the migration.
    TornPreCheckpoint,
    /// Killed after the pre-migration checkpoint, before the owner
    /// rewrite: recovery replays the record and re-migrates.
    BeforeOwnerRewrite,
    /// Killed after the owner rewrite and the post-migration
    /// checkpoint: recovery restores the new shape directly.
    AfterOwnerRewrite,
}

/// Drives a 12-request prefix, then performs the migration seam and
/// crashes at `kill`. Returns the prefix recovery must reproduce (the
/// oracle replays it uninterrupted, re-performing any surviving
/// migration record).
fn durable_reshard_run(dir: &Path, seed: u64, kill: ReshardKill) -> Vec<EngineRequest> {
    let mut engine = fresh_engine(seed);
    let mut controller = DurabilityController::create(dir, DurabilityPolicy::Always).unwrap();
    controller.set_segment_max_bytes(512);
    let mut executed: Vec<EngineRequest> = Vec::new();
    for (i, raw) in smoke_trace(12).iter().enumerate() {
        let request = request_for(raw, &engine);
        controller
            .log(i as u64 + 1, engine.catalog().epoch(), &request)
            .unwrap();
        let _ = engine.handle(&request);
        executed.push(request);
        if i == 7 {
            // Mid-prefix checkpoint: requests 9..=12 stay in the WAL
            // tail, so the seam's pre-migration cut at S-1 = 12 lands
            // on a fresh sequence. (The live server skips the pre-cut
            // when S-1 is already covered: snapshots rewrite in place
            // under their coverage sequence, and a torn rewrite of an
            // existing valid file would destroy it.)
            let state = engine.snapshot_state(controller.last_seq());
            controller.checkpoint(&state).unwrap();
        }
    }

    let request = EngineRequest::Reshard { num_shards: 6 };
    if kill == ReshardKill::TornMigrationRecord {
        controller.set_fail_wal_after_bytes(Some(6));
        let torn = controller.log(13, engine.catalog().epoch(), &request);
        assert!(torn.is_err(), "injected wal failure must surface");
        return executed;
    }
    let seq = controller
        .log(13, engine.catalog().epoch(), &request)
        .unwrap();
    // The record is on disk: from here, the migration WILL happen —
    // either live or by replay. Every remaining kill point includes it
    // in the prefix recovery must reproduce.
    executed.push(request.clone());
    if kill == ReshardKill::TornPreCheckpoint {
        controller.set_fail_snapshot_after_bytes(Some(48));
        let state = engine.snapshot_state(seq - 1);
        assert!(
            controller.checkpoint(&state).is_err(),
            "injected snapshot failure must surface"
        );
        return executed;
    }
    let state = engine.snapshot_state(seq - 1);
    controller.checkpoint(&state).unwrap();
    if kill == ReshardKill::BeforeOwnerRewrite {
        return executed;
    }
    let _ = engine.handle(&request);
    let state = engine.snapshot_state(seq);
    controller.checkpoint(&state).unwrap();
    executed
}

#[test]
fn kill_points_inside_the_migration_seam_recover_bit_exact() {
    for (label, kill) in [
        ("torn-record", ReshardKill::TornMigrationRecord),
        ("torn-pre-ckpt", ReshardKill::TornPreCheckpoint),
        ("pre-rewrite", ReshardKill::BeforeOwnerRewrite),
        ("post-rewrite", ReshardKill::AfterOwnerRewrite),
    ] {
        let dir = unique_dir(&format!("reshard-{label}"));
        let executed = durable_reshard_run(&dir, 29, kill);
        let report = assert_recovery_exact(&dir, 29, &executed);
        let recovered = recover(&dir, || fresh_engine(29), restore_engine)
            .unwrap()
            .engine;
        let mut oracle = fresh_engine(29);
        for request in &executed {
            let _ = oracle.handle(request);
        }
        assert_eq!(
            recovered.num_shards(),
            oracle.num_shards(),
            "{label}: recovered shard count must match the oracle"
        );
        match kill {
            ReshardKill::TornMigrationRecord => {
                assert_eq!(executed.len(), 12, "the torn record must not execute");
                assert_ne!(recovered.num_shards(), 6, "{label}: old shape restored");
                assert_eq!(report.truncated_records, 1);
                assert_eq!(report.snapshot_seq, Some(8), "mid-prefix checkpoint");
                assert_eq!(report.replayed, 4, "requests 9..=12 replay");
            }
            ReshardKill::TornPreCheckpoint => {
                assert_eq!(recovered.num_shards(), 6, "{label}: record replayed");
                assert_eq!(report.skipped_snapshots, 1, "partial checkpoint skipped");
                // Falls back to the mid-prefix checkpoint (seq 8) and
                // replays the tail including the migration record.
                assert_eq!(report.snapshot_seq, Some(8));
                assert_eq!(report.replayed, 5);
            }
            ReshardKill::BeforeOwnerRewrite => {
                assert_eq!(recovered.num_shards(), 6, "{label}: record replayed");
                assert_eq!(report.snapshot_seq, Some(12), "pre-migration cut at S-1");
                assert_eq!(report.replayed, 1, "exactly the migration record");
            }
            ReshardKill::AfterOwnerRewrite => {
                assert_eq!(recovered.num_shards(), 6, "{label}: new shape restored");
                assert_eq!(report.snapshot_seq, Some(13), "post-migration cut at S");
                assert_eq!(report.replayed, 0, "nothing left to replay");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovered_engine_keeps_serving_identically_to_the_oracle() {
    let dir = unique_dir("resume");
    let trace = smoke_trace(30);
    let executed = durable_run(&dir, 19, &trace[..20], 6, 14, Crash::Clean);
    let Recovered {
        engine: mut recovered,
        next_seq,
        last_checkpoint_seq,
        ..
    } = recover(&dir, || fresh_engine(19), restore_engine).unwrap();
    let mut oracle = fresh_engine(19);
    for request in &executed {
        let _ = oracle.handle(request);
    }
    // Resume the durability layer and keep serving: futures stay equal.
    let mut controller = DurabilityController::resume(
        &dir,
        DurabilityPolicy::Always,
        next_seq,
        last_checkpoint_seq,
    )
    .unwrap();
    for (i, raw) in trace[20..].iter().enumerate() {
        let request = request_for(raw, &recovered);
        controller
            .log(next_seq + i as u64, recovered.catalog().epoch(), &request)
            .unwrap();
        let _ = recovered.handle(&request);
        let _ = oracle.handle(&request);
    }
    assert_engines_identical(&recovered, &oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: kill a durable 4-shard run anywhere —
    /// cleanly, mid-WAL-append, or mid-snapshot — and recovery
    /// reproduces the uninterrupted execution of the surviving prefix
    /// bit for bit.
    #[test]
    fn recovery_is_bit_identical_at_any_kill_point(
        raws in proptest::collection::vec(raw_request_strategy(), 6..40),
        checkpoint_every in 0usize..6,
        kill in 0usize..48,
        mode in 0u8..3,
        seed in 0u64..50,
    ) {
        let crash = match mode {
            0 => Crash::Clean,
            1 => Crash::TornWal,
            _ => Crash::TornSnapshot,
        };
        let kill_at = kill % (raws.len() + 1);
        let dir = unique_dir("prop");
        let executed = durable_run(&dir, seed, &raws, checkpoint_every, kill_at, crash);
        let recovered = recover(&dir, || fresh_engine(seed), restore_engine).unwrap();
        prop_assert_eq!(recovered.next_seq, executed.len() as u64 + 1);
        let mut oracle = fresh_engine(seed);
        for request in &executed {
            let _ = oracle.handle(request);
        }
        let pairs = recovered.engine.merged_arrangement().pairs().collect::<Vec<_>>();
        let expected_pairs = oracle.merged_arrangement().pairs().collect::<Vec<_>>();
        prop_assert_eq!(pairs, expected_pairs);
        let (utility, expected) = (recovered.engine.merged_utility(), oracle.merged_utility());
        prop_assert_eq!(utility.total.to_bits(), expected.total.to_bits());
        prop_assert_eq!(utility.interest_sum.to_bits(), expected.interest_sum.to_bits());
        prop_assert_eq!(utility.interaction_sum.to_bits(), expected.interaction_sum.to_bits());
        prop_assert_eq!(recovered.engine.catalog().epoch(), oracle.catalog().epoch());
        prop_assert!(recovered.engine.merged_arrangement().is_feasible(recovered.engine.instance()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
