//! Property tests for the sharded engine:
//!
//! * under arbitrary valid delta sequences and **any shard count**, the
//!   merged arrangement stays feasible for the full-capacity global
//!   instance (capacities, conflicts, bids — Definition 4) and the
//!   per-event quota invariant holds;
//! * a `ShardedEngine` with **one shard** reproduces the monolithic
//!   `Engine`'s protocol responses **bit for bit**, across applies,
//!   batches, queries and rebalances;
//! * reconciliation (periodic and explicit) never breaks feasibility and
//!   never loses pairs.

use igepa_algos::GreedyArrangement;
use igepa_core::{
    AttributeVector, CapacityTarget, ConstantInterest, EventId, HashPartitioner, Instance,
    InstanceDelta, NeverConflict, PairSetConflict, UserId,
};
use igepa_engine::{
    encode_response, Engine, EngineConfig, EngineQuery, EngineRequest, ShardedConfig, ShardedEngine,
};
use proptest::prelude::*;

/// A delta described by raw numbers; resolved against the engine's evolving
/// population at apply time so it is always valid.
#[derive(Debug, Clone)]
struct RawDelta {
    kind: u8,
    a: usize,
    b: usize,
    score: f64,
}

fn raw_delta_strategy() -> impl Strategy<Value = RawDelta> {
    (0u8..6, 0usize..64, 0usize..64, 0.0f64..=1.0).prop_map(|(kind, a, b, score)| RawDelta {
        kind,
        a,
        b,
        score,
    })
}

/// Event-churn-heavy sequences: announcements and capacity edits (the
/// broadcast kinds, which take the catalogue publish path) drawn with
/// ~4x the weight of user-side churn.
fn churn_heavy_strategy() -> impl Strategy<Value = RawDelta> {
    (0u8..10, 0usize..64, 0usize..64, 0.0f64..=1.0).prop_map(|(pick, a, b, score)| {
        // 0..6 map onto AddEvent (2) / UpdateCapacity (3, event-target
        // biased via even b); 6..10 onto the user-side kinds.
        let (kind, b) = match pick {
            0..=2 => (2, b),
            3..=5 => (3, b & !1),
            6 => (0, b),
            7 => (4, b),
            8 => (5, b),
            _ => (1, b),
        };
        RawDelta { kind, a, b, score }
    })
}

/// Resolves a raw delta against current instance dimensions.
fn resolve(raw: &RawDelta, instance: &Instance) -> InstanceDelta {
    let num_events = instance.num_events();
    let num_users = instance.num_users();
    match raw.kind {
        0 => InstanceDelta::AddUser {
            capacity: 1 + raw.a % 3,
            attrs: AttributeVector::empty(),
            bids: if num_events == 0 {
                Vec::new()
            } else {
                vec![
                    EventId::new(raw.a % num_events),
                    EventId::new(raw.b % num_events),
                ]
            },
            interaction: raw.score,
        },
        1 if num_users > 0 => InstanceDelta::RemoveUser {
            user: UserId::new(raw.a % num_users),
        },
        2 => InstanceDelta::AddEvent {
            capacity: 1 + raw.b % 4,
            attrs: AttributeVector::empty(),
        },
        3 if num_events > 0 && raw.b.is_multiple_of(2) => InstanceDelta::UpdateCapacity {
            target: CapacityTarget::Event(EventId::new(raw.a % num_events)),
            capacity: raw.b % 5,
        },
        3 | 4 if num_users > 0 => {
            if raw.kind == 3 {
                InstanceDelta::UpdateCapacity {
                    target: CapacityTarget::User(UserId::new(raw.a % num_users)),
                    capacity: raw.b % 4,
                }
            } else {
                InstanceDelta::UpdateBids {
                    user: UserId::new(raw.a % num_users),
                    bids: if num_events == 0 {
                        Vec::new()
                    } else {
                        vec![EventId::new(raw.b % num_events)]
                    },
                }
            }
        }
        5 if num_users > 0 => InstanceDelta::UpdateInteractionScore {
            user: UserId::new(raw.a % num_users),
            score: raw.score,
        },
        // Population too small for the drawn kind: fall back to growth.
        _ => InstanceDelta::AddEvent {
            capacity: 1 + raw.b % 4,
            attrs: AttributeVector::empty(),
        },
    }
}

fn seeded_instance(num_events: usize, num_users: usize, conflicts: bool) -> Instance {
    let mut b = Instance::builder();
    let events: Vec<EventId> = (0..num_events)
        .map(|i| b.add_event(1 + i % 3, AttributeVector::empty()))
        .collect();
    for u in 0..num_users {
        let bids: Vec<EventId> = events
            .iter()
            .copied()
            .filter(|v| (v.index() + u) % 2 == 0)
            .collect();
        b.add_user(1 + u % 3, AttributeVector::empty(), bids);
    }
    b.interaction_scores((0..num_users).map(|u| (u as f64 * 0.13) % 1.0).collect());
    if conflicts && num_events >= 2 {
        let mut sigma = PairSetConflict::new();
        sigma.add(EventId::new(0), EventId::new(1));
        b.build(&sigma, &ConstantInterest(0.5)).unwrap()
    } else {
        b.build(&NeverConflict, &ConstantInterest(0.5)).unwrap()
    }
}

fn sharded_over(instance: Instance, seed: u64, shards: usize, interval: u64) -> ShardedEngine {
    ShardedEngine::new(
        instance,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        Box::new(HashPartitioner),
        ShardedConfig {
            num_shards: shards,
            shard: EngineConfig {
                seed,
                staleness_check_interval: 8,
                ..EngineConfig::default()
            },
            reconcile_interval: interval,
            reconcile_rounds: 2,
        },
    )
}

fn monolithic_over(instance: Instance, seed: u64) -> Engine {
    Engine::new(
        instance,
        Box::new(NeverConflict),
        Box::new(ConstantInterest(0.5)),
        Box::new(GreedyArrangement),
        EngineConfig {
            seed,
            staleness_check_interval: 8,
            ..EngineConfig::default()
        },
    )
}

/// Quota invariant: per event, shard quotas sum to the mirror capacity.
fn assert_quota_invariant(engine: &ShardedEngine) {
    for event in engine.instance().events() {
        let total: usize = (0..engine.num_shards())
            .map(|k| engine.shard(k).quota_of(event.id))
            .sum();
        assert_eq!(
            total, event.capacity,
            "quota invariant broken on {}",
            event.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merged_arrangement_stays_feasible_for_any_shard_count(
        num_events in 1usize..5,
        num_users in 1usize..6,
        with_conflicts in any::<bool>(),
        shards in 1usize..5,
        raws in proptest::collection::vec(raw_delta_strategy(), 1..40),
        seed in 0u64..50,
    ) {
        let instance = seeded_instance(num_events, num_users, with_conflicts);
        // A short reconcile interval so the exchange protocol runs often.
        let mut engine = sharded_over(instance, seed, shards, 4);
        prop_assert!(engine.merged_arrangement().is_feasible(engine.instance()));
        for raw in &raws {
            let delta = resolve(raw, engine.instance());
            let outcome = engine.apply(&delta);
            prop_assert!(outcome.is_ok(), "resolved delta rejected: {:?}", outcome.err());
            // The serving invariant, merged across shards, after every
            // single delta: bids, capacities, conflicts all hold on the
            // full-capacity global instance.
            let merged = engine.merged_arrangement();
            prop_assert!(
                merged.is_feasible(engine.instance()),
                "infeasible after {:?}: {:?}",
                delta.kind(),
                merged.violations(engine.instance())
            );
            assert_quota_invariant(&engine);
        }
        // An explicit full rebalance keeps everything feasible and never
        // drops served pairs.
        let before = engine.num_pairs();
        engine.rebalance();
        prop_assert!(engine.num_pairs() >= before);
        prop_assert!(engine.merged_arrangement().is_feasible(engine.instance()));
        assert_quota_invariant(&engine);
    }

    #[test]
    fn one_shard_reproduces_monolithic_responses_bit_for_bit(
        num_events in 1usize..4,
        num_users in 1usize..4,
        raws in proptest::collection::vec(raw_delta_strategy(), 1..30),
        batch_every in 2usize..5,
        seed in 0u64..50,
    ) {
        let instance = seeded_instance(num_events, num_users, true);
        let mut mono = monolithic_over(instance.clone(), seed);
        let mut sharded = sharded_over(instance, seed, 1, 4);

        // Interleave applies, batches, every query kind and rebalances,
        // resolving raw deltas against the monolithic engine's state.
        let mut pending_batch: Vec<InstanceDelta> = Vec::new();
        let mut requests: Vec<EngineRequest> = Vec::new();
        for (i, raw) in raws.iter().enumerate() {
            let delta = resolve(raw, mono.instance());
            if i % batch_every == 0 {
                pending_batch.push(delta);
                if pending_batch.len() == 2 {
                    requests.push(EngineRequest::ApplyBatch {
                        deltas: std::mem::take(&mut pending_batch),
                    });
                }
            } else {
                requests.push(EngineRequest::Apply { delta });
            }
            if i % 5 == 4 {
                // An always-invalid delta: both backends must reject it
                // identically AND report it identically in later stats.
                requests.push(EngineRequest::Apply {
                    delta: InstanceDelta::UpdateInteractionScore {
                        user: UserId::new(mono.instance().num_users() + 7),
                        score: 0.5,
                    },
                });
            }
            match i % 7 {
                1 => requests.push(EngineRequest::Query { query: EngineQuery::Utility }),
                2 => requests.push(EngineRequest::Query {
                    query: EngineQuery::AssignmentsOf { user: UserId::new(raw.a % 8) },
                }),
                3 => requests.push(EngineRequest::Query {
                    query: EngineQuery::EventLoad { event: EventId::new(raw.b % 8) },
                }),
                4 => requests.push(EngineRequest::Query { query: EngineQuery::Stats }),
                5 => requests.push(EngineRequest::Query { query: EngineQuery::ShardStats }),
                6 => requests.push(EngineRequest::Rebalance),
                _ => requests.push(EngineRequest::Query { query: EngineQuery::MergedSnapshot }),
            }
            // Process the interleaved stream immediately so the next raw
            // delta resolves against the evolved population.
            for request in requests.drain(..) {
                let mono_response = mono.handle(&request);
                let sharded_response = sharded.handle(&request);
                // Bit-for-bit: the serialized lines must be identical
                // (covers every f64 exactly as it will hit a replay log).
                prop_assert_eq!(
                    encode_response(&mono_response),
                    encode_response(&sharded_response),
                    "diverged on request {:?}",
                    request
                );
            }
        }
        prop_assert_eq!(mono.utility().to_bits(), sharded.utility().to_bits());
        prop_assert_eq!(mono.arrangement().len(), sharded.num_pairs());
    }

    /// The tentpole memory invariant under the workload it exists for:
    /// arbitrary churn-heavy delta sequences (announcement/capacity
    /// dominated) never split the shared conflict matrix — mirror,
    /// catalogue and every shard keep `Arc::ptr_eq` handles — while the
    /// catalogue's true capacities track the mirror, quotas keep summing
    /// to true capacity, and the merged arrangement stays feasible.
    #[test]
    fn churn_heavy_sequences_keep_one_shared_conflict_matrix(
        shards in 1usize..5,
        raws in proptest::collection::vec(churn_heavy_strategy(), 1..40),
        seed in 0u64..50,
    ) {
        use std::sync::Arc;
        let instance = seeded_instance(3, 5, true);
        let mut engine = sharded_over(instance, seed, shards, 4);
        for raw in &raws {
            let delta = resolve(raw, engine.instance());
            let outcome = engine.apply(&delta);
            prop_assert!(outcome.is_ok(), "resolved delta rejected: {:?}", outcome.err());
            let mirror = engine.instance().conflicts_handle();
            prop_assert!(
                Arc::ptr_eq(mirror, engine.catalog().snapshot().conflicts_handle()),
                "catalogue forked its matrix after {:?}", delta.kind()
            );
            for k in 0..engine.num_shards() {
                prop_assert!(
                    Arc::ptr_eq(mirror, engine.shard(k).instance().conflicts_handle()),
                    "shard {} forked its matrix after {:?}", k, delta.kind()
                );
            }
            for event in engine.instance().events() {
                prop_assert_eq!(engine.catalog().true_capacity(event.id), event.capacity);
            }
            assert_quota_invariant(&engine);
            prop_assert!(engine.merged_arrangement().is_feasible(engine.instance()));
        }
    }

    /// Heavy event churn through the catalogue publish path must not
    /// perturb the one-shard ≡ monolithic equivalence: applies and
    /// batches answer bit-for-bit identically.
    #[test]
    fn one_shard_stays_bit_for_bit_under_heavy_event_churn(
        raws in proptest::collection::vec(churn_heavy_strategy(), 1..40),
        batch_every in 2usize..4,
        seed in 0u64..50,
    ) {
        let instance = seeded_instance(2, 3, true);
        let mut mono = monolithic_over(instance.clone(), seed);
        let mut sharded = sharded_over(instance, seed, 1, 4);
        let mut pending: Vec<InstanceDelta> = Vec::new();
        for (i, raw) in raws.iter().enumerate() {
            let delta = resolve(raw, mono.instance());
            let request = if i % batch_every == 0 {
                pending.push(delta);
                if pending.len() < 2 {
                    continue;
                }
                EngineRequest::ApplyBatch { deltas: std::mem::take(&mut pending) }
            } else {
                EngineRequest::Apply { delta }
            };
            let mono_response = mono.handle(&request);
            let sharded_response = sharded.handle(&request);
            prop_assert_eq!(
                encode_response(&mono_response),
                encode_response(&sharded_response),
                "diverged on request {:?}",
                request
            );
        }
        prop_assert_eq!(mono.utility().to_bits(), sharded.utility().to_bits());
        prop_assert_eq!(mono.arrangement().len(), sharded.num_pairs());
    }

    /// The tracker pin of the O(1)-utility redesign: after *any* valid
    /// delta sequence, on both backends, the incrementally maintained
    /// utility breakdown (what `Utility` queries and apply outcomes now
    /// read in O(1)) equals a from-scratch exact recompute over the
    /// served arrangement — bit for bit, component by component. The
    /// reverse attendee index is cross-checked against a brute-force
    /// per-user scan at the same time.
    #[test]
    fn tracked_breakdown_equals_from_scratch_recompute_bit_for_bit(
        num_events in 1usize..5,
        num_users in 1usize..6,
        shards in 1usize..4,
        raws in proptest::collection::vec(raw_delta_strategy(), 1..40),
        seed in 0u64..50,
    ) {
        let instance = seeded_instance(num_events, num_users, true);
        let mut mono = monolithic_over(instance.clone(), seed);
        let mut sharded = sharded_over(instance, seed, shards, 4);
        for raw in &raws {
            let delta = resolve(raw, mono.instance());
            mono.apply(&delta).unwrap();
            sharded.apply(&delta).unwrap();

            // Monolithic backend.
            let tracked = mono.utility_breakdown();
            let fresh = mono.arrangement().utility(mono.instance());
            prop_assert_eq!(tracked.total.to_bits(), fresh.total.to_bits());
            prop_assert_eq!(tracked.interest_sum.to_bits(), fresh.interest_sum.to_bits());
            prop_assert_eq!(
                tracked.interaction_sum.to_bits(),
                fresh.interaction_sum.to_bits()
            );

            // Every shard of the sharded backend, plus its reverse index.
            for k in 0..sharded.num_shards() {
                let shard = sharded.shard(k);
                let tracked = shard.utility_breakdown();
                let fresh = shard.arrangement().utility(shard.instance());
                prop_assert_eq!(tracked.total.to_bits(), fresh.total.to_bits());
                prop_assert_eq!(
                    tracked.interest_sum.to_bits(),
                    fresh.interest_sum.to_bits()
                );
                prop_assert_eq!(
                    tracked.interaction_sum.to_bits(),
                    fresh.interaction_sum.to_bits()
                );

                let m = shard.arrangement();
                for v in 0..m.num_events() {
                    let v = EventId::new(v);
                    let scan: Vec<UserId> = (0..m.num_users())
                        .map(UserId::new)
                        .filter(|&u| m.contains(v, u))
                        .collect();
                    prop_assert_eq!(m.users_of(v), scan.as_slice());
                    prop_assert_eq!(m.load_of(v), m.users_of(v).len());
                }
            }
        }
    }

    #[test]
    fn stats_aggregate_matches_shard_totals(
        shards in 1usize..4,
        raws in proptest::collection::vec(raw_delta_strategy(), 1..20),
        seed in 0u64..20,
    ) {
        let instance = seeded_instance(3, 4, false);
        let mut engine = sharded_over(instance, seed, shards, 0);
        let mut applied = 0u64;
        for raw in &raws {
            let delta = resolve(raw, engine.instance());
            if engine.apply(&delta).is_ok() {
                applied += 1;
            }
        }
        let stats = engine.stats();
        // Broadcast deltas count once per shard; user-routed ones once.
        prop_assert!(stats.deltas_applied >= applied);
        prop_assert_eq!(stats.deltas_rejected, 0);
        let per_shard: u64 = (0..engine.num_shards())
            .map(|k| engine.shard(k).stats().deltas_applied)
            .sum();
        prop_assert_eq!(stats.deltas_applied, per_shard);
    }
}
