//! Property-based tests for the LP/ILP substrate: the simplex is checked
//! against feasibility, weak duality with brute-force candidate points, and
//! the approximate packing solver against the exact simplex.

use igepa_lp::{
    BlockPackingProblem, BlockPackingSolver, BranchBoundSolver, IntegerProgram, LinearProgram,
    PackingBlock, PackingColumn, SimplexSolver,
};
use proptest::prelude::*;

/// A random packing-style LP: non-negative coefficients, ≤ rows, box bounds.
#[derive(Debug, Clone)]
struct RandomPackingLp {
    objective: Vec<f64>,
    upper_bounds: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn packing_lp_strategy() -> impl Strategy<Value = RandomPackingLp> {
    (1usize..5, 1usize..4).prop_flat_map(|(num_vars, num_rows)| {
        let objective = proptest::collection::vec(0.0f64..3.0, num_vars);
        let upper_bounds = proptest::collection::vec(0.1f64..2.0, num_vars);
        let rows = proptest::collection::vec(
            (
                proptest::collection::vec(0.0f64..2.0, num_vars),
                0.5f64..5.0,
            ),
            num_rows,
        );
        (objective, upper_bounds, rows).prop_map(|(objective, upper_bounds, rows)| {
            RandomPackingLp {
                objective,
                upper_bounds,
                rows,
            }
        })
    })
}

fn build_lp(raw: &RandomPackingLp) -> LinearProgram {
    let mut lp = LinearProgram::new();
    let vars: Vec<usize> = raw
        .objective
        .iter()
        .zip(&raw.upper_bounds)
        .map(|(&c, &u)| lp.add_var(c, u))
        .collect();
    for (coeffs, rhs) in &raw.rows {
        lp.add_le_constraint(vars.iter().zip(coeffs).map(|(&v, &a)| (v, a)), *rhs)
            .unwrap();
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simplex solution of a packing LP is always feasible and at least
    /// as good as a grid of candidate feasible points (scaled bound vectors).
    #[test]
    fn simplex_is_feasible_and_dominates_candidates(raw in packing_lp_strategy()) {
        let lp = build_lp(&raw);
        let solution = SimplexSolver::default().solve(&lp).unwrap();
        prop_assert!(lp.is_feasible(&solution.values, 1e-6));

        // Candidate points: x = t·u for t on a grid, scaled back into the
        // feasible region if a row is violated.
        for step in 0..=4 {
            let t = step as f64 / 4.0;
            let mut candidate: Vec<f64> = raw.upper_bounds.iter().map(|&u| t * u).collect();
            // Scale down to satisfy all rows.
            let mut worst = 1.0f64;
            for (coeffs, rhs) in &raw.rows {
                let lhs: f64 = coeffs.iter().zip(&candidate).map(|(a, x)| a * x).sum();
                if lhs > *rhs && lhs > 0.0 {
                    worst = worst.min(*rhs / lhs);
                }
            }
            for x in candidate.iter_mut() {
                *x *= worst;
            }
            prop_assert!(lp.is_feasible(&candidate, 1e-6));
            let value = lp.objective_value(&candidate);
            prop_assert!(
                solution.objective + 1e-6 >= value,
                "simplex {} below candidate {}",
                solution.objective,
                value
            );
        }
    }

    /// Branch and bound never beats the LP relaxation and always returns an
    /// integral, feasible point dominated by the relaxation bound.
    #[test]
    fn branch_and_bound_respects_relaxation(raw in packing_lp_strategy()) {
        // Make the problem binary by clamping bounds to 1.
        let mut lp = build_lp(&raw);
        for v in 0..lp.num_vars() {
            lp.set_upper_bound(v, 1.0);
        }
        let relaxation = SimplexSolver::default().solve(&lp).unwrap();
        let ilp = BranchBoundSolver::default()
            .solve(&IntegerProgram::all_integer(lp.clone()))
            .unwrap();
        prop_assert!(lp.is_feasible(&ilp.values, 1e-6));
        for &v in &ilp.values {
            prop_assert!((v - v.round()).abs() < 1e-6);
        }
        prop_assert!(relaxation.objective + 1e-6 >= ilp.objective);
        prop_assert!(ilp.best_bound + 1e-6 >= ilp.objective);
    }

    /// The approximate block packing solver always returns a feasible
    /// solution whose value is sandwiched between 0 and the exact LP value.
    #[test]
    fn packing_solver_is_feasible_and_bounded_by_the_exact_lp(
        capacities in proptest::collection::vec(1.0f64..4.0, 1..4),
        profits in proptest::collection::vec(0.0f64..2.0, 2..8),
    ) {
        let num_rows = capacities.len();
        let mut problem = BlockPackingProblem::new(capacities.clone());
        // One block per pair of profits, columns touching alternating rows.
        let mut lp = LinearProgram::new();
        let mut block_vars: Vec<Vec<usize>> = Vec::new();
        for (b, chunk) in profits.chunks(2).enumerate() {
            let columns: Vec<PackingColumn> = chunk
                .iter()
                .enumerate()
                .map(|(c, &p)| PackingColumn {
                    profit: p,
                    usage: vec![((b + c) % num_rows, 1.0)],
                })
                .collect();
            let vars: Vec<usize> = columns.iter().map(|c| lp.add_var(c.profit, 1.0)).collect();
            lp.add_le_constraint(vars.iter().map(|&v| (v, 1.0)), 1.0).unwrap();
            block_vars.push(vars.clone());
            problem.add_block(PackingBlock { columns });
        }
        for (row, &cap) in capacities.iter().enumerate() {
            let mut coeffs = Vec::new();
            for (b, block) in problem.blocks.iter().enumerate() {
                for (c, col) in block.columns.iter().enumerate() {
                    if col.usage.iter().any(|&(r, _)| r == row) {
                        coeffs.push((block_vars[b][c], 1.0));
                    }
                }
            }
            lp.add_le_constraint(coeffs, cap).unwrap();
        }

        let exact = SimplexSolver::default().solve(&lp).unwrap();
        let approx = BlockPackingSolver::with_rounds(800).solve(&problem).unwrap();
        prop_assert!(problem.is_feasible(&approx, 1e-6));
        prop_assert!(approx.objective >= -1e-9);
        prop_assert!(approx.objective <= exact.objective + 1e-6);
    }
}

#[test]
fn simplex_handles_a_known_degenerate_transportation_lp() {
    // Fixed regression anchor outside proptest: a transportation-style LP
    // with equalities emulated by pairs of inequalities.
    let mut lp = LinearProgram::new();
    // Two sources (supply 3, 2), two sinks (demand 2, 3), costs as profits.
    let x11 = lp.add_var(4.0, f64::INFINITY);
    let x12 = lp.add_var(1.0, f64::INFINITY);
    let x21 = lp.add_var(2.0, f64::INFINITY);
    let x22 = lp.add_var(3.0, f64::INFINITY);
    lp.add_le_constraint([(x11, 1.0), (x12, 1.0)], 3.0).unwrap();
    lp.add_le_constraint([(x21, 1.0), (x22, 1.0)], 2.0).unwrap();
    lp.add_le_constraint([(x11, 1.0), (x21, 1.0)], 2.0).unwrap();
    lp.add_le_constraint([(x12, 1.0), (x22, 1.0)], 3.0).unwrap();
    let solution = SimplexSolver::default().solve(&lp).unwrap();
    // Optimal: x11 = 2, x22 = 2, x12 = 1 -> 4·2 + 1·1 + 3·2 = 15.
    assert!((solution.objective - 15.0).abs() < 1e-6);
    assert!(lp.is_feasible(&solution.values, 1e-6));
}
