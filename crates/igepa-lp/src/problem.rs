//! Linear-program model: variables with box bounds, `≤` constraints and a
//! maximisation objective.
//!
//! The model mirrors what the IGEPA benchmark LP (1)–(4) needs — maximise a
//! non-negative objective over box-bounded variables subject to `≤` rows —
//! but is general enough for arbitrary coefficients, so the solvers can be
//! exercised on textbook LPs in tests.

use crate::error::LpError;
use serde::{Deserialize, Serialize};

/// Index of a decision variable within a [`LinearProgram`].
pub type VarId = usize;

/// A single `Σ aᵢ·xᵢ ≤ rhs` constraint with sparse coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse `(variable, coefficient)` pairs; variables appear at most once.
    pub coefficients: Vec<(VarId, f64)>,
    /// Right-hand side of the `≤` constraint.
    pub rhs: f64,
}

/// A linear program `max c·x  s.t.  A·x ≤ b,  l ≤ x ≤ u` with `l = 0`.
///
/// Variables are created through [`LinearProgram::add_var`], which returns a
/// dense [`VarId`]; constraints reference those ids.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinearProgram {
    objective: Vec<f64>,
    upper_bounds: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with objective coefficient `objective` and bounds
    /// `0 ≤ x ≤ upper_bound` (`f64::INFINITY` for no upper bound).
    pub fn add_var(&mut self, objective: f64, upper_bound: f64) -> VarId {
        assert!(
            upper_bound >= 0.0,
            "upper bound must be non-negative, got {upper_bound}"
        );
        self.objective.push(objective);
        self.upper_bounds.push(upper_bound);
        self.objective.len() - 1
    }

    /// Adds the constraint `Σ coeff·x ≤ rhs`. Coefficients for the same
    /// variable are summed; zero coefficients are dropped.
    pub fn add_le_constraint(
        &mut self,
        coefficients: impl IntoIterator<Item = (VarId, f64)>,
        rhs: f64,
    ) -> Result<usize, LpError> {
        let mut merged: Vec<(VarId, f64)> = Vec::new();
        for (var, coeff) in coefficients {
            if var >= self.num_vars() {
                return Err(LpError::UnknownVariable {
                    variable: var,
                    num_variables: self.num_vars(),
                });
            }
            match merged.iter_mut().find(|(v, _)| *v == var) {
                Some((_, existing)) => *existing += coeff,
                None => merged.push((var, coeff)),
            }
        }
        merged.retain(|&(_, c)| c != 0.0);
        merged.sort_unstable_by_key(|&(v, _)| v);
        self.constraints.push(Constraint {
            coefficients: merged,
            rhs,
        });
        Ok(self.constraints.len() - 1)
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of `≤` constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficient of a variable.
    pub fn objective(&self, var: VarId) -> f64 {
        self.objective[var]
    }

    /// All objective coefficients in variable order.
    pub fn objective_vector(&self) -> &[f64] {
        &self.objective
    }

    /// Upper bound of a variable.
    pub fn upper_bound(&self, var: VarId) -> f64 {
        self.upper_bounds[var]
    }

    /// All upper bounds in variable order.
    pub fn upper_bounds(&self) -> &[f64] {
        &self.upper_bounds
    }

    /// Tightens the upper bound of a variable (used by branch & bound).
    ///
    /// Panics if the new bound is negative.
    pub fn set_upper_bound(&mut self, var: VarId, upper_bound: f64) {
        assert!(upper_bound >= 0.0, "upper bound must be non-negative");
        self.upper_bounds[var] = upper_bound;
    }

    /// The constraints in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks whether `x` satisfies every constraint and bound within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (j, &v) in x.iter().enumerate() {
            if v < -tol || v > self.upper_bounds[j] + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.coefficients.iter().map(|&(j, a)| a * x[j]).sum();
            if lhs > c.rhs + tol {
                return false;
            }
        }
        true
    }

    /// Maximum violation of any constraint or bound at `x` (0 if feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for (j, &v) in x.iter().enumerate() {
            worst = worst.max(-v).max(v - self.upper_bounds[j]);
        }
        for c in &self.constraints {
            let lhs: f64 = c.coefficients.iter().map(|&(j, a)| a * x[j]).sum();
            worst = worst.max(lhs - c.rhs);
        }
        worst.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_lp() -> LinearProgram {
        // max 3x + 2y s.t. x + y <= 4, x <= 3, y <= 10 (bounds), x,y >= 0.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(3.0, 3.0);
        let y = lp.add_var(2.0, 10.0);
        lp.add_le_constraint(vec![(x, 1.0), (y, 1.0)], 4.0).unwrap();
        lp
    }

    #[test]
    fn add_var_assigns_dense_ids() {
        let mut lp = LinearProgram::new();
        assert_eq!(lp.add_var(1.0, 1.0), 0);
        assert_eq!(lp.add_var(2.0, f64::INFINITY), 1);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.objective(1), 2.0);
        assert_eq!(lp.upper_bound(1), f64::INFINITY);
    }

    #[test]
    fn constraint_merges_duplicate_variables() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 1.0);
        let row = lp
            .add_le_constraint(vec![(x, 2.0), (x, 3.0), (x, -5.0)], 7.0)
            .unwrap();
        assert!(lp.constraints()[row].coefficients.is_empty());
        let row2 = lp.add_le_constraint(vec![(x, 2.0), (x, 3.0)], 7.0).unwrap();
        assert_eq!(lp.constraints()[row2].coefficients, vec![(x, 5.0)]);
    }

    #[test]
    fn unknown_variable_is_rejected() {
        let mut lp = LinearProgram::new();
        lp.add_var(1.0, 1.0);
        let err = lp.add_le_constraint(vec![(3, 1.0)], 1.0).unwrap_err();
        assert!(matches!(err, LpError::UnknownVariable { variable: 3, .. }));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_upper_bound_panics() {
        let mut lp = LinearProgram::new();
        lp.add_var(1.0, -1.0);
    }

    #[test]
    fn objective_value_and_feasibility() {
        let lp = toy_lp();
        let x = vec![3.0, 1.0];
        assert_eq!(lp.objective_value(&x), 11.0);
        assert!(lp.is_feasible(&x, 1e-9));
        assert!(!lp.is_feasible(&[3.0, 2.0], 1e-9)); // row violated
        assert!(!lp.is_feasible(&[4.0, 0.0], 1e-9)); // bound violated
        assert!(!lp.is_feasible(&[-0.1, 0.0], 1e-9)); // nonnegativity
        assert!(!lp.is_feasible(&[1.0], 1e-9)); // wrong dimension
    }

    #[test]
    fn max_violation_reports_worst_breach() {
        let lp = toy_lp();
        assert_eq!(lp.max_violation(&[3.0, 1.0]), 0.0);
        let v = lp.max_violation(&[3.0, 3.0]);
        assert!((v - 2.0).abs() < 1e-12); // row exceeded by 2
    }

    #[test]
    fn set_upper_bound_tightens() {
        let mut lp = toy_lp();
        lp.set_upper_bound(0, 1.0);
        assert_eq!(lp.upper_bound(0), 1.0);
        assert!(!lp.is_feasible(&[2.0, 0.0], 1e-9));
    }
}
