//! Structure-aware approximate solver for block packing LPs.
//!
//! The IGEPA benchmark LP (1)–(4) has a very particular shape:
//!
//! * the variables are grouped into **blocks** (one block per user, one
//!   variable per admissible event set) and each block carries a convexity
//!   constraint `Σ_S x_{u,S} ≤ 1`;
//! * on top of the blocks sit **global packing rows** (one per event,
//!   `Σ x ≤ c_v`) with non-negative coefficients;
//! * the objective is non-negative.
//!
//! An exact simplex over this LP needs a basis of size `|U| + |V|`, which is
//! prohibitive for the paper's larger sweeps (up to 10 000 users). The
//! [`BlockPackingSolver`] below instead runs projected dual subgradient
//! ascent with primal averaging:
//!
//! 1. maintain a price `y_i ≥ 0` for every global row;
//! 2. each round, every block plays its **best response** to the current
//!    prices — the single column maximising `profit − Σ_i y_i·a_i`, or
//!    nothing if every column is unprofitable (this respects the block's
//!    convexity constraint exactly);
//! 3. prices rise on overloaded rows and decay (towards zero) on slack rows
//!    with a diminishing step size;
//! 4. the reported solution is the **average** of the primal plays, scaled
//!    per-row so that every global constraint holds exactly.
//!
//! The average of best responses converges to an optimal LP solution as the
//! number of rounds grows (standard saddle-point/no-regret analysis); the
//! final scaling guarantees feasibility, so the output is always a valid
//! input for the randomised rounding of LP-packing. Accuracy against the
//! exact simplex is asserted in the integration tests.

use crate::error::LpError;
use crate::solution::SolveStatus;
use serde::{Deserialize, Serialize};

/// One column (candidate choice) inside a block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackingColumn {
    /// Objective contribution when the column is taken with value 1.
    pub profit: f64,
    /// Sparse usage of the global rows: `(row, coefficient)`, coefficients
    /// must be non-negative.
    pub usage: Vec<(usize, f64)>,
}

/// A block of columns sharing a convexity constraint `Σ x ≤ 1`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PackingBlock {
    /// The block's columns.
    pub columns: Vec<PackingColumn>,
}

/// A block-structured packing LP.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockPackingProblem {
    /// Capacities of the global rows (must be positive).
    pub capacities: Vec<f64>,
    /// The blocks.
    pub blocks: Vec<PackingBlock>,
}

impl BlockPackingProblem {
    /// Creates a problem with the given global row capacities.
    pub fn new(capacities: Vec<f64>) -> Self {
        BlockPackingProblem {
            capacities,
            blocks: Vec::new(),
        }
    }

    /// Adds a block and returns its index.
    pub fn add_block(&mut self, block: PackingBlock) -> usize {
        self.blocks.push(block);
        self.blocks.len() - 1
    }

    /// Total number of columns across blocks.
    pub fn num_columns(&self) -> usize {
        self.blocks.iter().map(|b| b.columns.len()).sum()
    }

    /// Number of global rows.
    pub fn num_rows(&self) -> usize {
        self.capacities.len()
    }

    /// Validates capacities and column usages.
    pub fn validate(&self) -> Result<(), LpError> {
        for (i, &c) in self.capacities.iter().enumerate() {
            if c <= 0.0 || !c.is_finite() {
                return Err(LpError::InvalidModel(format!(
                    "capacity of row {i} must be positive and finite, got {c}"
                )));
            }
        }
        for (b, block) in self.blocks.iter().enumerate() {
            for (c, col) in block.columns.iter().enumerate() {
                if col.profit < 0.0 || !col.profit.is_finite() {
                    return Err(LpError::InvalidModel(format!(
                        "profit of column {c} in block {b} must be non-negative"
                    )));
                }
                for &(row, coeff) in &col.usage {
                    if row >= self.capacities.len() {
                        return Err(LpError::InvalidModel(format!(
                            "column {c} in block {b} references unknown row {row}"
                        )));
                    }
                    if coeff < 0.0 || !coeff.is_finite() {
                        return Err(LpError::InvalidModel(format!(
                            "column {c} in block {b} has a negative coefficient on row {row}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Objective value of a fractional solution given per-block column values.
    pub fn objective_value(&self, x: &BlockSolution) -> f64 {
        self.blocks
            .iter()
            .zip(&x.values)
            .map(|(block, vals)| {
                block
                    .columns
                    .iter()
                    .zip(vals)
                    .map(|(col, &v)| col.profit * v)
                    .sum::<f64>()
            })
            .sum()
    }

    /// Row loads of a fractional solution.
    pub fn row_loads(&self, x: &BlockSolution) -> Vec<f64> {
        let mut loads = vec![0.0; self.capacities.len()];
        for (block, vals) in self.blocks.iter().zip(&x.values) {
            for (col, &v) in block.columns.iter().zip(vals) {
                if v > 0.0 {
                    for &(row, coeff) in &col.usage {
                        loads[row] += coeff * v;
                    }
                }
            }
        }
        loads
    }

    /// Whether `x` satisfies every block and row constraint within `tol`.
    pub fn is_feasible(&self, x: &BlockSolution, tol: f64) -> bool {
        if x.values.len() != self.blocks.len() {
            return false;
        }
        for (block, vals) in self.blocks.iter().zip(&x.values) {
            if vals.len() != block.columns.len() {
                return false;
            }
            let sum: f64 = vals.iter().sum();
            if sum > 1.0 + tol || vals.iter().any(|&v| v < -tol) {
                return false;
            }
        }
        self.row_loads(x)
            .iter()
            .zip(&self.capacities)
            .all(|(&load, &cap)| load <= cap + tol)
    }
}

/// Fractional solution of a [`BlockPackingProblem`]: one value per column,
/// grouped by block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockSolution {
    /// `values[b][c]` is the value of column `c` of block `b`.
    pub values: Vec<Vec<f64>>,
    /// Objective at `values`.
    pub objective: f64,
    /// Termination status (always [`SolveStatus::Approximate`] for this
    /// solver).
    pub status: SolveStatus,
    /// Number of subgradient rounds performed.
    pub iterations: usize,
}

/// Projected dual subgradient solver with primal averaging for
/// [`BlockPackingProblem`]s.
#[derive(Debug, Clone)]
pub struct BlockPackingSolver {
    /// Number of subgradient rounds.
    pub rounds: usize,
    /// Initial step size; the round-`t` step is `step / sqrt(t)`.
    pub step: f64,
}

impl Default for BlockPackingSolver {
    fn default() -> Self {
        BlockPackingSolver {
            rounds: 600,
            step: 1.0,
        }
    }
}

impl BlockPackingSolver {
    /// Creates a solver that runs the given number of rounds.
    pub fn with_rounds(rounds: usize) -> Self {
        BlockPackingSolver {
            rounds,
            ..Self::default()
        }
    }

    /// Solves the block packing LP approximately. The returned solution is
    /// always feasible.
    pub fn solve(&self, problem: &BlockPackingProblem) -> Result<BlockSolution, LpError> {
        self.solve_warm(problem, &[])
    }

    /// As [`BlockPackingSolver::solve`], but starts the dual ascent from
    /// the given row prices instead of zero (a **dual warm start**).
    /// Prices beyond the row count are ignored, missing ones default to
    /// zero and negative or non-finite entries are clamped to zero. With
    /// prices near the optimum duals the best responses are close to
    /// optimal from round one, so far fewer rounds reach the same
    /// quality; with empty prices this is exactly the cold solve.
    pub fn solve_warm(
        &self,
        problem: &BlockPackingProblem,
        initial_prices: &[f64],
    ) -> Result<BlockSolution, LpError> {
        problem.validate()?;
        let num_rows = problem.num_rows();
        let rounds = self.rounds.max(1);

        let mut prices = vec![0.0f64; num_rows];
        for (price, &initial) in prices.iter_mut().zip(initial_prices) {
            if initial.is_finite() && initial > 0.0 {
                *price = initial;
            }
        }
        // Accumulated (summed) primal plays; divided by `rounds` at the end.
        let mut accumulated: Vec<Vec<f64>> = problem
            .blocks
            .iter()
            .map(|b| vec![0.0; b.columns.len()])
            .collect();
        let mut loads = vec![0.0f64; num_rows];

        for t in 1..=rounds {
            loads.iter_mut().for_each(|l| *l = 0.0);
            // Best response of every block to the current prices.
            for (block, acc) in problem.blocks.iter().zip(accumulated.iter_mut()) {
                let mut best: Option<(usize, f64)> = None;
                for (c, col) in block.columns.iter().enumerate() {
                    let mut reduced = col.profit;
                    for &(row, coeff) in &col.usage {
                        reduced -= prices[row] * coeff;
                    }
                    if reduced > 0.0 {
                        match best {
                            Some((_, b)) if b >= reduced => {}
                            _ => best = Some((c, reduced)),
                        }
                    }
                }
                if let Some((c, _)) = best {
                    acc[c] += 1.0;
                    for &(row, coeff) in &block.columns[c].usage {
                        loads[row] += coeff;
                    }
                }
            }
            // Dual update: prices rise on overloaded rows, fall otherwise.
            let eta = self.step / (t as f64).sqrt();
            for i in 0..num_rows {
                let violation = (loads[i] - problem.capacities[i]) / problem.capacities[i];
                prices[i] = (prices[i] + eta * violation).max(0.0);
            }
        }

        // Average the plays.
        let scale = 1.0 / rounds as f64;
        let mut values: Vec<Vec<f64>> = accumulated
            .into_iter()
            .map(|block| block.into_iter().map(|v| v * scale).collect())
            .collect();

        // Repair: scale down columns on any row that is still (slightly)
        // overloaded so the output is exactly feasible.
        let mut solution = BlockSolution {
            values: values.clone(),
            objective: 0.0,
            status: SolveStatus::Approximate,
            iterations: rounds,
        };
        let loads = problem.row_loads(&solution);
        let mut row_scale = vec![1.0f64; num_rows];
        for i in 0..num_rows {
            if loads[i] > problem.capacities[i] {
                row_scale[i] = problem.capacities[i] / loads[i];
            }
        }
        if row_scale.iter().any(|&s| s < 1.0) {
            for (block, vals) in problem.blocks.iter().zip(values.iter_mut()) {
                for (col, v) in block.columns.iter().zip(vals.iter_mut()) {
                    if *v > 0.0 {
                        let factor = col
                            .usage
                            .iter()
                            .map(|&(row, _)| row_scale[row])
                            .fold(1.0f64, f64::min);
                        *v *= factor;
                    }
                }
            }
        }
        solution.values = values;
        solution.objective = problem.objective_value(&solution);
        debug_assert!(problem.is_feasible(&solution, 1e-7));
        Ok(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two blocks competing for one row of capacity 1.
    fn shared_row_problem() -> BlockPackingProblem {
        let mut p = BlockPackingProblem::new(vec![1.0]);
        p.add_block(PackingBlock {
            columns: vec![
                PackingColumn {
                    profit: 2.0,
                    usage: vec![(0, 1.0)],
                },
                PackingColumn {
                    profit: 1.0,
                    usage: vec![],
                },
            ],
        });
        p.add_block(PackingBlock {
            columns: vec![
                PackingColumn {
                    profit: 2.0,
                    usage: vec![(0, 1.0)],
                },
                PackingColumn {
                    profit: 1.0,
                    usage: vec![],
                },
            ],
        });
        p
    }

    #[test]
    fn warm_start_with_empty_prices_matches_cold_solve_bit_for_bit() {
        let p = shared_row_problem();
        let solver = BlockPackingSolver::with_rounds(200);
        let cold = solver.solve(&p).unwrap();
        let warm = solver.solve_warm(&p, &[]).unwrap();
        assert_eq!(cold.values, warm.values);
        assert_eq!(cold.objective.to_bits(), warm.objective.to_bits());
    }

    #[test]
    fn warm_start_sanitises_bad_prices() {
        let p = shared_row_problem();
        let solver = BlockPackingSolver::with_rounds(200);
        let cold = solver.solve(&p).unwrap();
        // Negative / NaN / surplus entries are ignored or clamped.
        let warm = solver.solve_warm(&p, &[-3.0, f64::NAN, 7.0]).unwrap();
        assert_eq!(cold.values, warm.values);
    }

    #[test]
    fn good_initial_prices_speed_up_convergence() {
        // With the optimum dual price of the shared row (1.0), even a
        // handful of rounds produces a near-optimal feasible solution;
        // the cold solver needs many more rounds to price the row up
        // from zero.
        let p = shared_row_problem();
        let quick = BlockPackingSolver::with_rounds(8);
        let warm = quick.solve_warm(&p, &[1.0]).unwrap();
        let cold = quick.solve(&p).unwrap();
        assert!(p.is_feasible(&warm, 1e-9));
        // LP optimum is 3.0 (one block takes the row, the other the free
        // column). The warm run must be close; the cold short run is not.
        assert!(
            warm.objective >= 2.75,
            "warm objective {} too far from optimum",
            warm.objective
        );
        assert!(
            warm.objective >= cold.objective - 1e-9,
            "warm ({}) must not trail cold ({})",
            warm.objective,
            cold.objective
        );
    }

    #[test]
    fn validation_rejects_bad_models() {
        let mut p = BlockPackingProblem::new(vec![0.0]);
        assert!(p.validate().is_err());
        p.capacities = vec![1.0];
        p.add_block(PackingBlock {
            columns: vec![PackingColumn {
                profit: -1.0,
                usage: vec![],
            }],
        });
        assert!(p.validate().is_err());
        p.blocks[0].columns[0].profit = 1.0;
        p.blocks[0].columns[0].usage = vec![(5, 1.0)];
        assert!(p.validate().is_err());
        p.blocks[0].columns[0].usage = vec![(0, -1.0)];
        assert!(p.validate().is_err());
        p.blocks[0].columns[0].usage = vec![(0, 1.0)];
        assert!(p.validate().is_ok());
    }

    #[test]
    fn solution_is_feasible_and_near_optimal_on_shared_row() {
        let p = shared_row_problem();
        let s = BlockPackingSolver::with_rounds(2000).solve(&p).unwrap();
        assert!(p.is_feasible(&s, 1e-7));
        // LP optimum is 3: one unit of the shared row split between the
        // premium columns plus the fallback column of the loser.
        assert!(s.objective > 2.7, "objective {}", s.objective);
        assert!(s.objective <= 3.0 + 1e-9);
    }

    #[test]
    fn empty_problem_yields_zero() {
        let p = BlockPackingProblem::new(vec![]);
        let s = BlockPackingSolver::default().solve(&p).unwrap();
        assert_eq!(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn unconstrained_blocks_take_their_best_column() {
        let mut p = BlockPackingProblem::new(vec![10.0]);
        p.add_block(PackingBlock {
            columns: vec![
                PackingColumn {
                    profit: 1.0,
                    usage: vec![(0, 1.0)],
                },
                PackingColumn {
                    profit: 3.0,
                    usage: vec![(0, 1.0)],
                },
            ],
        });
        let s = BlockPackingSolver::with_rounds(200).solve(&p).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!((s.values[0][1] - 1.0).abs() < 1e-6);
        assert!(s.values[0][0].abs() < 1e-6);
    }

    #[test]
    fn zero_profit_columns_are_never_taken() {
        let mut p = BlockPackingProblem::new(vec![1.0]);
        p.add_block(PackingBlock {
            columns: vec![PackingColumn {
                profit: 0.0,
                usage: vec![(0, 1.0)],
            }],
        });
        let s = BlockPackingSolver::with_rounds(100).solve(&p).unwrap();
        assert_eq!(s.objective, 0.0);
        assert_eq!(s.values[0][0], 0.0);
    }

    #[test]
    fn capacity_is_never_exceeded_even_under_contention() {
        // 10 blocks all want the same unit-capacity row.
        let mut p = BlockPackingProblem::new(vec![1.0]);
        for _ in 0..10 {
            p.add_block(PackingBlock {
                columns: vec![PackingColumn {
                    profit: 1.0,
                    usage: vec![(0, 1.0)],
                }],
            });
        }
        let s = BlockPackingSolver::with_rounds(1500).solve(&p).unwrap();
        assert!(p.is_feasible(&s, 1e-7));
        let load = p.row_loads(&s)[0];
        assert!(load <= 1.0 + 1e-7);
        // The LP optimum is exactly 1 (the row is the only bottleneck).
        assert!(s.objective > 0.8, "objective {}", s.objective);
    }

    #[test]
    fn matches_exact_simplex_on_small_instances() {
        use crate::problem::LinearProgram;
        use crate::simplex::SimplexSolver;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..5 {
            let num_rows = rng.gen_range(2..5);
            let num_blocks = rng.gen_range(3..7);
            let capacities: Vec<f64> = (0..num_rows).map(|_| rng.gen_range(1.0..3.0)).collect();
            let mut p = BlockPackingProblem::new(capacities.clone());
            for _ in 0..num_blocks {
                let num_cols = rng.gen_range(1..4);
                let columns = (0..num_cols)
                    .map(|_| {
                        let usage: Vec<(usize, f64)> = (0..num_rows)
                            .filter(|_| rng.gen_bool(0.6))
                            .map(|r| (r, 1.0))
                            .collect();
                        PackingColumn {
                            profit: rng.gen_range(0.1..2.0),
                            usage,
                        }
                    })
                    .collect();
                p.add_block(PackingBlock { columns });
            }

            // Exact LP for reference.
            let mut lp = LinearProgram::new();
            let mut var_ids: Vec<Vec<usize>> = Vec::new();
            for block in &p.blocks {
                let ids: Vec<usize> = block
                    .columns
                    .iter()
                    .map(|c| lp.add_var(c.profit, 1.0))
                    .collect();
                lp.add_le_constraint(ids.iter().map(|&v| (v, 1.0)), 1.0)
                    .unwrap();
                var_ids.push(ids);
            }
            for (row, &cap) in capacities.iter().enumerate() {
                let mut coeffs = Vec::new();
                for (b, block) in p.blocks.iter().enumerate() {
                    for (c, col) in block.columns.iter().enumerate() {
                        if let Some(&(_, w)) = col.usage.iter().find(|&&(r, _)| r == row) {
                            coeffs.push((var_ids[b][c], w));
                        }
                    }
                }
                lp.add_le_constraint(coeffs, cap).unwrap();
            }
            let exact = SimplexSolver::default().solve(&lp).unwrap();
            let approx = BlockPackingSolver::with_rounds(4000).solve(&p).unwrap();
            assert!(p.is_feasible(&approx, 1e-7));
            assert!(
                approx.objective >= 0.9 * exact.objective - 1e-6,
                "approx {} vs exact {}",
                approx.objective,
                exact.objective
            );
            assert!(approx.objective <= exact.objective + 1e-6);
        }
    }
}
