//! MPS-format export and import for [`LinearProgram`].
//!
//! The paper's authors solved the benchmark LP with Gurobi. To make the
//! reproduction auditable against any external solver, this module writes
//! the exact LP instance our simplex sees in the industry-standard (fixed
//! field, but whitespace-tolerant) MPS format and reads it back. The model
//! shape is `max c·x, A·x ≤ b, 0 ≤ x ≤ u`, which maps onto:
//!
//! * an `N` objective row (MPS minimises by convention, so the objective is
//!   negated on export and re-negated on import — a round trip is lossless);
//! * one `L` row per constraint;
//! * `UP` bound records for the finite upper bounds.

use crate::error::LpError;
use crate::problem::LinearProgram;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Name given to the objective row on export.
const OBJECTIVE_ROW: &str = "OBJ";

/// Serializes the program in MPS format.
///
/// Variables are named `X0, X1, …` and constraints `R0, R1, …` in model
/// order, which keeps the mapping to [`crate::problem::VarId`] trivial.
pub fn to_mps(lp: &LinearProgram, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "NAME          {name}");
    out.push_str("ROWS\n");
    let _ = writeln!(out, " N  {OBJECTIVE_ROW}");
    for row in 0..lp.num_constraints() {
        let _ = writeln!(out, " L  R{row}");
    }

    out.push_str("COLUMNS\n");
    for var in 0..lp.num_vars() {
        // MPS minimises; our model maximises.
        let c = lp.objective(var);
        if c != 0.0 {
            let _ = writeln!(out, "    X{var}  {OBJECTIVE_ROW}  {}", -c);
        }
        for (row, constraint) in lp.constraints().iter().enumerate() {
            for &(v, coeff) in &constraint.coefficients {
                if v == var && coeff != 0.0 {
                    let _ = writeln!(out, "    X{var}  R{row}  {coeff}");
                }
            }
        }
    }

    out.push_str("RHS\n");
    for (row, constraint) in lp.constraints().iter().enumerate() {
        if constraint.rhs != 0.0 {
            let _ = writeln!(out, "    RHS  R{row}  {}", constraint.rhs);
        }
    }

    out.push_str("BOUNDS\n");
    for var in 0..lp.num_vars() {
        let upper = lp.upper_bound(var);
        if upper.is_finite() {
            let _ = writeln!(out, " UP BND  X{var}  {upper}");
        }
    }
    out.push_str("ENDATA\n");
    out
}

/// Parses a program previously written by [`to_mps`].
///
/// The parser accepts any variable and row names (not just `X<i>` / `R<i>`),
/// free-form whitespace, and `*` comment lines. Only the features emitted by
/// [`to_mps`] are supported: `N`/`L` rows, `RHS`, and `UP`/`FX` bounds.
/// Unsupported row types (`G`, `E`) and bound types are rejected with
/// [`LpError::InvalidModel`].
pub fn from_mps(text: &str) -> Result<LinearProgram, LpError> {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        None,
        Rows,
        Columns,
        Rhs,
        Bounds,
        Done,
    }

    let mut section = Section::None;
    let mut objective_row: Option<String> = None;
    let mut row_order: Vec<String> = Vec::new();
    let mut row_index: HashMap<String, usize> = HashMap::new();
    // Column data gathered before we know all rows is keyed by name.
    let mut var_order: Vec<String> = Vec::new();
    let mut var_index: HashMap<String, usize> = HashMap::new();
    let mut objective_coeffs: HashMap<usize, f64> = HashMap::new();
    let mut entries: Vec<(usize, usize, f64)> = Vec::new(); // (row, var, coeff)
    let mut rhs: HashMap<usize, f64> = HashMap::new();
    let mut upper_bounds: HashMap<usize, f64> = HashMap::new();

    let invalid = |msg: String| LpError::InvalidModel(msg);

    for raw in text.lines() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        let is_header = !raw.starts_with(' ') && !raw.starts_with('\t');
        if is_header {
            let keyword = line.split_whitespace().next().unwrap_or("");
            section = match keyword {
                "NAME" => section,
                "ROWS" => Section::Rows,
                "COLUMNS" => Section::Columns,
                "RHS" => Section::Rhs,
                "RANGES" => {
                    return Err(invalid("RANGES sections are not supported".into()));
                }
                "BOUNDS" => Section::Bounds,
                "ENDATA" => Section::Done,
                other => {
                    return Err(invalid(format!("unknown MPS section {other:?}")));
                }
            };
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match section {
            Section::Rows => {
                if fields.len() != 2 {
                    return Err(invalid(format!("malformed ROWS line {line:?}")));
                }
                match fields[0] {
                    "N" => {
                        if objective_row.is_some() {
                            return Err(invalid("multiple objective rows".into()));
                        }
                        objective_row = Some(fields[1].to_string());
                    }
                    "L" => {
                        let name = fields[1].to_string();
                        row_index.insert(name.clone(), row_order.len());
                        row_order.push(name);
                    }
                    other => {
                        return Err(invalid(format!(
                            "row type {other:?} is not supported (only N and L)"
                        )));
                    }
                }
            }
            Section::Columns => {
                // Lines carry one or two (row, value) pairs after the column name.
                if fields.len() != 3 && fields.len() != 5 {
                    return Err(invalid(format!("malformed COLUMNS line {line:?}")));
                }
                let column = fields[0];
                let var = *var_index.entry(column.to_string()).or_insert_with(|| {
                    var_order.push(column.to_string());
                    var_order.len() - 1
                });
                for pair in fields[1..].chunks(2) {
                    let row_name = pair[0];
                    let value: f64 = pair[1]
                        .parse()
                        .map_err(|_| invalid(format!("bad coefficient {:?}", pair[1])))?;
                    if Some(row_name) == objective_row.as_deref() {
                        // Undo the export-side negation.
                        *objective_coeffs.entry(var).or_insert(0.0) += -value;
                    } else {
                        let row = *row_index
                            .get(row_name)
                            .ok_or_else(|| invalid(format!("unknown row {row_name:?}")))?;
                        entries.push((row, var, value));
                    }
                }
            }
            Section::Rhs => {
                if fields.len() != 3 && fields.len() != 5 {
                    return Err(invalid(format!("malformed RHS line {line:?}")));
                }
                for pair in fields[1..].chunks(2) {
                    let row_name = pair[0];
                    let value: f64 = pair[1]
                        .parse()
                        .map_err(|_| invalid(format!("bad rhs {:?}", pair[1])))?;
                    if Some(row_name) == objective_row.as_deref() {
                        continue; // objective constants are ignored
                    }
                    let row = *row_index
                        .get(row_name)
                        .ok_or_else(|| invalid(format!("unknown row {row_name:?}")))?;
                    rhs.insert(row, value);
                }
            }
            Section::Bounds => {
                if fields.len() != 4 {
                    return Err(invalid(format!("malformed BOUNDS line {line:?}")));
                }
                let bound_type = fields[0];
                let column = fields[2];
                let value: f64 = fields[3]
                    .parse()
                    .map_err(|_| invalid(format!("bad bound {:?}", fields[3])))?;
                let var = *var_index
                    .get(column)
                    .ok_or_else(|| invalid(format!("bound on unknown column {column:?}")))?;
                match bound_type {
                    "UP" => {
                        upper_bounds.insert(var, value);
                    }
                    "FX" => {
                        // Fixed variable: represent as an upper bound plus an
                        // equality we cannot express; reject unless fixed at 0.
                        if value.abs() > 1e-12 {
                            return Err(invalid(
                                "FX bounds other than zero are not supported".into(),
                            ));
                        }
                        upper_bounds.insert(var, 0.0);
                    }
                    other => {
                        return Err(invalid(format!("bound type {other:?} is not supported")));
                    }
                }
            }
            Section::None | Section::Done => {
                return Err(invalid(format!("data line outside any section: {line:?}")));
            }
        }
    }

    if objective_row.is_none() {
        return Err(invalid("missing objective (N) row".into()));
    }

    let mut lp = LinearProgram::new();
    for var in 0..var_order.len() {
        let objective = objective_coeffs.get(&var).copied().unwrap_or(0.0);
        let upper = upper_bounds.get(&var).copied().unwrap_or(f64::INFINITY);
        lp.add_var(objective, upper);
    }
    let num_rows = row_order.len();
    let mut row_coefficients: Vec<Vec<(usize, f64)>> = vec![Vec::new(); num_rows];
    for (row, var, coeff) in entries {
        row_coefficients[row].push((var, coeff));
    }
    for (row, coefficients) in row_coefficients.into_iter().enumerate() {
        let b = rhs.get(&row).copied().unwrap_or(0.0);
        lp.add_le_constraint(coefficients, b)?;
    }
    Ok(lp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::SimplexSolver;

    fn textbook_lp() -> LinearProgram {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(3.0, f64::INFINITY);
        let y = lp.add_var(5.0, 6.0);
        lp.add_le_constraint([(x, 1.0)], 4.0).unwrap();
        lp.add_le_constraint([(x, 3.0), (y, 2.0)], 18.0).unwrap();
        lp
    }

    #[test]
    fn export_contains_all_sections() {
        let text = to_mps(&textbook_lp(), "TEXTBOOK");
        for section in ["NAME", "ROWS", "COLUMNS", "RHS", "BOUNDS", "ENDATA"] {
            assert!(text.contains(section), "missing {section}");
        }
        assert!(text.contains("TEXTBOOK"));
        assert!(text.contains(" L  R0"));
        assert!(text.contains(" UP BND  X1  6"));
    }

    #[test]
    fn round_trip_preserves_the_model_and_its_optimum() {
        let original = textbook_lp();
        let text = to_mps(&original, "RT");
        let restored = from_mps(&text).unwrap();
        assert_eq!(restored.num_vars(), original.num_vars());
        assert_eq!(restored.num_constraints(), original.num_constraints());
        for v in 0..original.num_vars() {
            assert!((restored.objective(v) - original.objective(v)).abs() < 1e-12);
            assert_eq!(
                restored.upper_bound(v).is_finite(),
                original.upper_bound(v).is_finite()
            );
        }
        let a = SimplexSolver::default().solve(&original).unwrap();
        let b = SimplexSolver::default().solve(&restored).unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9);
    }

    #[test]
    fn objective_sign_convention_round_trips() {
        // Export negates (MPS minimises); import must negate back.
        let mut lp = LinearProgram::new();
        lp.add_var(2.5, 1.0);
        let text = to_mps(&lp, "SIGN");
        assert!(text.contains("-2.5"));
        let restored = from_mps(&text).unwrap();
        assert!((restored.objective(0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "* a comment\nNAME T\nROWS\n N  OBJ\n L  R0\n\nCOLUMNS\n    X0  OBJ  -1\n    X0  R0  1\nRHS\n    RHS  R0  2\nBOUNDS\nENDATA\n";
        let lp = from_mps(text).unwrap();
        assert_eq!(lp.num_vars(), 1);
        assert_eq!(lp.num_constraints(), 1);
        let solution = SimplexSolver::default().solve(&lp).unwrap();
        assert!((solution.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unsupported_row_types_are_rejected() {
        let text = "ROWS\n N  OBJ\n G  R0\nENDATA\n";
        assert!(matches!(from_mps(text), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn unsupported_bound_types_are_rejected() {
        let text =
            "ROWS\n N  OBJ\n L  R0\nCOLUMNS\n    X0  R0  1\nBOUNDS\n MI BND  X0  0\nENDATA\n";
        assert!(matches!(from_mps(text), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn unknown_rows_in_columns_are_rejected() {
        let text = "ROWS\n N  OBJ\n L  R0\nCOLUMNS\n    X0  NOPE  1\nENDATA\n";
        assert!(matches!(from_mps(text), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn missing_objective_row_is_rejected() {
        let text = "ROWS\n L  R0\nCOLUMNS\n    X0  R0  1\nENDATA\n";
        assert!(matches!(from_mps(text), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn two_pair_column_lines_are_accepted() {
        let text = "ROWS\n N  OBJ\n L  R0\n L  R1\nCOLUMNS\n    X0  R0  1  R1  2\n    X0  OBJ  -1\nRHS\n    RHS  R0  4  R1  6\nENDATA\n";
        let lp = from_mps(text).unwrap();
        assert_eq!(lp.num_constraints(), 2);
        let solution = SimplexSolver::default().solve(&lp).unwrap();
        // x ≤ 4 and 2x ≤ 6 → x = 3.
        assert!((solution.objective - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fx_zero_bound_fixes_the_variable() {
        let text = "ROWS\n N  OBJ\n L  R0\nCOLUMNS\n    X0  OBJ  -1\n    X0  R0  1\n    X1  OBJ  -1\n    X1  R0  1\nRHS\n    RHS  R0  5\nBOUNDS\n FX BND  X1  0\nENDATA\n";
        let lp = from_mps(text).unwrap();
        assert_eq!(lp.upper_bound(1), 0.0);
        let solution = SimplexSolver::default().solve(&lp).unwrap();
        assert!((solution.objective - 5.0).abs() < 1e-9);
    }
}
