//! Error types shared by the LP and ILP solvers.

use std::fmt;

/// Errors returned by the solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// A constraint or objective references a variable that does not exist.
    UnknownVariable {
        /// The offending variable index.
        variable: usize,
        /// Number of variables in the program.
        num_variables: usize,
    },
    /// The iteration limit was reached before convergence.
    IterationLimit {
        /// The configured limit.
        limit: usize,
    },
    /// A numerical invariant broke down (e.g. a pivot element became too
    /// small to divide by safely).
    Numerical(String),
    /// The model is empty or otherwise malformed.
    InvalidModel(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "the linear program is infeasible"),
            LpError::Unbounded => write!(f, "the linear program is unbounded"),
            LpError::UnknownVariable {
                variable,
                num_variables,
            } => write!(
                f,
                "variable index {variable} is out of range (program has {num_variables} variables)"
            ),
            LpError::IterationLimit { limit } => {
                write!(f, "iteration limit of {limit} reached before convergence")
            }
            LpError::Numerical(msg) => write!(f, "numerical difficulty: {msg}"),
            LpError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::IterationLimit { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(LpError::UnknownVariable {
            variable: 5,
            num_variables: 2
        }
        .to_string()
        .contains('5'));
    }

    #[test]
    fn error_is_boxable() {
        let e: Box<dyn std::error::Error> = Box::new(LpError::Numerical("tiny pivot".into()));
        assert!(e.to_string().contains("tiny pivot"));
    }
}
