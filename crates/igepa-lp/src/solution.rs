//! Solver results.

use serde::{Deserialize, Serialize};

/// How a solver terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// Proven optimal (within the solver's tolerance).
    Optimal,
    /// Feasible but only approximately optimal (e.g. iterative solvers that
    /// stop at a target accuracy).
    Approximate,
}

/// Solution of a linear program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Value of every decision variable, in variable order.
    pub values: Vec<f64>,
    /// Objective value at `values`.
    pub objective: f64,
    /// Termination status.
    pub status: SolveStatus,
    /// Number of iterations (simplex pivots or subgradient rounds) performed.
    pub iterations: usize,
}

impl LpSolution {
    /// Value of a single variable.
    pub fn value(&self, var: usize) -> f64 {
        self.values[var]
    }

    /// Whether the solver proved optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }
}

/// Solution of an integer program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IlpSolution {
    /// Value of every decision variable (integral for integer variables).
    pub values: Vec<f64>,
    /// Objective value at `values`.
    pub objective: f64,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// Best LP upper bound proven (equals `objective` when solved to
    /// optimality).
    pub best_bound: f64,
}

impl IlpSolution {
    /// Absolute optimality gap `best_bound − objective` (non-negative).
    pub fn gap(&self) -> f64 {
        (self.best_bound - self.objective).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_solution_accessors() {
        let s = LpSolution {
            values: vec![1.0, 0.5],
            objective: 2.5,
            status: SolveStatus::Optimal,
            iterations: 3,
        };
        assert_eq!(s.value(1), 0.5);
        assert!(s.is_optimal());
        let a = LpSolution {
            status: SolveStatus::Approximate,
            ..s
        };
        assert!(!a.is_optimal());
    }

    #[test]
    fn ilp_gap_is_clamped_to_zero() {
        let s = IlpSolution {
            values: vec![1.0],
            objective: 5.0,
            nodes_explored: 1,
            best_bound: 5.0,
        };
        assert_eq!(s.gap(), 0.0);
        let s2 = IlpSolution {
            best_bound: 6.0,
            ..s
        };
        assert_eq!(s2.gap(), 1.0);
    }
}
