//! Exact bounded-variable revised simplex.
//!
//! This is the workhorse used where the paper uses Gurobi: it solves
//! `max c·x  s.t.  A·x ≤ b,  0 ≤ x ≤ u` exactly (up to floating-point
//! tolerance). The implementation is a revised simplex with
//!
//! * an explicit dense basis inverse updated by elementary row operations,
//! * bounded variables handled natively (non-basic variables may sit at
//!   their lower *or* upper bound, and a "bound flip" avoids a pivot when a
//!   variable travels across its box),
//! * a Phase I with artificial variables for rows whose right-hand side is
//!   negative (the IGEPA benchmark LP never needs it, but branch-and-bound
//!   and the test-suite LPs exercise it),
//! * Dantzig pricing with an automatic switch to Bland's rule after a run of
//!   degenerate pivots, which guarantees termination.
//!
//! The dense `m × m` inverse makes the solver suitable for LPs with up to a
//! few thousand rows — ample for the instance sizes where exactness matters
//! (validation, the approximation-ratio study and the exact ILP baseline).
//! Larger instances use the structure-aware approximate solver in
//! [`crate::packing`].

use crate::error::LpError;
use crate::problem::LinearProgram;
use crate::solution::{LpSolution, SolveStatus};

/// Where a non-basic variable currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarStatus {
    Basic(usize),
    AtLower,
    AtUpper,
}

/// A warm-start hint for [`SimplexSolver::solve_warm`]: which structural
/// variables should *start* at their upper bound instead of at zero.
///
/// This is a **crash basis**: the slack basis is kept (`B = I`, no
/// refactorisation needed), and the hinted variables enter the first
/// iteration as non-basic-at-upper. When the hint comes from a previous
/// solve of a nearby LP — e.g. the admissible sets a user held in the
/// previous arrangement — the starting point is already primal-feasible
/// and near-optimal, so Phase II has only the pivots and bound flips
/// that the *change* requires, instead of rebuilding the whole solution
/// from `x = 0`. A hint that is primal-infeasible for the new LP (a
/// capacity shrank, a set disappeared) is detected up front and the
/// solve silently falls back to the cold start, so `solve_warm` is
/// always exact: it returns the same optima `solve` does.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimplexBasis {
    /// `at_upper[j]` starts structural variable `j` at its upper bound.
    pub at_upper: Vec<bool>,
}

impl SimplexBasis {
    /// A hint starting the flagged variables at their upper bound.
    pub fn from_upper_flags(at_upper: Vec<bool>) -> Self {
        SimplexBasis { at_upper }
    }

    /// Derives a hint from a previous solution vector: every variable
    /// within `tolerance` of its (finite, positive) upper bound is
    /// flagged. `values` and `upper_bounds` index the structural
    /// variables of the *new* LP, which must correspond positionally to
    /// the old one for the hint to be meaningful.
    pub fn from_solution(values: &[f64], upper_bounds: &[f64], tolerance: f64) -> Self {
        let at_upper = values
            .iter()
            .zip(upper_bounds)
            .map(|(&x, &u)| u.is_finite() && u > 0.0 && (u - x) <= tolerance)
            .collect();
        SimplexBasis { at_upper }
    }

    /// Whether the hint flags any variable at all.
    pub fn is_empty(&self) -> bool {
        !self.at_upper.iter().any(|&b| b)
    }
}

/// Configuration for the revised simplex solver.
#[derive(Debug, Clone)]
pub struct SimplexSolver {
    /// Feasibility / optimality tolerance.
    pub tolerance: f64,
    /// Hard cap on pivots (per phase). `None` derives a limit from the
    /// problem size.
    pub max_iterations: Option<usize>,
}

impl Default for SimplexSolver {
    fn default() -> Self {
        SimplexSolver {
            tolerance: 1e-9,
            max_iterations: None,
        }
    }
}

/// Internal working state shared by both phases.
struct Tableau {
    /// Rows (constraints).
    m: usize,
    /// Structural + slack + artificial variables.
    total_vars: usize,
    /// Number of structural variables.
    n_structural: usize,
    /// Sparse columns of the structural variables: `(row, coeff)`.
    columns: Vec<Vec<(usize, f64)>>,
    /// Right-hand sides after sign normalisation.
    /// +1 if the row kept its sign, −1 if it was multiplied by −1 so that
    /// the rhs became non-negative.
    row_sign: Vec<f64>,
    /// Upper bound of every variable (structural, slack, artificial).
    upper: Vec<f64>,
    /// Status of every variable.
    status: Vec<VarStatus>,
    /// Index of the basic variable of each row.
    basis: Vec<usize>,
    /// Dense basis inverse, row-major `m × m`.
    binv: Vec<f64>,
    /// Values of the basic variables.
    xb: Vec<f64>,
    /// First artificial variable index (== n_structural + m when present).
    artificial_start: usize,
    tolerance: f64,
}

impl Tableau {
    fn new(lp: &LinearProgram, tolerance: f64) -> Self {
        let m = lp.num_constraints();
        let n = lp.num_vars();
        // Column j of a structural variable: its coefficients across rows,
        // with the row sign folded in below.
        let mut columns: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut rhs = Vec::with_capacity(m);
        let mut row_sign = Vec::with_capacity(m);
        for (i, c) in lp.constraints().iter().enumerate() {
            let sign = if c.rhs < 0.0 { -1.0 } else { 1.0 };
            row_sign.push(sign);
            rhs.push(c.rhs * sign);
            for &(var, coeff) in &c.coefficients {
                columns[var].push((i, coeff * sign));
            }
        }

        // Variable layout: [structural | slack | artificial (lazy)].
        // The slack of a sign-flipped row has coefficient −1 (because
        // `A·x ≤ b` became `−A·x ≥ −b`, i.e. `−A·x − s = −b` with `s ≥ 0`).
        let mut upper: Vec<f64> = lp.upper_bounds().to_vec();
        upper.extend(std::iter::repeat_n(f64::INFINITY, m));

        let mut status = vec![VarStatus::AtLower; n + m];
        let mut basis = Vec::with_capacity(m);
        let mut artificials = Vec::new();
        for i in 0..m {
            if row_sign[i] > 0.0 {
                // Slack starts basic at rhs ≥ 0.
                basis.push(n + i);
            } else {
                // Slack coefficient is −1; a slack basis would be negative.
                // Add an artificial variable (+1 coefficient) instead.
                artificials.push(i);
                basis.push(usize::MAX); // patched below
            }
        }
        let artificial_start = n + m;
        let total_vars = artificial_start + artificials.len();
        upper.extend(std::iter::repeat_n(f64::INFINITY, artificials.len()));
        status.extend(std::iter::repeat_n(VarStatus::AtLower, artificials.len()));
        for (k, &row) in artificials.iter().enumerate() {
            basis[row] = artificial_start + k;
        }

        let mut xb = vec![0.0; m];
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
            xb[i] = rhs[i];
            status[basis[i]] = VarStatus::Basic(i);
        }

        Tableau {
            m,
            total_vars,
            n_structural: n,
            columns,

            row_sign,
            upper,
            status,
            basis,
            binv,
            xb,
            artificial_start,
            tolerance,
        }
    }

    fn has_artificials(&self) -> bool {
        self.total_vars > self.artificial_start
    }

    /// Tries to install a warm-start hint: the flagged structural
    /// variables move to their upper bound while the slack basis stays
    /// (`B = I`), so the basic values are just the residual right-hand
    /// sides. Returns `false` — leaving the tableau at the cold start —
    /// when the hint does not fit this LP (wrong length, Phase I rows
    /// present) or when the hinted point is primal-infeasible (some
    /// residual turns negative): warm starting must never cost
    /// exactness, only iterations.
    fn apply_warm_hint(&mut self, hint: &SimplexBasis) -> bool {
        if self.has_artificials() || hint.at_upper.len() != self.n_structural {
            return false;
        }
        let flagged =
            |j: usize| hint.at_upper[j] && self.upper[j].is_finite() && self.upper[j] > 0.0;
        let mut xb = self.xb.clone(); // == rhs at the cold start
        let mut any = false;
        for j in 0..self.n_structural {
            if !flagged(j) {
                continue;
            }
            any = true;
            for &(row, coeff) in &self.columns[j] {
                xb[row] -= coeff * self.upper[j];
            }
        }
        if !any || xb.iter().any(|&v| v < -self.tolerance) {
            return false;
        }
        for j in 0..self.n_structural {
            if flagged(j) {
                self.status[j] = VarStatus::AtUpper;
            }
        }
        // Snap tolerance-level negatives onto the bound they sit on.
        self.xb = xb.into_iter().map(|v| v.max(0.0)).collect();
        true
    }

    /// Objective coefficient of variable `j` in the given phase.
    fn cost(&self, j: usize, phase_one: bool, structural_obj: &[f64]) -> f64 {
        if phase_one {
            // Maximise −Σ artificials.
            if j >= self.artificial_start {
                -1.0
            } else {
                0.0
            }
        } else if j < self.n_structural {
            structural_obj[j]
        } else {
            0.0
        }
    }

    /// Sparse column of variable `j` (structural, slack or artificial).
    fn column(&self, j: usize, out: &mut Vec<(usize, f64)>) {
        out.clear();
        if j < self.n_structural {
            out.extend_from_slice(&self.columns[j]);
        } else if j < self.artificial_start {
            let row = j - self.n_structural;
            out.push((row, self.row_sign[row]));
        } else {
            // Artificials only exist on sign-flipped rows, coefficient +1.
            let mut count = 0;
            for row in 0..self.m {
                if self.row_sign[row] < 0.0 {
                    if self.artificial_start + count == j {
                        out.push((row, 1.0));
                        return;
                    }
                    count += 1;
                }
            }
        }
    }

    /// Current value of a non-basic variable.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => 0.0,
            VarStatus::AtUpper => self.upper[j],
            VarStatus::Basic(row) => self.xb[row],
        }
    }

    /// `y = c_B · B⁻¹` for the given phase.
    fn dual_prices(&self, phase_one: bool, structural_obj: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for (row, &bj) in self.basis.iter().enumerate() {
            let cb = self.cost(bj, phase_one, structural_obj);
            if cb != 0.0 {
                let brow = &self.binv[row * m..(row + 1) * m];
                for k in 0..m {
                    y[k] += cb * brow[k];
                }
            }
        }
        y
    }

    /// `w = B⁻¹ · A_j` for a sparse column.
    fn ftran(&self, column: &[(usize, f64)]) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for &(row, coeff) in column {
            for i in 0..m {
                w[i] += self.binv[i * m + row] * coeff;
            }
        }
        w
    }

    /// One simplex iteration. Returns `Ok(true)` if an improving pivot or
    /// bound flip was performed, `Ok(false)` if the current basis is optimal
    /// for the phase objective.
    fn iterate(
        &mut self,
        phase_one: bool,
        structural_obj: &[f64],
        use_bland: bool,
        scratch_col: &mut Vec<(usize, f64)>,
    ) -> Result<IterationOutcome, LpError> {
        let tol = self.tolerance;
        let y = self.dual_prices(phase_one, structural_obj);

        // Pricing: find an entering variable.
        let mut entering: Option<(usize, f64, f64)> = None; // (var, reduced cost, score)
        for j in 0..self.total_vars {
            if matches!(self.status[j], VarStatus::Basic(_)) {
                continue;
            }
            // Artificials are frozen (upper bound 0) in phase two.
            if !phase_one && j >= self.artificial_start {
                continue;
            }
            // Variables fixed to zero (upper bound 0) can never move.
            if self.upper[j] <= 0.0 {
                continue;
            }
            self.column(j, scratch_col);
            let mut d = self.cost(j, phase_one, structural_obj);
            for &(row, coeff) in scratch_col.iter() {
                d -= y[row] * coeff;
            }
            let improving = match self.status[j] {
                VarStatus::AtLower => d > tol,
                VarStatus::AtUpper => d < -tol,
                VarStatus::Basic(_) => false,
            };
            if !improving {
                continue;
            }
            if use_bland {
                entering = Some((j, d, 0.0));
                break;
            }
            let score = d.abs();
            match entering {
                Some((_, _, best)) if best >= score => {}
                _ => entering = Some((j, d, score)),
            }
        }

        let Some((q, _dq, _)) = entering else {
            return Ok(IterationOutcome::Optimal);
        };

        // Direction: +1 when increasing from the lower bound, −1 when
        // decreasing from the upper bound.
        let sigma = match self.status[q] {
            VarStatus::AtLower => 1.0,
            VarStatus::AtUpper => -1.0,
            VarStatus::Basic(_) => unreachable!("basic variable cannot enter"),
        };

        self.column(q, scratch_col);
        let w = self.ftran(scratch_col);

        // Ratio test.
        let own_range = self.upper[q]; // lower bound is always 0
        let mut t_max = own_range;
        let mut leaving: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        for i in 0..self.m {
            let dir = sigma * w[i];
            if dir > tol {
                // Basic variable decreases towards 0.
                let t = self.xb[i] / dir;
                if t < t_max - 1e-12 {
                    t_max = t.max(0.0);
                    leaving = Some((i, false));
                }
            } else if dir < -tol {
                // Basic variable increases towards its upper bound.
                let ub = self.upper[self.basis[i]];
                if ub.is_finite() {
                    let t = (ub - self.xb[i]) / (-dir);
                    if t < t_max - 1e-12 {
                        t_max = t.max(0.0);
                        leaving = Some((i, true));
                    }
                }
            }
        }

        if t_max.is_infinite() {
            return Err(LpError::Unbounded);
        }

        let degenerate = t_max <= tol;

        match leaving {
            None => {
                // Bound flip: the entering variable runs across its box.
                for i in 0..self.m {
                    self.xb[i] -= sigma * t_max * w[i];
                }
                self.status[q] = match self.status[q] {
                    VarStatus::AtLower => VarStatus::AtUpper,
                    VarStatus::AtUpper => VarStatus::AtLower,
                    VarStatus::Basic(_) => unreachable!(),
                };
                Ok(IterationOutcome::Progress { degenerate })
            }
            Some((r, leaves_at_upper)) => {
                let pivot = w[r];
                if pivot.abs() < 1e-12 {
                    return Err(LpError::Numerical(format!(
                        "pivot element {pivot:.3e} too small"
                    )));
                }
                // Update basic values.
                for i in 0..self.m {
                    self.xb[i] -= sigma * t_max * w[i];
                }
                let old_basic = self.basis[r];
                let entering_value = self.nonbasic_value(q) + sigma * t_max;
                // Leaving variable snaps exactly onto the bound it hit.
                self.status[old_basic] = if leaves_at_upper {
                    VarStatus::AtUpper
                } else {
                    VarStatus::AtLower
                };
                self.basis[r] = q;
                self.status[q] = VarStatus::Basic(r);
                self.xb[r] = entering_value;

                // binv ← E · binv with the elementary matrix built from w.
                let m = self.m;
                let inv_pivot = 1.0 / pivot;
                // First scale row r.
                for k in 0..m {
                    self.binv[r * m + k] *= inv_pivot;
                }
                for i in 0..m {
                    if i == r {
                        continue;
                    }
                    let factor = w[i];
                    if factor != 0.0 {
                        for k in 0..m {
                            self.binv[i * m + k] -= factor * self.binv[r * m + k];
                        }
                    }
                }
                Ok(IterationOutcome::Progress { degenerate })
            }
        }
    }

    /// Current phase objective value.
    fn objective_value(&self, phase_one: bool, structural_obj: &[f64]) -> f64 {
        let mut total = 0.0;
        for j in 0..self.total_vars {
            let v = match self.status[j] {
                VarStatus::Basic(row) => self.xb[row],
                VarStatus::AtLower => 0.0,
                VarStatus::AtUpper => self.upper[j],
            };
            if v != 0.0 {
                total += v * self.cost(j, phase_one, structural_obj);
            }
        }
        total
    }

    /// Extracts the structural solution vector.
    fn structural_solution(&self) -> Vec<f64> {
        (0..self.n_structural)
            .map(|j| match self.status[j] {
                VarStatus::Basic(row) => self.xb[row].max(0.0),
                VarStatus::AtLower => 0.0,
                VarStatus::AtUpper => self.upper[j],
            })
            .collect()
    }
}

enum IterationOutcome {
    Optimal,
    Progress { degenerate: bool },
}

impl SimplexSolver {
    /// Creates a solver with the given tolerance.
    pub fn with_tolerance(tolerance: f64) -> Self {
        SimplexSolver {
            tolerance,
            max_iterations: None,
        }
    }

    /// Solves the linear program to optimality.
    pub fn solve(&self, lp: &LinearProgram) -> Result<LpSolution, LpError> {
        self.solve_inner(lp, None)
    }

    /// Solves the linear program to optimality, starting from a warm
    /// crash basis ([`SimplexBasis`]). The hint changes only where the
    /// simplex *starts* — a hint that does not fit the LP (or is primal
    /// infeasible for it) is discarded and the solve proceeds cold — so
    /// the returned optimum is exactly [`SimplexSolver::solve`]'s; a good
    /// hint is visible purely as a lower [`LpSolution::iterations`].
    pub fn solve_warm(
        &self,
        lp: &LinearProgram,
        basis: &SimplexBasis,
    ) -> Result<LpSolution, LpError> {
        self.solve_inner(lp, Some(basis))
    }

    fn solve_inner(
        &self,
        lp: &LinearProgram,
        basis: Option<&SimplexBasis>,
    ) -> Result<LpSolution, LpError> {
        if lp.num_vars() == 0 {
            return Ok(LpSolution {
                values: Vec::new(),
                objective: 0.0,
                status: SolveStatus::Optimal,
                iterations: 0,
            });
        }
        let mut tableau = Tableau::new(lp, self.tolerance);
        if let Some(hint) = basis {
            tableau.apply_warm_hint(hint);
        }
        let obj: Vec<f64> = lp.objective_vector().to_vec();
        let m = tableau.m;
        let n = lp.num_vars();
        let limit = self.max_iterations.unwrap_or_else(|| 200 + 50 * (m + n));

        let mut iterations = 0usize;
        let mut scratch = Vec::new();

        // Phase I: drive artificial variables to zero.
        if tableau.has_artificials() {
            iterations += self.run_phase(&mut tableau, true, &obj, limit, &mut scratch)?;
            let phase_one_obj = tableau.objective_value(true, &obj);
            if phase_one_obj < -self.tolerance.max(1e-7) {
                return Err(LpError::Infeasible);
            }
            // Freeze artificials so they can never re-enter.
            for j in tableau.artificial_start..tableau.total_vars {
                tableau.upper[j] = 0.0;
            }
        }

        // Phase II: optimise the real objective.
        iterations += self.run_phase(&mut tableau, false, &obj, limit, &mut scratch)?;

        let values = tableau.structural_solution();
        let objective = lp.objective_value(&values);
        Ok(LpSolution {
            values,
            objective,
            status: SolveStatus::Optimal,
            iterations,
        })
    }

    fn run_phase(
        &self,
        tableau: &mut Tableau,
        phase_one: bool,
        obj: &[f64],
        limit: usize,
        scratch: &mut Vec<(usize, f64)>,
    ) -> Result<usize, LpError> {
        let mut iterations = 0usize;
        let mut degenerate_streak = 0usize;
        let bland_threshold = 3 * (tableau.m + tableau.n_structural) + 50;
        loop {
            if iterations >= limit {
                return Err(LpError::IterationLimit { limit });
            }
            let use_bland = degenerate_streak > bland_threshold;
            match tableau.iterate(phase_one, obj, use_bland, scratch)? {
                IterationOutcome::Optimal => return Ok(iterations),
                IterationOutcome::Progress { degenerate } => {
                    iterations += 1;
                    if degenerate {
                        degenerate_streak += 1;
                    } else {
                        degenerate_streak = 0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(lp: &LinearProgram) -> LpSolution {
        SimplexSolver::default().solve(lp).expect("solvable LP")
    }

    #[test]
    fn textbook_two_variable_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6), obj 36.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(3.0, f64::INFINITY);
        let y = lp.add_var(5.0, f64::INFINITY);
        lp.add_le_constraint(vec![(x, 1.0)], 4.0).unwrap();
        lp.add_le_constraint(vec![(y, 2.0)], 12.0).unwrap();
        lp.add_le_constraint(vec![(x, 3.0), (y, 2.0)], 18.0)
            .unwrap();
        let s = solve(&lp);
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 6.0).abs() < 1e-6);
        assert!(lp.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn upper_bounds_are_respected_with_bound_flips() {
        // max x + y with x <= 1.5, y <= 2.5 (box), x + y <= 3 -> obj 3.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 1.5);
        let y = lp.add_var(1.0, 2.5);
        lp.add_le_constraint(vec![(x, 1.0), (y, 1.0)], 3.0).unwrap();
        let s = solve(&lp);
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(lp.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn pure_box_lp_without_constraints() {
        let mut lp = LinearProgram::new();
        lp.add_var(2.0, 3.0);
        lp.add_var(-1.0, 5.0);
        let s = solve(&lp);
        assert!((s.objective - 6.0).abs() < 1e-9);
        assert_eq!(s.values[1], 0.0);
    }

    #[test]
    fn unbounded_lp_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, f64::INFINITY);
        let y = lp.add_var(0.0, f64::INFINITY);
        lp.add_le_constraint(vec![(x, -1.0), (y, 1.0)], 5.0)
            .unwrap();
        let err = SimplexSolver::default().solve(&lp).unwrap_err();
        assert_eq!(err, LpError::Unbounded);
    }

    #[test]
    fn infeasible_lp_detected() {
        // x >= 2 written as -x <= -2, together with x <= 1 (bound).
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 1.0);
        lp.add_le_constraint(vec![(x, -1.0)], -2.0).unwrap();
        let err = SimplexSolver::default().solve(&lp).unwrap_err();
        assert_eq!(err, LpError::Infeasible);
    }

    #[test]
    fn negative_rhs_feasible_lp_uses_phase_one() {
        // max x + y s.t. x + y <= 4, -x - y <= -2 (i.e. x + y >= 2), x,y <= 3.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 3.0);
        let y = lp.add_var(1.0, 3.0);
        lp.add_le_constraint(vec![(x, 1.0), (y, 1.0)], 4.0).unwrap();
        lp.add_le_constraint(vec![(x, -1.0), (y, -1.0)], -2.0)
            .unwrap();
        let s = solve(&lp);
        assert!((s.objective - 4.0).abs() < 1e-6);
        assert!(lp.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn minimisation_via_negated_objective() {
        // min x + 2y s.t. x + y >= 3, y >= 1  <=>  max -x - 2y, -x - y <= -3, -y <= -1.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-1.0, f64::INFINITY);
        let y = lp.add_var(-2.0, f64::INFINITY);
        lp.add_le_constraint(vec![(x, -1.0), (y, -1.0)], -3.0)
            .unwrap();
        lp.add_le_constraint(vec![(y, -1.0)], -1.0).unwrap();
        let s = solve(&lp);
        // Optimal: y = 1, x = 2, objective (max form) = -4.
        assert!((s.objective - (-4.0)).abs() < 1e-6);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn assignment_like_packing_lp() {
        // Two "users" each choosing between two "sets"; one shared event of
        // capacity 1. Mirrors the structure of the IGEPA benchmark LP.
        // max 2a1 + 1a2 + 2b1 + 1b2
        //   a1 + a2 <= 1; b1 + b2 <= 1; a1 + b1 <= 1 (shared event); vars in [0,1].
        let mut lp = LinearProgram::new();
        let a1 = lp.add_var(2.0, 1.0);
        let a2 = lp.add_var(1.0, 1.0);
        let b1 = lp.add_var(2.0, 1.0);
        let b2 = lp.add_var(1.0, 1.0);
        lp.add_le_constraint(vec![(a1, 1.0), (a2, 1.0)], 1.0)
            .unwrap();
        lp.add_le_constraint(vec![(b1, 1.0), (b2, 1.0)], 1.0)
            .unwrap();
        lp.add_le_constraint(vec![(a1, 1.0), (b1, 1.0)], 1.0)
            .unwrap();
        let s = solve(&lp);
        // Optimal value 3: one user takes the premium set, the other falls back.
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(lp.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Many redundant constraints through the same vertex.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, f64::INFINITY);
        let y = lp.add_var(1.0, f64::INFINITY);
        for _ in 0..5 {
            lp.add_le_constraint(vec![(x, 1.0), (y, 1.0)], 1.0).unwrap();
        }
        lp.add_le_constraint(vec![(x, 1.0)], 1.0).unwrap();
        lp.add_le_constraint(vec![(y, 1.0)], 1.0).unwrap();
        let s = solve(&lp);
        assert!((s.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 2.0);
        lp.add_le_constraint(vec![(x, 1.0)], 1.0).unwrap();
        let s = solve(&lp);
        assert_eq!(s.objective, 0.0);
        assert!(lp.is_feasible(&s.values, 1e-9));
    }

    #[test]
    fn empty_program_is_trivially_optimal() {
        let lp = LinearProgram::new();
        let s = solve(&lp);
        assert_eq!(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn fixed_variables_stay_at_zero() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(10.0, 0.0); // fixed to zero despite juicy objective
        let y = lp.add_var(1.0, 1.0);
        lp.add_le_constraint(vec![(x, 1.0), (y, 1.0)], 5.0).unwrap();
        let s = solve(&lp);
        assert_eq!(s.values[0], 0.0);
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn warm_start_from_the_optimal_bounds_solves_in_zero_iterations() {
        // max x + y with x <= 1.5, y <= 1.0, x + y <= 3: the optimum has
        // both variables at their upper bound. Hinting exactly that makes
        // the crash basis already optimal.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 1.5);
        let y = lp.add_var(1.0, 1.0);
        lp.add_le_constraint(vec![(x, 1.0), (y, 1.0)], 3.0).unwrap();
        let cold = SimplexSolver::default().solve(&lp).unwrap();
        let basis = SimplexBasis::from_solution(&cold.values, lp.upper_bounds(), 1e-9);
        let warm = SimplexSolver::default().solve_warm(&lp, &basis).unwrap();
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(warm.iterations, 0);
        assert!(warm.iterations <= cold.iterations);
        assert!(cold.iterations > 0);
    }

    #[test]
    fn infeasible_warm_hint_falls_back_to_the_cold_start() {
        // The hint saturates both variables, violating x + y <= 1: the
        // solver must discard it and still reach the cold optimum.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(2.0, 1.0);
        let y = lp.add_var(1.0, 1.0);
        lp.add_le_constraint(vec![(x, 1.0), (y, 1.0)], 1.0).unwrap();
        let cold = SimplexSolver::default().solve(&lp).unwrap();
        let basis = SimplexBasis::from_upper_flags(vec![true, true]);
        let warm = SimplexSolver::default().solve_warm(&lp, &basis).unwrap();
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(warm.iterations, cold.iterations);
        assert!(lp.is_feasible(&warm.values, 1e-9));
    }

    #[test]
    fn warm_hint_is_ignored_when_phase_one_is_needed() {
        // A sign-flipped row forces Phase I; the hint must not disturb
        // the artificial-variable start.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 3.0);
        let y = lp.add_var(1.0, 3.0);
        lp.add_le_constraint(vec![(x, 1.0), (y, 1.0)], 4.0).unwrap();
        lp.add_le_constraint(vec![(x, -1.0), (y, -1.0)], -2.0)
            .unwrap();
        let basis = SimplexBasis::from_upper_flags(vec![true, false]);
        let warm = SimplexSolver::default().solve_warm(&lp, &basis).unwrap();
        assert!((warm.objective - 4.0).abs() < 1e-6);
        assert!(lp.is_feasible(&warm.values, 1e-6));
    }

    #[test]
    fn random_lps_solve_identically_warm_and_cold() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..25 {
            let n = rng.gen_range(2..7);
            let m = rng.gen_range(1..5);
            let mut lp = LinearProgram::new();
            for _ in 0..n {
                lp.add_var(rng.gen_range(-1.0..3.0), rng.gen_range(0.5..2.0));
            }
            for _ in 0..m {
                let coeffs: Vec<(usize, f64)> =
                    (0..n).map(|j| (j, rng.gen_range(0.0..2.0))).collect();
                lp.add_le_constraint(coeffs, rng.gen_range(1.0..6.0))
                    .unwrap();
            }
            let cold = SimplexSolver::default().solve(&lp).unwrap();
            // Hint from the optimum itself and from a random (possibly
            // infeasible) guess: both must land on the cold objective.
            let from_opt = SimplexBasis::from_solution(&cold.values, lp.upper_bounds(), 1e-9);
            let random =
                SimplexBasis::from_upper_flags((0..n).map(|_| rng.gen_range(0..2) == 1).collect());
            for basis in [from_opt, random] {
                let warm = SimplexSolver::default().solve_warm(&lp, &basis).unwrap();
                assert!(
                    (warm.objective - cold.objective).abs() < 1e-7,
                    "trial {trial}: warm {} vs cold {}",
                    warm.objective,
                    cold.objective
                );
                assert!(lp.is_feasible(&warm.values, 1e-6), "trial {trial}");
            }
        }
    }

    #[test]
    fn random_dense_lps_match_feasibility_and_bounds() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..25 {
            let n = rng.gen_range(2..6);
            let m = rng.gen_range(1..5);
            let mut lp = LinearProgram::new();
            for _ in 0..n {
                lp.add_var(rng.gen_range(-2.0..3.0), rng.gen_range(0.5..3.0));
            }
            for _ in 0..m {
                let coeffs: Vec<(usize, f64)> =
                    (0..n).map(|j| (j, rng.gen_range(0.0..2.0))).collect();
                lp.add_le_constraint(coeffs, rng.gen_range(1.0..6.0))
                    .unwrap();
            }
            let s = SimplexSolver::default().solve(&lp).unwrap_or_else(|e| {
                panic!("trial {trial}: unexpected failure {e}");
            });
            assert!(lp.is_feasible(&s.values, 1e-6), "trial {trial} infeasible");
            // The objective must dominate the all-zero solution.
            assert!(
                s.objective >= -1e-9,
                "trial {trial} objective {}",
                s.objective
            );
        }
    }
}
