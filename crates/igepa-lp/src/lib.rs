//! # igepa-lp — linear and integer programming substrate
//!
//! The IGEPA paper solves its benchmark LP (1)–(4) with Gurobi. This crate
//! is the from-scratch replacement used by the reproduction:
//!
//! * [`LinearProgram`] — a small modelling layer for `max c·x, A·x ≤ b,
//!   0 ≤ x ≤ u`;
//! * [`SimplexSolver`] — an exact bounded-variable revised simplex with
//!   Phase I, used wherever exactness matters (validation, small/medium
//!   instances, the approximation-ratio study). Re-solves of a nearby LP
//!   can carry a [`SimplexBasis`] crash basis into
//!   [`SimplexSolver::solve_warm`]: the hinted variables start at their
//!   upper bound (primal feasibility checked up front, cold fallback
//!   otherwise), so an incremental re-solve pays only the pivots the
//!   change requires while returning exactly the cold optimum;
//! * [`BlockPackingSolver`] — a structure-aware approximate solver for the
//!   block packing shape of the benchmark LP (per-user convexity blocks plus
//!   per-event capacity rows), which scales to the paper's largest sweeps;
//! * [`BranchBoundSolver`] — branch and bound over the simplex, providing
//!   the exact ILP baseline (the benchmark ILP *is* the IGEPA optimum).
//!
//! ```
//! use igepa_lp::{LinearProgram, SimplexSolver};
//!
//! // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18
//! let mut lp = LinearProgram::new();
//! let x = lp.add_var(3.0, f64::INFINITY);
//! let y = lp.add_var(5.0, f64::INFINITY);
//! lp.add_le_constraint([(x, 1.0)], 4.0).unwrap();
//! lp.add_le_constraint([(y, 2.0)], 12.0).unwrap();
//! lp.add_le_constraint([(x, 3.0), (y, 2.0)], 18.0).unwrap();
//! let solution = SimplexSolver::default().solve(&lp).unwrap();
//! assert!((solution.objective - 36.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod branch_bound;
pub mod error;
pub mod mps;
pub mod packing;
pub mod presolve;
pub mod problem;
pub mod scaling;
pub mod simplex;
pub mod solution;

pub use branch_bound::{BranchBoundSolver, IntegerProgram};
pub use error::LpError;
pub use mps::{from_mps, to_mps};
pub use packing::{
    BlockPackingProblem, BlockPackingSolver, BlockSolution, PackingBlock, PackingColumn,
};
pub use presolve::{presolve, presolve_and_solve, PresolveStats, PresolvedLp};
pub use problem::{Constraint, LinearProgram, VarId};
pub use scaling::{equilibrate, matrix_spread, ScaledLp};
pub use simplex::{SimplexBasis, SimplexSolver};
pub use solution::{IlpSolution, LpSolution, SolveStatus};
