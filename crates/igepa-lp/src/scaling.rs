//! Row/column equilibration (scaling) for numerical robustness.
//!
//! The benchmark LP of the paper is well scaled by construction (weights in
//! `[0, 1]`, capacities in the tens), but the LP substrate is also used for
//! ablations with raw utility weights and large capacities, where badly
//! scaled coefficient matrices slow the simplex down and amplify round-off.
//! This module implements the standard geometric-mean equilibration: each
//! row and column is divided by the geometric mean of its absolute non-zero
//! coefficients, iterated a few times, producing a scaled program whose
//! solution maps back to the original exactly.

use crate::problem::LinearProgram;

/// A scaled program together with the factors needed to undo the scaling.
#[derive(Debug, Clone)]
pub struct ScaledLp {
    /// The equilibrated program.
    pub scaled: LinearProgram,
    /// Multiplier applied to each column (variable) of the original matrix.
    pub column_factors: Vec<f64>,
    /// Multiplier applied to each row of the original matrix.
    pub row_factors: Vec<f64>,
}

impl ScaledLp {
    /// Maps a solution of the scaled program back to original variables:
    /// if column `j` was multiplied by `s_j`, then `x_j = s_j · x̂_j`.
    pub fn unscale_solution(&self, scaled_values: &[f64]) -> Vec<f64> {
        scaled_values
            .iter()
            .zip(&self.column_factors)
            .map(|(&v, &s)| v * s)
            .collect()
    }

    /// The spread (max |a| / min |a| over non-zeros) of the scaled matrix.
    pub fn scaled_spread(&self) -> f64 {
        matrix_spread(&self.scaled)
    }
}

/// Ratio between the largest and smallest non-zero absolute coefficient of
/// the constraint matrix (1.0 for empty matrices). A large spread signals a
/// badly scaled model.
pub fn matrix_spread(lp: &LinearProgram) -> f64 {
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    for constraint in lp.constraints() {
        for &(_, coeff) in &constraint.coefficients {
            let a = coeff.abs();
            if a > 0.0 {
                min = min.min(a);
                max = max.max(a);
            }
        }
    }
    if max == 0.0 {
        1.0
    } else {
        max / min
    }
}

/// Equilibrates the program with `iterations` rounds of geometric-mean
/// scaling (2 is the usual choice).
///
/// The transformation substitutes `x_j = s_j · x̂_j` and multiplies row `i`
/// by `r_i`, i.e. `â_ij = r_i · a_ij · s_j`, `b̂_i = r_i · b_i`,
/// `ĉ_j = c_j · s_j`, `û_j = u_j / s_j`. Optimal objective values are
/// identical; optimal points map back through [`ScaledLp::unscale_solution`].
pub fn equilibrate(lp: &LinearProgram, iterations: usize) -> ScaledLp {
    let num_vars = lp.num_vars();
    let num_rows = lp.num_constraints();
    let mut column_factors = vec![1.0_f64; num_vars];
    let mut row_factors = vec![1.0_f64; num_rows];

    for _ in 0..iterations.max(1) {
        // Row pass: divide each row by the geometric mean of its non-zeros
        // (including the factors applied so far).
        for (i, constraint) in lp.constraints().iter().enumerate() {
            let mut log_sum = 0.0;
            let mut count = 0usize;
            for &(j, coeff) in &constraint.coefficients {
                let value = (coeff * row_factors[i] * column_factors[j]).abs();
                if value > 0.0 {
                    log_sum += value.ln();
                    count += 1;
                }
            }
            if count > 0 {
                let mean = (log_sum / count as f64).exp();
                if mean > 0.0 && mean.is_finite() {
                    row_factors[i] /= mean;
                }
            }
        }
        // Column pass.
        let mut log_sum = vec![0.0_f64; num_vars];
        let mut count = vec![0usize; num_vars];
        for (i, constraint) in lp.constraints().iter().enumerate() {
            for &(j, coeff) in &constraint.coefficients {
                let value = (coeff * row_factors[i] * column_factors[j]).abs();
                if value > 0.0 {
                    log_sum[j] += value.ln();
                    count[j] += 1;
                }
            }
        }
        for j in 0..num_vars {
            if count[j] > 0 {
                let mean = (log_sum[j] / count[j] as f64).exp();
                if mean > 0.0 && mean.is_finite() {
                    column_factors[j] /= mean;
                }
            }
        }
    }

    // Column factor s_j scales the variable substitution x_j = s_j·x̂_j, so
    // the matrix entry becomes a_ij·s_j; we computed factors that *divide*
    // the entries, which is the same thing (s_j is the divisor's inverse
    // applied to the variable). Build the scaled program accordingly.
    let mut scaled = LinearProgram::new();
    for j in 0..num_vars {
        let s = column_factors[j];
        let upper = lp.upper_bound(j);
        let scaled_upper = if upper.is_finite() { upper / s } else { upper };
        scaled.add_var(lp.objective(j) * s, scaled_upper);
    }
    for (i, constraint) in lp.constraints().iter().enumerate() {
        let coefficients: Vec<(usize, f64)> = constraint
            .coefficients
            .iter()
            .map(|&(j, coeff)| (j, coeff * row_factors[i] * column_factors[j]))
            .collect();
        scaled
            .add_le_constraint(coefficients, constraint.rhs * row_factors[i])
            .expect("variable indices are unchanged by scaling");
    }

    ScaledLp {
        scaled,
        column_factors,
        row_factors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::SimplexSolver;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn badly_scaled_lp() -> LinearProgram {
        // Coefficients of the form r_i·s_j with badly mismatched row and
        // column magnitudes — the classic case equilibration repairs.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, f64::INFINITY);
        let y = lp.add_var(1000.0, f64::INFINITY);
        lp.add_le_constraint([(x, 0.001), (y, 0.1)], 0.05).unwrap();
        lp.add_le_constraint([(x, 1000.0), (y, 100_000.0)], 200_000.0)
            .unwrap();
        lp
    }

    #[test]
    fn equilibration_reduces_the_coefficient_spread() {
        let lp = badly_scaled_lp();
        let before = matrix_spread(&lp);
        let scaled = equilibrate(&lp, 2);
        let after = scaled.scaled_spread();
        assert!(before > 1e4);
        assert!(after < before, "spread {after} not reduced from {before}");
        assert!(after < 100.0);
    }

    #[test]
    fn scaled_and_original_optima_agree() {
        let lp = badly_scaled_lp();
        let direct = SimplexSolver::default().solve(&lp).unwrap();
        let scaled = equilibrate(&lp, 2);
        let scaled_solution = SimplexSolver::default().solve(&scaled.scaled).unwrap();
        assert!(
            (direct.objective - scaled_solution.objective).abs()
                < 1e-6 * (1.0 + direct.objective.abs())
        );
        let unscaled = scaled.unscale_solution(&scaled_solution.values);
        assert!(lp.is_feasible(&unscaled, 1e-6));
        assert!(
            (lp.objective_value(&unscaled) - direct.objective).abs()
                < 1e-6 * (1.0 + direct.objective.abs())
        );
    }

    #[test]
    fn well_scaled_programs_are_left_nearly_untouched() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 1.0);
        let y = lp.add_var(1.0, 1.0);
        lp.add_le_constraint([(x, 1.0), (y, 1.0)], 1.5).unwrap();
        let scaled = equilibrate(&lp, 2);
        assert!((scaled.scaled_spread() - 1.0).abs() < 1e-9);
        for &f in scaled
            .column_factors
            .iter()
            .chain(scaled.row_factors.iter())
        {
            assert!((f - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn spread_of_empty_matrix_is_one() {
        let mut lp = LinearProgram::new();
        lp.add_var(1.0, 1.0);
        assert_eq!(matrix_spread(&lp), 1.0);
    }

    #[test]
    fn unscale_solution_applies_column_factors() {
        let scaled = ScaledLp {
            scaled: LinearProgram::new(),
            column_factors: vec![2.0, 0.5],
            row_factors: vec![],
        };
        assert_eq!(scaled.unscale_solution(&[3.0, 4.0]), vec![6.0, 2.0]);
    }

    #[test]
    fn random_lps_round_trip_through_scaling() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..15 {
            let num_vars = rng.gen_range(2..8);
            let num_rows = rng.gen_range(1..6);
            let mut lp = LinearProgram::new();
            for _ in 0..num_vars {
                lp.add_var(rng.gen_range(0.1..10.0), rng.gen_range(0.5..5.0));
            }
            for _ in 0..num_rows {
                let coefficients: Vec<(usize, f64)> = (0..num_vars)
                    .map(|v| (v, rng.gen_range(0.01..100.0)))
                    .collect();
                lp.add_le_constraint(coefficients, rng.gen_range(1.0..50.0))
                    .unwrap();
            }
            let direct = SimplexSolver::default().solve(&lp).unwrap();
            let scaled = equilibrate(&lp, 3);
            let scaled_solution = SimplexSolver::default().solve(&scaled.scaled).unwrap();
            let unscaled = scaled.unscale_solution(&scaled_solution.values);
            let tolerance = 1e-5 * (1.0 + direct.objective.abs());
            assert!(
                (lp.objective_value(&unscaled) - direct.objective).abs() < tolerance,
                "trial {trial}"
            );
            assert!(lp.is_feasible(&unscaled, 1e-5), "trial {trial}");
        }
    }
}
