//! Branch-and-bound integer programming on top of the simplex solver.
//!
//! The exact IGEPA baseline solves the benchmark ILP — the LP (1)–(4) with
//! `x_{u,S} ∈ {0, 1}` — whose optimum *is* the optimum of the IGEPA problem
//! (the observation behind Lemma 1). Instances small enough for this solver
//! are used to measure the empirical approximation ratio of LP-packing.
//!
//! The solver is a classic best-first branch and bound:
//!
//! * the LP relaxation is solved by [`SimplexSolver`];
//! * branching fixes the most fractional integer variable to 0 or 1 by
//!   tightening its bounds (no new rows are ever added);
//! * nodes whose LP bound cannot beat the incumbent are pruned;
//! * an optional node limit turns the solver into an anytime heuristic with
//!   a reported bound.

use crate::error::LpError;
use crate::problem::LinearProgram;
use crate::simplex::SimplexSolver;
use crate::solution::IlpSolution;

/// An integer program: a [`LinearProgram`] plus the set of variables that
/// must take integral values (all of them binary/integral within their
/// bounds).
#[derive(Debug, Clone)]
pub struct IntegerProgram {
    /// The LP relaxation.
    pub lp: LinearProgram,
    /// Indices of variables required to be integral.
    pub integer_vars: Vec<usize>,
}

impl IntegerProgram {
    /// Creates an integer program where *all* variables are integral.
    pub fn all_integer(lp: LinearProgram) -> Self {
        let integer_vars = (0..lp.num_vars()).collect();
        IntegerProgram { lp, integer_vars }
    }
}

/// Branch-and-bound solver configuration.
#[derive(Debug, Clone)]
pub struct BranchBoundSolver {
    /// Simplex used for the relaxations.
    pub lp_solver: SimplexSolver,
    /// Integrality tolerance.
    pub tolerance: f64,
    /// Maximum number of explored nodes before giving up and returning the
    /// incumbent (with its proven bound).
    pub max_nodes: usize,
}

impl Default for BranchBoundSolver {
    fn default() -> Self {
        BranchBoundSolver {
            lp_solver: SimplexSolver::default(),
            tolerance: 1e-6,
            max_nodes: 100_000,
        }
    }
}

/// A search node: variable bound overrides relative to the root LP.
#[derive(Debug, Clone)]
struct Node {
    /// `(variable, lower_fixed_to_one, upper_fixed_to_zero)` expressed as
    /// explicit bound overrides.
    overrides: Vec<(usize, f64, f64)>,
    /// LP bound inherited from the parent (used for best-first ordering).
    bound: f64,
}

impl BranchBoundSolver {
    /// Solves the integer program to optimality (or to the node limit).
    pub fn solve(&self, ip: &IntegerProgram) -> Result<IlpSolution, LpError> {
        let root_bound = f64::INFINITY;
        let mut stack = vec![Node {
            overrides: Vec::new(),
            bound: root_bound,
        }];
        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        let mut best_bound_seen = f64::NEG_INFINITY;
        let mut nodes_explored = 0usize;
        let mut limit_hit = false;

        while let Some(node) = stack.pop() {
            if nodes_explored >= self.max_nodes {
                // Put the node back conceptually; report what we have.
                limit_hit = true;
                break;
            }
            // Prune against the incumbent using the inherited bound.
            if let Some((_, best)) = &incumbent {
                if node.bound <= *best + self.tolerance {
                    continue;
                }
            }
            nodes_explored += 1;

            let mut lp = ip.lp.clone();
            let mut lower_fixed = vec![0.0; lp.num_vars()];
            for &(var, lower, upper) in &node.overrides {
                lower_fixed[var] = lower;
                lp.set_upper_bound(var, upper);
            }
            // Variables fixed to 1 are modelled by substituting their lower
            // bound: shift them out of the LP by fixing both bounds. The LP
            // model only supports a zero lower bound, so a variable fixed to
            // 1 keeps bounds [0, 1] but gets a huge objective reward? No —
            // instead we model "x ≥ 1" by flipping: fix the variable by
            // setting its upper bound to 1 and adding a constraint x ≥ 1 as
            // −x ≤ −1.
            for &(var, lower, _) in &node.overrides {
                if lower > 0.0 {
                    lp.add_le_constraint(vec![(var, -1.0)], -lower)?;
                }
            }

            let relaxation = match self.lp_solver.solve(&lp) {
                Ok(sol) => sol,
                Err(LpError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            if nodes_explored == 1 {
                best_bound_seen = relaxation.objective;
            }

            if let Some((_, best)) = &incumbent {
                if relaxation.objective <= *best + self.tolerance {
                    continue;
                }
            }

            // Find the most fractional integer variable.
            let mut branch_var: Option<(usize, f64)> = None;
            for &var in &ip.integer_vars {
                let v = relaxation.values[var];
                let frac = (v - v.round()).abs();
                if frac > self.tolerance {
                    match branch_var {
                        Some((_, best_frac)) if best_frac >= frac => {}
                        _ => branch_var = Some((var, frac)),
                    }
                }
            }

            match branch_var {
                None => {
                    // Integral solution; round to kill float dust.
                    let mut values = relaxation.values.clone();
                    for &var in &ip.integer_vars {
                        values[var] = values[var].round();
                    }
                    let objective = ip.lp.objective_value(&values);
                    let better = incumbent
                        .as_ref()
                        .map(|(_, best)| objective > *best + self.tolerance)
                        .unwrap_or(true);
                    if better {
                        incumbent = Some((values, objective));
                    }
                }
                Some((var, _)) => {
                    let value = relaxation.values[var];
                    let floor = value.floor();
                    let ceil = value.ceil();
                    // Down branch: x ≤ floor.
                    let mut down = node.overrides.clone();
                    down.push((var, 0.0, floor));
                    // Up branch: x ≥ ceil (upper bound unchanged).
                    let mut up = node.overrides.clone();
                    up.push((var, ceil, ip.lp.upper_bound(var)));
                    // Depth-first, exploring the up branch first (greedy).
                    stack.push(Node {
                        overrides: down,
                        bound: relaxation.objective,
                    });
                    stack.push(Node {
                        overrides: up,
                        bound: relaxation.objective,
                    });
                }
            }
        }

        match incumbent {
            Some((values, objective)) => Ok(IlpSolution {
                values,
                objective,
                nodes_explored,
                // When the tree was searched to completion the incumbent is
                // proven optimal; otherwise report the root relaxation bound.
                best_bound: if limit_hit {
                    best_bound_seen.max(objective)
                } else {
                    objective
                },
            }),
            // No integral point was found. If the search ran to completion the
            // program is infeasible; if it was cut short, say so instead.
            None if nodes_explored >= self.max_nodes => Err(LpError::IterationLimit {
                limit: self.max_nodes,
            }),
            None => Err(LpError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knapsack(profits: &[f64], weights: &[f64], capacity: f64) -> IntegerProgram {
        let mut lp = LinearProgram::new();
        let vars: Vec<usize> = profits.iter().map(|&p| lp.add_var(p, 1.0)).collect();
        lp.add_le_constraint(vars.iter().zip(weights).map(|(&v, &w)| (v, w)), capacity)
            .unwrap();
        IntegerProgram::all_integer(lp)
    }

    #[test]
    fn binary_knapsack_exact() {
        // Items (profit, weight): (10,5), (6,4), (5,3), capacity 7 -> take items 2+3 = 11.
        let ip = knapsack(&[10.0, 6.0, 5.0], &[5.0, 4.0, 3.0], 7.0);
        let sol = BranchBoundSolver::default().solve(&ip).unwrap();
        assert!((sol.objective - 11.0).abs() < 1e-6);
        assert_eq!(sol.values.iter().map(|v| v.round() as i64).sum::<i64>(), 2);
        assert_eq!(sol.gap(), 0.0);
    }

    #[test]
    fn knapsack_where_lp_is_fractional() {
        // Classic case where the LP takes half an item.
        let ip = knapsack(&[60.0, 100.0, 120.0], &[10.0, 20.0, 30.0], 50.0);
        let sol = BranchBoundSolver::default().solve(&ip).unwrap();
        assert!((sol.objective - 220.0).abs() < 1e-6);
    }

    #[test]
    fn already_integral_lp_needs_no_branching() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 1.0);
        let y = lp.add_var(1.0, 1.0);
        lp.add_le_constraint(vec![(x, 1.0)], 1.0).unwrap();
        lp.add_le_constraint(vec![(y, 1.0)], 1.0).unwrap();
        let sol = BranchBoundSolver::default()
            .solve(&IntegerProgram::all_integer(lp))
            .unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
        assert_eq!(sol.nodes_explored, 1);
    }

    #[test]
    fn infeasible_ip_reported() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 1.0);
        lp.add_le_constraint(vec![(x, -1.0)], -2.0).unwrap(); // x >= 2 impossible
        let err = BranchBoundSolver::default()
            .solve(&IntegerProgram::all_integer(lp))
            .unwrap_err();
        assert_eq!(err, LpError::Infeasible);
    }

    #[test]
    fn assignment_ilp_matches_brute_force() {
        // 3 users × 2 sets each, one shared row of capacity 2; mirrors the
        // IGEPA benchmark ILP in miniature.
        let mut lp = LinearProgram::new();
        let profits = [[2.0, 1.2], [1.8, 1.0], [1.5, 0.4]];
        let mut ids = Vec::new();
        for user in profits.iter() {
            let a = lp.add_var(user[0], 1.0);
            let b = lp.add_var(user[1], 1.0);
            lp.add_le_constraint(vec![(a, 1.0), (b, 1.0)], 1.0).unwrap();
            ids.push((a, b));
        }
        // The "premium" set of every user shares an event with capacity 2.
        lp.add_le_constraint(ids.iter().map(|&(a, _)| (a, 1.0)), 2.0)
            .unwrap();
        let sol = BranchBoundSolver::default()
            .solve(&IntegerProgram::all_integer(lp))
            .unwrap();
        // Best: premium for users 0 and 2 (2.0 + 1.5) + fallback 1.0 for
        // user 1 = 4.5 (tied with giving premium to users 1 and 2).
        assert!((sol.objective - 4.5).abs() < 1e-6);
    }

    #[test]
    fn larger_knapsack_bound_dominates_incumbent() {
        let ip = knapsack(
            &[10.0, 9.0, 8.0, 7.0, 6.0, 5.0, 4.0],
            &[5.0, 5.0, 4.0, 4.0, 3.0, 3.0, 2.0],
            9.0,
        );
        let sol = BranchBoundSolver::default().solve(&ip).unwrap();
        assert!(sol.best_bound + 1e-9 >= sol.objective);
        assert_eq!(sol.gap(), 0.0);
        // Optimal: items with weights 4+3+2 = 9 and profits 8+6+4 = 18
        // beats 10+8 (weight 9, profit 18)... both give 18.
        assert!((sol.objective - 18.0).abs() < 1e-6);
    }

    #[test]
    fn tiny_node_limit_without_incumbent_is_reported() {
        let ip = knapsack(
            &[10.0, 9.0, 8.0, 7.0, 6.0, 5.0, 4.0],
            &[5.0, 5.0, 4.0, 4.0, 3.0, 3.0, 2.0],
            9.0,
        );
        let solver = BranchBoundSolver {
            max_nodes: 1,
            ..Default::default()
        };
        match solver.solve(&ip) {
            // Either the single root node already produced an integral
            // incumbent, or the limit error is reported; both are acceptable.
            Ok(sol) => assert!(sol.objective > 0.0),
            Err(e) => assert_eq!(e, LpError::IterationLimit { limit: 1 }),
        }
    }
}
